//! `dn-serve` — serve a durable DomainNet engine over HTTP.
//!
//! ```text
//! dn-serve --data-dir DIR [--shards N] [--addr 127.0.0.1:8080] [--workers 4]
//!          [--checkpoint-every 8] [--cache-capacity 64] [--max-body-bytes N]
//!          [--ingest-dir DIR [--ingest-poll-ms 500]]
//!          [--trace-sample 16] [--slow-query-us US] [--log-format text|json]
//! dn-serve --data-dir DIR --follow http://PRIMARY [--poll-ms 100] [...]
//! dn-serve --smoke ADDR
//! dn-serve --smoke-replica PRIMARY_ADDR FOLLOWER_ADDR
//! dn-serve --smoke-ingest ADDR DROP_DIR
//! ```
//!
//! Server mode: if `--data-dir` already holds a sharded store, the
//! coordinator is recovered from it (`serve_sharded_from_dir` — per-shard
//! snapshot load + WAL replay, the coordinator epoch resumes as the sum
//! of the shard epochs; the shard count comes from the on-disk manifest,
//! and a conflicting `--shards` is an error rather than a silent
//! reshard). Otherwise a fresh sharded store with `--shards N` engines
//! (default 1 — bit-identical to the pre-coordinator engine) is
//! initialized over an empty lake and populated via `POST /v1/mutations`.
//! The bound address and the serving epoch are logged on startup; the
//! process exits after a graceful drain once `POST /v1/admin/shutdown`
//! arrives.
//!
//! Follower mode (`--follow http://PRIMARY`): the data dir becomes a
//! read replica of a running primary — bootstrapped from the primary's
//! newest per-shard snapshots (or recovered locally on restart), kept in
//! step by tailing the per-shard WALs every `--poll-ms`, and verified by
//! the divergence-insurance digest exchange. Mutations answer `403` with
//! the primary's URL; a digest mismatch halts the replica (reads answer
//! `503`) rather than serving wrong rankings.
//!
//! Ingest mode (`--ingest-dir DIR`): the server additionally tails `DIR`
//! as a CDC-style CSV drop-folder — a background `dn_ingest::Ingester`
//! polls it every `--ingest-poll-ms`, diffs changed files into minimal
//! deltas, and commits them through the same coordinator mutex the HTTP
//! mutation handler uses. The resume journal lives at
//! `<data-dir>/ingest.journal`; `dn_ingest_*` gauges appear in /metrics.
//!
//! Smoke mode (`--smoke ADDR`): a client-only self-check against a
//! running server — healthz → mutation → top-k → checkpoint → shutdown —
//! exiting non-zero on the first unexpected answer. This is the curl-free
//! probe `ci.sh` drives. `--smoke-replica PRIMARY FOLLOWER` is the
//! replication variant: mutate via the primary, wait for the follower to
//! converge, assert the lag gauge returns to zero and writes are refused,
//! then drain both. `--smoke-ingest ADDR DIR` is the drop-folder variant:
//! write three drift generations into the watched `DIR`, wait until top-k
//! reflects the last one, assert the `dn_ingest_*` gauges moved, then
//! drain the server.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dn_server::{
    serve_http, serve_http_follower, Client, HttpReplicaSource, Limits, ReplicaContext,
    ServerConfig,
};
use dn_service::{
    serve_sharded_durable, serve_sharded_from_dir, CheckpointPolicy, Follower, ReplicaError,
    ServiceConfig,
};
use domainnet::Measure;
use lake::delta::MutableLake;

#[derive(Debug)]
struct Args {
    data_dir: Option<String>,
    shards: usize,
    addr: String,
    workers: usize,
    threads: usize,
    checkpoint_every: u64,
    cache_capacity: usize,
    max_body_bytes: usize,
    smoke: Option<String>,
    follow: Option<String>,
    poll_ms: u64,
    smoke_replica: Option<(String, String)>,
    ingest_dir: Option<String>,
    ingest_poll_ms: u64,
    smoke_ingest: Option<(String, String)>,
    trace_sample: u32,
    slow_query_us: Option<u64>,
    log_json: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            data_dir: None,
            shards: 1,
            addr: "127.0.0.1:8080".to_owned(),
            workers: 4,
            threads: dn_pool::Pool::machine_wide().threads(),
            checkpoint_every: 8,
            cache_capacity: 64,
            max_body_bytes: 1 << 20,
            smoke: None,
            follow: None,
            poll_ms: 100,
            smoke_replica: None,
            ingest_dir: None,
            ingest_poll_ms: 500,
            smoke_ingest: None,
            trace_sample: 16,
            slow_query_us: None,
            log_json: false,
        }
    }
}

const USAGE: &str = "usage: dn-serve --data-dir DIR [--shards N] [--addr HOST:PORT] [--workers N] \
[--threads N] [--checkpoint-every EPOCHS] [--cache-capacity N] [--max-body-bytes N] \
[--ingest-dir DIR] [--ingest-poll-ms MS] [--trace-sample N] [--slow-query-us US] \
[--log-format text|json]\n       \
dn-serve --data-dir DIR --follow http://HOST:PORT [--poll-ms MS]\n       \
dn-serve --smoke HOST:PORT\n       \
dn-serve --smoke-replica PRIMARY_HOST:PORT FOLLOWER_HOST:PORT\n       \
dn-serve --smoke-ingest HOST:PORT DROP_DIR";

fn parse_args() -> Result<Args, String> {
    let mut out = Args::default();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--data-dir" => out.data_dir = Some(value("--data-dir")?),
            "--shards" => {
                out.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards must be a positive integer".to_owned())?;
                if out.shards == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
            }
            "--addr" => out.addr = value("--addr")?,
            "--workers" => {
                out.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_owned())?;
                if out.workers == 0 {
                    return Err("--workers must be at least 1".to_owned());
                }
            }
            "--threads" => {
                out.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_owned())?;
                if out.threads == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
            }
            "--checkpoint-every" => {
                out.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| "--checkpoint-every must be an integer".to_owned())?;
            }
            "--cache-capacity" => {
                out.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|_| "--cache-capacity must be an integer".to_owned())?;
            }
            "--max-body-bytes" => {
                out.max_body_bytes = value("--max-body-bytes")?
                    .parse()
                    .map_err(|_| "--max-body-bytes must be an integer".to_owned())?;
            }
            "--smoke" => out.smoke = Some(value("--smoke")?),
            "--follow" => out.follow = Some(value("--follow")?),
            "--poll-ms" => {
                out.poll_ms = value("--poll-ms")?
                    .parse()
                    .map_err(|_| "--poll-ms must be an integer".to_owned())?;
                if out.poll_ms == 0 {
                    return Err("--poll-ms must be at least 1".to_owned());
                }
            }
            "--smoke-replica" => {
                let primary = value("--smoke-replica")?;
                let follower = value("--smoke-replica")?;
                out.smoke_replica = Some((primary, follower));
            }
            "--ingest-dir" => out.ingest_dir = Some(value("--ingest-dir")?),
            "--ingest-poll-ms" => {
                out.ingest_poll_ms = value("--ingest-poll-ms")?
                    .parse()
                    .map_err(|_| "--ingest-poll-ms must be an integer".to_owned())?;
                if out.ingest_poll_ms == 0 {
                    return Err("--ingest-poll-ms must be at least 1".to_owned());
                }
            }
            "--smoke-ingest" => {
                let addr = value("--smoke-ingest")?;
                let dir = value("--smoke-ingest")?;
                out.smoke_ingest = Some((addr, dir));
            }
            "--trace-sample" => {
                // 0 disables tracing outright; N samples one request in N.
                out.trace_sample = value("--trace-sample")?
                    .parse()
                    .map_err(|_| "--trace-sample must be a non-negative integer".to_owned())?;
            }
            "--slow-query-us" => {
                out.slow_query_us = Some(
                    value("--slow-query-us")?
                        .parse()
                        .map_err(|_| "--slow-query-us must be an integer".to_owned())?,
                );
            }
            "--log-format" => match value("--log-format")?.as_str() {
                "text" => out.log_json = false,
                "json" => out.log_json = true,
                other => return Err(format!("--log-format must be text or json, not {other:?}")),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if out.smoke.is_none()
        && out.smoke_replica.is_none()
        && out.smoke_ingest.is_none()
        && out.data_dir.is_none()
    {
        return Err("--data-dir is required in server mode".to_owned());
    }
    if out.follow.is_some() && out.shards != 1 {
        return Err("--shards is meaningless with --follow (the primary's manifest rules)".into());
    }
    if out.follow.is_some() && out.ingest_dir.is_some() {
        return Err("--ingest-dir needs a writable primary, not a --follow replica".to_owned());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("dn-serve: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    dn_trace::set_log_format_json(args.log_json);
    dn_trace::set_sample_every(args.trace_sample);
    if let Some(us) = args.slow_query_us {
        dn_trace::set_slow_query_us(us);
    }
    if let Some(addr) = &args.smoke {
        return match run_smoke(addr) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("dn-serve --smoke FAILED: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some((primary, follower)) = &args.smoke_replica {
        return match run_replica_smoke(primary, follower) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("dn-serve --smoke-replica FAILED: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some((addr, dir)) = &args.smoke_ingest {
        return match run_ingest_smoke(addr, dir) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("dn-serve --smoke-ingest FAILED: {message}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(primary) = args.follow.clone() {
        return match run_follower(&args, &primary) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("dn-serve: {message}");
                ExitCode::FAILURE
            }
        };
    }
    match run_server(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dn-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The startup line. `ci.sh` seds the bound address out of the text form
/// (`dn-serve listening on http://ADDR ...`), so that exact shape is
/// load-bearing; JSON mode renders the same facts as one `server_started`
/// event on stdout instead.
#[allow(clippy::too_many_arguments)]
fn log_listening(
    addr: impl std::fmt::Display,
    epoch: u64,
    shards: usize,
    workers: usize,
    threads: usize,
    data_dir: &str,
    mode: &str,
) {
    if dn_trace::log_format_json() {
        println!(
            "{}",
            dn_trace::render_json(
                dn_trace::Level::Info,
                "server_started",
                &[
                    ("addr", dn_trace::EventValue::Str(&addr.to_string())),
                    ("epoch", dn_trace::EventValue::U64(epoch)),
                    ("shards", dn_trace::EventValue::U64(shards as u64)),
                    ("workers", dn_trace::EventValue::U64(workers as u64)),
                    ("threads", dn_trace::EventValue::U64(threads as u64)),
                    ("data_dir", dn_trace::EventValue::Str(data_dir)),
                    ("mode", dn_trace::EventValue::Str(mode)),
                ],
            )
        );
    } else {
        println!(
            "dn-serve listening on http://{addr} epoch={epoch} shards={shards} \
workers={workers} threads={threads} data_dir={data_dir} ({mode})"
        );
    }
}

fn run_server(args: &Args) -> Result<(), String> {
    let data_dir = args.data_dir.as_deref().expect("checked in parse_args");
    let service_config = ServiceConfig {
        measures: vec![Measure::lcc(), Measure::exact_bc()],
        cache_capacity: args.cache_capacity,
        prune_single_attribute_values: true,
        threads: args.threads,
    };
    let policy = if args.checkpoint_every == 0 {
        CheckpointPolicy::manual()
    } else {
        CheckpointPolicy {
            every_epochs: Some(args.checkpoint_every),
            max_wal_bytes: Some(16 << 20),
        }
    };

    let root = std::path::Path::new(data_dir);
    if dn_store::Store::exists(root) {
        return Err(format!(
            "{data_dir} holds a pre-sharding single-engine store; move it into a \
shard-0/ subdirectory with a shards.json manifest to serve it"
        ));
    }
    // The on-disk shard manifest is authoritative once a store exists:
    // resharding in place would split components silently.
    let recovering = match dn_store::read_shard_manifest(root)
        .map_err(|e| format!("probing {data_dir}: {e}"))?
    {
        Some(manifest) => {
            if args.shards != 1 && args.shards != manifest.shards {
                return Err(format!(
                    "{data_dir} was initialized with {} shard(s); --shards {} would \
reshard it in place (not supported)",
                    manifest.shards, args.shards
                ));
            }
            true
        }
        None => false,
    };
    let (service, coordinator) = if recovering {
        serve_sharded_from_dir(data_dir, service_config, policy)
            .map_err(|e| format!("recovering {data_dir}: {e}"))?
    } else {
        serve_sharded_durable(
            MutableLake::new(),
            service_config,
            data_dir,
            policy,
            args.shards,
        )
        .map_err(|e| format!("initializing {data_dir}: {e}"))?
    };
    let shards = coordinator.shard_count();
    let epoch = service.epoch();

    let server_config = ServerConfig {
        addr: args.addr.clone(),
        workers: args.workers,
        limits: Limits {
            max_body_bytes: args.max_body_bytes,
            ..Limits::default()
        },
        ..ServerConfig::default()
    };

    // With --ingest-dir the coordinator is shared between the HTTP write
    // handlers and a background drop-folder ingester; the ingest thread
    // must release its Arc clone before Server::join can reclaim it.
    let (server, ingest_thread, ingest_stop) = if let Some(ingest_dir) = &args.ingest_dir {
        let coordinator = Arc::new(std::sync::Mutex::new(coordinator));
        let stats = Arc::new(dn_ingest::IngestStats::default());
        let mut config = dn_ingest::IngestConfig::new(ingest_dir);
        config.journal_path = root.join("ingest.journal");
        config.poll_interval = Duration::from_millis(args.ingest_poll_ms);
        let sink = dn_ingest::CoordinatorSink::new(Arc::clone(&coordinator));
        let mut ingester = dn_ingest::Ingester::new(config, sink, Arc::clone(&stats))
            .map_err(|e| format!("starting ingester on {ingest_dir}: {e}"))?;
        let server = dn_server::serve_http_ingest(
            service,
            coordinator,
            server_config,
            dn_server::IngestContext { shared: stats },
        )
        .map_err(|e| format!("binding {}: {e}", args.addr))?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("dn-ingest".to_owned())
            .spawn(move || {
                if let Err(e) = ingester.run(&thread_stop, |e| {
                    dn_trace::event(
                        dn_trace::Level::Warn,
                        "ingest_retry",
                        &[("error", dn_trace::EventValue::Str(&e.to_string()))],
                    );
                }) {
                    dn_trace::event(
                        dn_trace::Level::Error,
                        "ingest_halted",
                        &[("error", dn_trace::EventValue::Str(&e.to_string()))],
                    );
                }
            })
            .map_err(|e| format!("spawning ingest thread: {e}"))?;
        (server, Some(thread), Some(stop))
    } else {
        let server = serve_http(service, coordinator, server_config)
            .map_err(|e| format!("binding {}: {e}", args.addr))?;
        (server, None, None)
    };

    log_listening(
        server.local_addr(),
        epoch,
        shards,
        args.workers,
        args.threads,
        data_dir,
        &format!(
            "{}{}",
            if recovering { "recovered" } else { "fresh" },
            if let Some(dir) = &args.ingest_dir {
                format!(", ingesting {dir}")
            } else {
                String::new()
            },
        ),
    );

    // Block until a graceful shutdown (POST /v1/admin/shutdown) drains
    // the workers, then checkpoint the final state so the next start
    // recovers without a WAL replay. The ingest thread (if any) is
    // stopped first so its coordinator Arc is released before join().
    if let (Some(thread), Some(stop)) = (ingest_thread, ingest_stop) {
        while !server.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(100));
        }
        stop.store(true, Ordering::SeqCst);
        let _ = thread.join();
    }
    let mut coordinator = server.join();
    match coordinator.checkpoint_now() {
        Ok(checkpointed) => dn_trace::event(
            dn_trace::Level::Info,
            "server_drained",
            &[("final_checkpoint", dn_trace::EventValue::Bool(checkpointed))],
        ),
        Err(e) => dn_trace::event(
            dn_trace::Level::Error,
            "final_checkpoint_failed",
            &[("error", dn_trace::EventValue::Str(&e.to_string()))],
        ),
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Follower mode
// ---------------------------------------------------------------------

fn parse_server_addr(raw: &str) -> Result<std::net::SocketAddr, String> {
    raw.trim_start_matches("http://")
        .trim_end_matches('/')
        .parse()
        .map_err(|e| format!("bad server address {raw:?}: {e}"))
}

fn run_follower(args: &Args, primary: &str) -> Result<(), String> {
    let data_dir = args
        .data_dir
        .as_deref()
        .ok_or("--follow requires --data-dir for the replica's local store")?;
    let primary_addr = parse_server_addr(primary)?;
    let source = HttpReplicaSource::with_timeout(primary_addr, Duration::from_secs(10));
    let service_config = ServiceConfig {
        measures: vec![Measure::lcc(), Measure::exact_bc()],
        cache_capacity: args.cache_capacity,
        prune_single_attribute_values: true,
        threads: args.threads,
    };
    // A follower's log grows only as fast as the primary's, so the same
    // policy keeps its disk bounded the same way.
    let policy = if args.checkpoint_every == 0 {
        CheckpointPolicy::manual()
    } else {
        CheckpointPolicy {
            every_epochs: Some(args.checkpoint_every),
            max_wal_bytes: Some(16 << 20),
        }
    };

    // Bootstrap with backoff: a follower routinely starts before (or
    // during a restart of) its primary.
    let mut follower = {
        let mut attempt: u32 = 0;
        loop {
            match Follower::bootstrap(data_dir, service_config.clone(), policy, &source) {
                Ok(follower) => break follower,
                Err(ReplicaError::Source(message)) => {
                    attempt += 1;
                    if attempt > 120 {
                        return Err(format!("primary unreachable, giving up: {message}"));
                    }
                    dn_trace::event(
                        dn_trace::Level::Warn,
                        "primary_wait",
                        &[
                            (
                                "primary",
                                dn_trace::EventValue::Str(&primary_addr.to_string()),
                            ),
                            ("error", dn_trace::EventValue::Str(&message)),
                        ],
                    );
                    std::thread::sleep(Duration::from_millis(250).saturating_mul(attempt.min(8)));
                }
                Err(e) => return Err(format!("bootstrapping {data_dir}: {e}")),
            }
        }
    };
    // Catch up before accepting traffic so the first readers don't see a
    // stale bootstrap epoch (transient source errors are fine — the tail
    // loop keeps trying).
    match follower.sync_once(&source) {
        Ok(_) | Err(ReplicaError::Source(_)) => {}
        Err(e) => return Err(format!("initial sync: {e}")),
    }

    let shared = follower.shared();
    let handle = follower.handle();
    let shards = handle.shard_count();
    let epoch = handle.epoch();
    let server = serve_http_follower(
        handle,
        follower.coordinator(),
        ServerConfig {
            addr: args.addr.clone(),
            workers: args.workers,
            limits: Limits {
                max_body_bytes: args.max_body_bytes,
                ..Limits::default()
            },
            ..ServerConfig::default()
        },
        ReplicaContext {
            primary_url: format!("http://{primary_addr}"),
            shared: Arc::clone(&shared),
        },
    )
    .map_err(|e| format!("binding {}: {e}", args.addr))?;

    log_listening(
        server.local_addr(),
        epoch,
        shards,
        args.workers,
        args.threads,
        data_dir,
        &format!("follower of http://{primary_addr}"),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let tail_stop = Arc::clone(&stop);
    let poll = Duration::from_millis(args.poll_ms);
    let tail = std::thread::Builder::new()
        .name("dn-replica-tail".to_owned())
        .spawn(move || {
            let mut backoff = poll;
            while !tail_stop.load(Ordering::SeqCst) {
                match follower.sync_once(&source) {
                    Ok(_) => {
                        backoff = poll;
                        std::thread::sleep(poll);
                    }
                    Err(ReplicaError::Source(message)) => {
                        dn_trace::event(
                            dn_trace::Level::Warn,
                            "primary_unreachable",
                            &[("error", dn_trace::EventValue::Str(&message))],
                        );
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_secs(5));
                    }
                    Err(e) => {
                        // Divergence or a local apply failure: the halt
                        // latch is set, the router refuses reads. Idle
                        // until the operator drains us — tailing further
                        // WAL onto untrusted state helps nobody.
                        dn_trace::event(
                            dn_trace::Level::Error,
                            "replication_halted",
                            &[("error", dn_trace::EventValue::Str(&e.to_string()))],
                        );
                        while !tail_stop.load(Ordering::SeqCst) {
                            std::thread::sleep(Duration::from_millis(100));
                        }
                    }
                }
            }
        })
        .map_err(|e| format!("spawning tail thread: {e}"))?;

    server.join_follower();
    stop.store(true, Ordering::SeqCst);
    let _ = tail.join();
    dn_trace::event(dn_trace::Level::Info, "follower_drained", &[]);
    Ok(())
}

// ---------------------------------------------------------------------
// Smoke mode
// ---------------------------------------------------------------------

fn check(condition: bool, message: &str) -> Result<(), String> {
    if condition {
        println!("smoke: {message}: ok");
        Ok(())
    } else {
        Err(message.to_owned())
    }
}

/// The `ci.sh` wire probe: drive one full ingest-query-persist-drain
/// cycle through the client module against a freshly started server.
fn run_smoke(addr: &str) -> Result<(), String> {
    use dn_server::api::{
        CheckpointResponse, HealthResponse, MutationRequest, MutationResponse, ShutdownResponse,
        TopKResponse, TraceResponse,
    };
    use lake::table::TableBuilder;

    let addr: std::net::SocketAddr = addr
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .parse()
        .map_err(|e| format!("bad server address: {e}"))?;
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));

    // 1. healthz
    let health = client
        .get("/healthz")
        .map_err(|e| format!("healthz: {e}"))?;
    check(health.status == 200, "healthz answers 200")?;
    let health: HealthResponse = health.json().map_err(|e| format!("healthz body: {e}"))?;
    check(health.status == "ok", "healthz body says ok")?;

    // 2. mutation: two tables sharing JAGUAR across semantic domains —
    // the paper's running homograph, ingested over the wire.
    let request = MutationRequest {
        deltas: vec![
            lake::delta::LakeDelta::new().add_table(
                TableBuilder::new("smoke_zoo")
                    .column("animal", ["Jaguar", "Okapi", "Zebra"])
                    .build()
                    .map_err(|e| format!("build table: {e}"))?,
            ),
            lake::delta::LakeDelta::new().add_table(
                TableBuilder::new("smoke_cars")
                    .column("make", ["Jaguar", "Fiat", "Kia"])
                    .build()
                    .map_err(|e| format!("build table: {e}"))?,
            ),
        ],
    };
    let body = serde_json::to_string(&request).map_err(|e| format!("encode mutation: {e}"))?;
    let response = client
        .post_json("/v1/mutations", &body)
        .map_err(|e| format!("mutations: {e}"))?;
    check(response.status == 200, "mutation batch answers 200")?;
    let trace_id = response.trace_id;
    let mutation: MutationResponse = response.json().map_err(|e| format!("mutation body: {e}"))?;
    check(
        mutation.epoch > health.epoch,
        "mutation published a new epoch",
    )?;
    check(mutation.stats.edges_added > 0, "mutation added graph edges")?;

    // 2b. The debug trace ring serves the mutation's own span tree. The
    // ID comes from the echoed X-Dn-Trace-Id; when the server samples at
    // less than 1-in-1 the request may legitimately be untraced, so the
    // per-ID assertions only run when the header was present (ci.sh runs
    // this gate with --trace-sample 1, making them mandatory there).
    let listing = client
        .get("/v1/debug/traces")
        .map_err(|e| format!("debug traces: {e}"))?;
    check(listing.status == 200, "debug traces list answers 200")?;
    match trace_id {
        Some(id) => {
            let hex = dn_trace::format_trace_id(id);
            let fetched = client
                .get(&format!("/v1/debug/traces/{hex}"))
                .map_err(|e| format!("debug trace {hex}: {e}"))?;
            check(
                fetched.status == 200,
                "mutation trace is retained in the ring",
            )?;
            let trace: TraceResponse = fetched
                .json()
                .map_err(|e| format!("debug trace body: {e}"))?;
            check(trace.id == hex, "trace endpoint answers the requested ID")?;
            check(!trace.spans.is_empty(), "mutation trace carries spans")?;
            check(
                listing.body.contains(&hex),
                "trace list includes the mutation trace",
            )?;
        }
        None => println!("smoke: mutation was not sampled, per-trace checks skipped"),
    }

    // 3. top-k reflects the ingested homograph
    let top = client
        .get("/v1/top-k?measure=bc&k=5")
        .map_err(|e| format!("top-k: {e}"))?;
    check(top.status == 200, "top-k answers 200")?;
    let top: TopKResponse = top.json().map_err(|e| format!("top-k body: {e}"))?;
    check(
        top.epoch >= mutation.epoch,
        "top-k sees the published epoch",
    )?;
    check(
        top.results.iter().any(|s| s.value == "JAGUAR"),
        "top-k surfaces the injected homograph JAGUAR",
    )?;

    // 4. metrics expose the per-shard gauges (the server always fronts
    // the coordinator, so shard 0 exists even in single-shard mode)
    let metrics = client
        .get("/metrics")
        .map_err(|e| format!("metrics: {e}"))?;
    check(metrics.status == 200, "metrics answers 200")?;
    check(
        metrics.body.contains("dn_shard_epoch{shard=\"0\"}"),
        "metrics expose per-shard epoch gauges",
    )?;

    // 5. checkpoint
    let response = client
        .post_json("/v1/admin/checkpoint", "")
        .map_err(|e| format!("checkpoint: {e}"))?;
    check(response.status == 200, "checkpoint answers 200")?;
    let checkpoint: CheckpointResponse = response
        .json()
        .map_err(|e| format!("checkpoint body: {e}"))?;
    check(checkpoint.checkpointed, "checkpoint was written")?;

    // 6. graceful shutdown
    let response = client
        .post_json("/v1/admin/shutdown", "")
        .map_err(|e| format!("shutdown: {e}"))?;
    check(response.status == 200, "shutdown answers 200")?;
    let shutdown: ShutdownResponse = response.json().map_err(|e| format!("shutdown body: {e}"))?;
    check(shutdown.status == "shutting down", "shutdown acknowledged")?;

    println!("smoke: all checks passed");
    Ok(())
}

/// The `ci.sh` replication probe: a primary and a `--follow` follower are
/// already running; mutate via the primary, wait for the follower to
/// converge to the same epoch and ranking, assert the insurance gauges
/// are clean and writes are refused, then drain both.
fn run_replica_smoke(primary: &str, follower: &str) -> Result<(), String> {
    use dn_server::api::{
        ErrorBody, HealthResponse, MutationRequest, MutationResponse, ShutdownResponse,
        TopKResponse,
    };
    use lake::table::TableBuilder;

    let primary_addr = parse_server_addr(primary)?;
    let follower_addr = parse_server_addr(follower)?;
    let mut primary = Client::new(primary_addr).with_timeout(Duration::from_secs(10));
    let mut follower = Client::new(follower_addr).with_timeout(Duration::from_secs(10));

    // 1. Both ends are up.
    let health = primary
        .get("/healthz")
        .map_err(|e| format!("primary healthz: {e}"))?;
    check(health.status == 200, "primary healthz answers 200")?;
    let health = follower
        .get("/healthz")
        .map_err(|e| format!("follower healthz: {e}"))?;
    check(health.status == 200, "follower healthz answers 200")?;
    let _: HealthResponse = health
        .json()
        .map_err(|e| format!("follower healthz: {e}"))?;

    // 2. Mutate via the primary.
    let request = MutationRequest {
        deltas: vec![
            lake::delta::LakeDelta::new().add_table(
                TableBuilder::new("smoke_zoo")
                    .column("animal", ["Jaguar", "Okapi", "Zebra"])
                    .build()
                    .map_err(|e| format!("build table: {e}"))?,
            ),
            lake::delta::LakeDelta::new().add_table(
                TableBuilder::new("smoke_cars")
                    .column("make", ["Jaguar", "Fiat", "Kia"])
                    .build()
                    .map_err(|e| format!("build table: {e}"))?,
            ),
        ],
    };
    let body = serde_json::to_string(&request).map_err(|e| format!("encode mutation: {e}"))?;
    let response = primary
        .post_json("/v1/mutations", &body)
        .map_err(|e| format!("primary mutations: {e}"))?;
    check(response.status == 200, "primary accepts the mutation")?;
    let mutation: MutationResponse = response.json().map_err(|e| format!("mutation body: {e}"))?;

    // 3. The follower converges: same epoch, homograph visible.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let top = follower
            .get("/v1/top-k?measure=bc&k=5")
            .map_err(|e| format!("follower top-k: {e}"))?;
        check(top.status == 200, "follower top-k answers 200")?;
        let top: TopKResponse = top
            .json()
            .map_err(|e| format!("follower top-k body: {e}"))?;
        if top.epoch >= mutation.epoch && top.results.iter().any(|s| s.value == "JAGUAR") {
            println!("smoke: follower converged at epoch {}: ok", top.epoch);
            break;
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "follower stuck at epoch {} (primary published {})",
                top.epoch, mutation.epoch
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // 4. Insurance gauges: caught up, zero divergences.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let metrics = follower
            .get("/metrics")
            .map_err(|e| format!("follower metrics: {e}"))?;
        check(metrics.status == 200, "follower metrics answers 200")?;
        check(
            metrics.body.contains("dn_replica_divergence_total 0"),
            "follower reports zero divergences",
        )?;
        if metrics.body.contains("dn_replica_lag_epochs 0") {
            println!("smoke: follower lag gauge returned to 0: ok");
            break;
        }
        if Instant::now() >= deadline {
            return Err("follower lag gauge never returned to 0".to_owned());
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // 5. The follower refuses writes, pointing at the primary.
    let refused = follower
        .post_json("/v1/mutations", &body)
        .map_err(|e| format!("follower mutations: {e}"))?;
    check(refused.status == 403, "follower refuses writes with 403")?;
    let envelope: ErrorBody = refused.json().map_err(|e| format!("403 body: {e}"))?;
    check(
        envelope.error.kind == "read_only_follower",
        "403 envelope carries the read_only_follower kind",
    )?;
    check(
        envelope
            .error
            .message
            .contains(&format!("http://{primary_addr}")),
        "403 envelope points at the primary",
    )?;

    // 6. Drain follower first (its tail loop needs the primary gone last).
    for (name, client) in [("follower", &mut follower), ("primary", &mut primary)] {
        let response = client
            .post_json("/v1/admin/shutdown", "")
            .map_err(|e| format!("{name} shutdown: {e}"))?;
        check(response.status == 200, "shutdown answers 200")?;
        let shutdown: ShutdownResponse = response
            .json()
            .map_err(|e| format!("{name} shutdown body: {e}"))?;
        check(shutdown.status == "shutting down", "shutdown acknowledged")?;
    }

    println!("smoke-replica: all checks passed");
    Ok(())
}

/// The `ci.sh` drop-folder probe: a server with `--ingest-dir DIR` is
/// already running; write three homograph-drift file generations into
/// `DIR`, wait until the served top-k reflects the drifted token from the
/// last generation, assert the `dn_ingest_*` gauges moved, then drain.
fn run_ingest_smoke(addr: &str, dir: &str) -> Result<(), String> {
    use dn_server::api::{ShutdownResponse, TopKResponse};

    let addr = parse_server_addr(addr)?;
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));

    let health = client
        .get("/healthz")
        .map_err(|e| format!("healthz: {e}"))?;
    check(health.status == 200, "healthz answers 200")?;

    // Three generations of the drift workload: generation 0 plants each
    // Drifter token in one semantic home; later generations migrate it
    // into foreign columns, making it a served homograph.
    let mut stream = datagen::DriftStream::new(datagen::DriftConfig {
        seed: 42,
        tables: 4,
        rows_per_table: 24,
        drifters: 2,
        churn_per_generation: 1,
    });
    for _ in 0..3 {
        let generation = stream
            .write_next_generation(dir)
            .map_err(|e| format!("writing drift generation: {e}"))?;
        println!(
            "smoke-ingest: wrote generation {} ({} files, {} removed)",
            generation.index,
            generation.written.len(),
            generation.removed.len()
        );
        // Give the watcher's two-poll stability guard distinct mtimes and
        // room to pick each generation up before the next lands on top.
        std::thread::sleep(Duration::from_millis(300));
    }
    let token = lake::normalize(&stream.drift_tokens()[0]);

    // Converge: the drifted token from the final generation ranks.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let top = client
            .get("/v1/top-k?measure=bc&k=10")
            .map_err(|e| format!("top-k: {e}"))?;
        check(top.status == 200, "top-k answers 200")?;
        let top: TopKResponse = top.json().map_err(|e| format!("top-k body: {e}"))?;
        if top.results.iter().any(|s| s.value == token) {
            println!(
                "smoke-ingest: drifted homograph {token} ranked at epoch {}: ok",
                top.epoch
            );
            break;
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "server never ranked the drifted homograph {token} (epoch {})",
                top.epoch
            ));
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    // The ingest gauges are live and moved.
    let metrics = client
        .get("/metrics")
        .map_err(|e| format!("metrics: {e}"))?;
    check(metrics.status == 200, "metrics answers 200")?;
    check(
        metrics.body.contains("dn_ingest_batches_applied_total"),
        "metrics expose dn_ingest_batches_applied_total",
    )?;
    check(
        !metrics.body.contains("dn_ingest_batches_applied_total 0\n"),
        "at least one ingest batch was applied",
    )?;
    check(
        metrics.body.contains("dn_ingest_files_seen_total"),
        "metrics expose dn_ingest_files_seen_total",
    )?;

    let response = client
        .post_json("/v1/admin/shutdown", "")
        .map_err(|e| format!("shutdown: {e}"))?;
    check(response.status == 200, "shutdown answers 200")?;
    let shutdown: ShutdownResponse = response.json().map_err(|e| format!("shutdown body: {e}"))?;
    check(shutdown.status == "shutting down", "shutdown acknowledged")?;

    println!("smoke-ingest: all checks passed");
    Ok(())
}
