//! `dn-serve` — serve a durable DomainNet engine over HTTP.
//!
//! ```text
//! dn-serve --data-dir DIR [--shards N] [--addr 127.0.0.1:8080] [--workers 4]
//!          [--checkpoint-every 8] [--cache-capacity 64] [--max-body-bytes N]
//! dn-serve --smoke ADDR
//! ```
//!
//! Server mode: if `--data-dir` already holds a sharded store, the
//! coordinator is recovered from it (`serve_sharded_from_dir` — per-shard
//! snapshot load + WAL replay, the coordinator epoch resumes as the sum
//! of the shard epochs; the shard count comes from the on-disk manifest,
//! and a conflicting `--shards` is an error rather than a silent
//! reshard). Otherwise a fresh sharded store with `--shards N` engines
//! (default 1 — bit-identical to the pre-coordinator engine) is
//! initialized over an empty lake and populated via `POST /v1/mutations`.
//! The bound address and the serving epoch are logged on startup; the
//! process exits after a graceful drain once `POST /v1/admin/shutdown`
//! arrives.
//!
//! Smoke mode (`--smoke ADDR`): a client-only self-check against a
//! running server — healthz → mutation → top-k → checkpoint → shutdown —
//! exiting non-zero on the first unexpected answer. This is the curl-free
//! probe `ci.sh` drives.

use std::process::ExitCode;
use std::time::Duration;

use dn_server::{serve_http, Client, Limits, ServerConfig};
use dn_service::{serve_sharded_durable, serve_sharded_from_dir, CheckpointPolicy, ServiceConfig};
use domainnet::Measure;
use lake::delta::MutableLake;

#[derive(Debug)]
struct Args {
    data_dir: Option<String>,
    shards: usize,
    addr: String,
    workers: usize,
    checkpoint_every: u64,
    cache_capacity: usize,
    max_body_bytes: usize,
    smoke: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            data_dir: None,
            shards: 1,
            addr: "127.0.0.1:8080".to_owned(),
            workers: 4,
            checkpoint_every: 8,
            cache_capacity: 64,
            max_body_bytes: 1 << 20,
            smoke: None,
        }
    }
}

const USAGE: &str = "usage: dn-serve --data-dir DIR [--shards N] [--addr HOST:PORT] [--workers N] \
[--checkpoint-every EPOCHS] [--cache-capacity N] [--max-body-bytes N]\n       \
dn-serve --smoke HOST:PORT";

fn parse_args() -> Result<Args, String> {
    let mut out = Args::default();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--data-dir" => out.data_dir = Some(value("--data-dir")?),
            "--shards" => {
                out.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards must be a positive integer".to_owned())?;
                if out.shards == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
            }
            "--addr" => out.addr = value("--addr")?,
            "--workers" => {
                out.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_owned())?;
                if out.workers == 0 {
                    return Err("--workers must be at least 1".to_owned());
                }
            }
            "--checkpoint-every" => {
                out.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| "--checkpoint-every must be an integer".to_owned())?;
            }
            "--cache-capacity" => {
                out.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|_| "--cache-capacity must be an integer".to_owned())?;
            }
            "--max-body-bytes" => {
                out.max_body_bytes = value("--max-body-bytes")?
                    .parse()
                    .map_err(|_| "--max-body-bytes must be an integer".to_owned())?;
            }
            "--smoke" => out.smoke = Some(value("--smoke")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if out.smoke.is_none() && out.data_dir.is_none() {
        return Err("--data-dir is required in server mode".to_owned());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("dn-serve: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(addr) = &args.smoke {
        return match run_smoke(addr) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("dn-serve --smoke FAILED: {message}");
                ExitCode::FAILURE
            }
        };
    }
    match run_server(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dn-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run_server(args: &Args) -> Result<(), String> {
    let data_dir = args.data_dir.as_deref().expect("checked in parse_args");
    let service_config = ServiceConfig {
        measures: vec![Measure::lcc(), Measure::exact_bc()],
        cache_capacity: args.cache_capacity,
        prune_single_attribute_values: true,
    };
    let policy = if args.checkpoint_every == 0 {
        CheckpointPolicy::manual()
    } else {
        CheckpointPolicy {
            every_epochs: Some(args.checkpoint_every),
            max_wal_bytes: Some(16 << 20),
        }
    };

    let root = std::path::Path::new(data_dir);
    if dn_store::Store::exists(root) {
        return Err(format!(
            "{data_dir} holds a pre-sharding single-engine store; move it into a \
shard-0/ subdirectory with a shards.json manifest to serve it"
        ));
    }
    // The on-disk shard manifest is authoritative once a store exists:
    // resharding in place would split components silently.
    let recovering = match dn_store::read_shard_manifest(root)
        .map_err(|e| format!("probing {data_dir}: {e}"))?
    {
        Some(manifest) => {
            if args.shards != 1 && args.shards != manifest.shards {
                return Err(format!(
                    "{data_dir} was initialized with {} shard(s); --shards {} would \
reshard it in place (not supported)",
                    manifest.shards, args.shards
                ));
            }
            true
        }
        None => false,
    };
    let (service, coordinator) = if recovering {
        serve_sharded_from_dir(data_dir, service_config, policy)
            .map_err(|e| format!("recovering {data_dir}: {e}"))?
    } else {
        serve_sharded_durable(
            MutableLake::new(),
            service_config,
            data_dir,
            policy,
            args.shards,
        )
        .map_err(|e| format!("initializing {data_dir}: {e}"))?
    };
    let shards = coordinator.shard_count();
    let epoch = service.epoch();

    let server = serve_http(
        service,
        coordinator,
        ServerConfig {
            addr: args.addr.clone(),
            workers: args.workers,
            limits: Limits {
                max_body_bytes: args.max_body_bytes,
                ..Limits::default()
            },
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("binding {}: {e}", args.addr))?;

    println!(
        "dn-serve listening on http://{} epoch={epoch} shards={shards} workers={} \
data_dir={data_dir} ({})",
        server.local_addr(),
        args.workers,
        if recovering { "recovered" } else { "fresh" },
    );

    // Block until a graceful shutdown (POST /v1/admin/shutdown) drains
    // the workers, then checkpoint the final state so the next start
    // recovers without a WAL replay.
    let mut coordinator = server.join();
    match coordinator.checkpoint_now() {
        Ok(true) => println!("dn-serve: final checkpoint written, exiting"),
        Ok(false) => println!("dn-serve: exiting"),
        Err(e) => eprintln!("dn-serve: final checkpoint failed: {e}"),
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Smoke mode
// ---------------------------------------------------------------------

fn check(condition: bool, message: &str) -> Result<(), String> {
    if condition {
        println!("smoke: {message}: ok");
        Ok(())
    } else {
        Err(message.to_owned())
    }
}

/// The `ci.sh` wire probe: drive one full ingest-query-persist-drain
/// cycle through the client module against a freshly started server.
fn run_smoke(addr: &str) -> Result<(), String> {
    use dn_server::api::{
        CheckpointResponse, HealthResponse, MutationRequest, MutationResponse, ShutdownResponse,
        TopKResponse,
    };
    use lake::table::TableBuilder;

    let addr: std::net::SocketAddr = addr
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .parse()
        .map_err(|e| format!("bad server address: {e}"))?;
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));

    // 1. healthz
    let health = client
        .get("/healthz")
        .map_err(|e| format!("healthz: {e}"))?;
    check(health.status == 200, "healthz answers 200")?;
    let health: HealthResponse = health.json().map_err(|e| format!("healthz body: {e}"))?;
    check(health.status == "ok", "healthz body says ok")?;

    // 2. mutation: two tables sharing JAGUAR across semantic domains —
    // the paper's running homograph, ingested over the wire.
    let request = MutationRequest {
        deltas: vec![
            lake::delta::LakeDelta::new().add_table(
                TableBuilder::new("smoke_zoo")
                    .column("animal", ["Jaguar", "Okapi", "Zebra"])
                    .build()
                    .map_err(|e| format!("build table: {e}"))?,
            ),
            lake::delta::LakeDelta::new().add_table(
                TableBuilder::new("smoke_cars")
                    .column("make", ["Jaguar", "Fiat", "Kia"])
                    .build()
                    .map_err(|e| format!("build table: {e}"))?,
            ),
        ],
    };
    let body = serde_json::to_string(&request).map_err(|e| format!("encode mutation: {e}"))?;
    let response = client
        .post_json("/v1/mutations", &body)
        .map_err(|e| format!("mutations: {e}"))?;
    check(response.status == 200, "mutation batch answers 200")?;
    let mutation: MutationResponse = response.json().map_err(|e| format!("mutation body: {e}"))?;
    check(
        mutation.epoch > health.epoch,
        "mutation published a new epoch",
    )?;
    check(mutation.stats.edges_added > 0, "mutation added graph edges")?;

    // 3. top-k reflects the ingested homograph
    let top = client
        .get("/v1/top-k?measure=bc&k=5")
        .map_err(|e| format!("top-k: {e}"))?;
    check(top.status == 200, "top-k answers 200")?;
    let top: TopKResponse = top.json().map_err(|e| format!("top-k body: {e}"))?;
    check(
        top.epoch >= mutation.epoch,
        "top-k sees the published epoch",
    )?;
    check(
        top.results.iter().any(|s| s.value == "JAGUAR"),
        "top-k surfaces the injected homograph JAGUAR",
    )?;

    // 4. metrics expose the per-shard gauges (the server always fronts
    // the coordinator, so shard 0 exists even in single-shard mode)
    let metrics = client
        .get("/metrics")
        .map_err(|e| format!("metrics: {e}"))?;
    check(metrics.status == 200, "metrics answers 200")?;
    check(
        metrics.body.contains("dn_shard_epoch{shard=\"0\"}"),
        "metrics expose per-shard epoch gauges",
    )?;

    // 5. checkpoint
    let response = client
        .post_json("/v1/admin/checkpoint", "")
        .map_err(|e| format!("checkpoint: {e}"))?;
    check(response.status == 200, "checkpoint answers 200")?;
    let checkpoint: CheckpointResponse = response
        .json()
        .map_err(|e| format!("checkpoint body: {e}"))?;
    check(checkpoint.checkpointed, "checkpoint was written")?;

    // 6. graceful shutdown
    let response = client
        .post_json("/v1/admin/shutdown", "")
        .map_err(|e| format!("shutdown: {e}"))?;
    check(response.status == 200, "shutdown answers 200")?;
    let shutdown: ShutdownResponse = response.json().map_err(|e| format!("shutdown body: {e}"))?;
    check(shutdown.status == "shutting down", "shutdown acknowledged")?;

    println!("smoke: all checks passed");
    Ok(())
}
