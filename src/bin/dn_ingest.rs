//! `dn-ingest` — tail a CSV drop-folder into a remote DomainNet primary.
//!
//! ```text
//! dn-ingest --watch-dir DIR --primary http://HOST:PORT
//!           [--journal PATH] [--poll-ms 500] [--once]
//!           [--stats-every-s 60] [--trace-sample 16] [--log-format text|json]
//! ```
//!
//! The standalone companion to `dn-serve --ingest-dir`: where that flag
//! runs the ingester in-process against the server's own coordinator,
//! this binary runs it anywhere a drop-folder lives and ships the
//! synthesized delta batches over HTTP via `POST /v1/mutations`. The
//! resume journal (default `<watch-dir>/.dn-ingest.journal`) carries the
//! exactly-once state across restarts: a killed-and-restarted `dn-ingest`
//! resumes without duplicating or losing a batch, as long as it is the
//! folder's only writer to that primary.
//!
//! A remote ingester has no `/metrics` endpoint, so the polling loop
//! emits a one-line JSON stats event every `--stats-every-s` seconds
//! (files seen, batches applied, journal seq, caught-up — `0` disables).
//! While `--trace-sample` is non-zero, sampled poll cycles forward their
//! trace ID on every delivery, so the primary's `/v1/debug/traces` ring
//! shows this ingester's mutations under the cycle's ID.
//!
//! `--once` catches the primary up with the folder's current contents
//! and exits (useful in scripts and cron-style setups): it polls every
//! `--poll-ms` until a cycle reports caught-up with nothing pending —
//! at least two polls, because a file only becomes ingestable once its
//! fingerprint holds still across two consecutive polls, and that
//! stability state lives in the process, not the journal. The default
//! is a polling loop every `--poll-ms` until SIGINT/kill.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dn_ingest::{IngestConfig, IngestError, IngestStats, Ingester};
use dn_server::HttpSink;
use dn_trace::{EventValue, Level};

#[derive(Debug)]
struct Args {
    watch_dir: Option<String>,
    primary: Option<String>,
    journal: Option<String>,
    poll_ms: u64,
    once: bool,
    stats_every_s: u64,
    trace_sample: u32,
    log_json: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            watch_dir: None,
            primary: None,
            journal: None,
            poll_ms: 500,
            once: false,
            stats_every_s: 60,
            trace_sample: 16,
            log_json: false,
        }
    }
}

const USAGE: &str = "usage: dn-ingest --watch-dir DIR --primary http://HOST:PORT \
[--journal PATH] [--poll-ms MS] [--once] [--stats-every-s SECS] [--trace-sample N] \
[--log-format text|json]";

fn parse_args() -> Result<Args, String> {
    let mut out = Args::default();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--watch-dir" => out.watch_dir = Some(value("--watch-dir")?),
            "--primary" => out.primary = Some(value("--primary")?),
            "--journal" => out.journal = Some(value("--journal")?),
            "--poll-ms" => {
                out.poll_ms = value("--poll-ms")?
                    .parse()
                    .map_err(|_| "--poll-ms must be an integer".to_owned())?;
                if out.poll_ms == 0 {
                    return Err("--poll-ms must be at least 1".to_owned());
                }
            }
            "--once" => out.once = true,
            "--stats-every-s" => {
                // 0 disables the periodic stats line.
                out.stats_every_s = value("--stats-every-s")?
                    .parse()
                    .map_err(|_| "--stats-every-s must be an integer".to_owned())?;
            }
            "--trace-sample" => {
                out.trace_sample = value("--trace-sample")?
                    .parse()
                    .map_err(|_| "--trace-sample must be a non-negative integer".to_owned())?;
            }
            "--log-format" => match value("--log-format")?.as_str() {
                "text" => out.log_json = false,
                "json" => out.log_json = true,
                other => return Err(format!("--log-format must be text or json, not {other:?}")),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if out.watch_dir.is_none() {
        return Err("--watch-dir is required".to_owned());
    }
    if out.primary.is_none() {
        return Err("--primary is required".to_owned());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("dn-ingest: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    dn_trace::set_log_format_json(args.log_json);
    dn_trace::set_sample_every(args.trace_sample);
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dn-ingest: {message}");
            ExitCode::FAILURE
        }
    }
}

/// The periodic observability line for a remote ingester: always one JSON
/// object per line, machine-parsed by whatever tails this process.
fn emit_stats(stats: &IngestStats, journal_seq: u64, pending: bool, caught_up: bool) {
    let snapshot = stats.snapshot();
    dn_trace::json_event(
        Level::Info,
        "ingest_stats",
        &[
            ("files_seen", EventValue::U64(snapshot.files_seen)),
            ("batches_applied", EventValue::U64(snapshot.batches_applied)),
            ("rows_diffed", EventValue::U64(snapshot.rows_diffed)),
            ("retries", EventValue::U64(snapshot.retries)),
            ("torn_files", EventValue::U64(snapshot.torn_files)),
            ("polls", EventValue::U64(snapshot.polls)),
            ("journal_seq", EventValue::U64(journal_seq)),
            ("pending", EventValue::Bool(pending)),
            ("caught_up", EventValue::Bool(caught_up)),
        ],
    );
}

fn run(args: &Args) -> Result<(), String> {
    let watch_dir = args.watch_dir.as_deref().expect("checked in parse_args");
    let primary = args.primary.as_deref().expect("checked in parse_args");
    let addr: std::net::SocketAddr = primary
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .parse()
        .map_err(|e| format!("bad primary address {primary:?}: {e}"))?;

    let mut config = IngestConfig::new(watch_dir);
    if let Some(journal) = &args.journal {
        config.journal_path = journal.into();
    }
    config.poll_interval = Duration::from_millis(args.poll_ms);
    let journal_path = config.journal_path.clone();

    let stats = Arc::new(IngestStats::default());
    let sink = HttpSink::with_timeout(addr, Duration::from_secs(10));
    let mut ingester = Ingester::new(config, sink, Arc::clone(&stats))
        .map_err(|e| format!("starting ingester on {watch_dir}: {e}"))?;

    dn_trace::event(
        Level::Info,
        "ingest_started",
        &[
            ("watch_dir", EventValue::Str(watch_dir)),
            ("primary", EventValue::Str(&format!("http://{addr}"))),
            (
                "journal",
                EventValue::Str(&journal_path.display().to_string()),
            ),
            ("resume_seq", EventValue::U64(ingester.last_seq())),
        ],
    );

    if args.once {
        // One catch-up cycle, not one poll: the two-poll stability guard
        // is in-process state, so the first poll after a fresh start only
        // observes fingerprints — keep polling until a cycle reports
        // caught-up with nothing pending, then exit.
        let mut polls = 0u64;
        let (mut batches, mut ops, mut torn) = (0u64, 0u64, 0u64);
        loop {
            let report = ingester
                .poll_once()
                .map_err(|e| format!("poll failed: {e}"))?;
            polls += 1;
            batches += report.batches_delivered as u64;
            ops += report.ops_delivered as u64;
            torn += report.torn_skipped as u64;
            if report.caught_up && !ingester.has_pending() {
                break;
            }
            std::thread::sleep(Duration::from_millis(args.poll_ms));
        }
        dn_trace::event(
            Level::Info,
            "ingest_caught_up",
            &[
                ("polls", EventValue::U64(polls)),
                ("batches_delivered", EventValue::U64(batches)),
                ("ops_delivered", EventValue::U64(ops)),
                ("torn_skipped", EventValue::U64(torn)),
            ],
        );
        emit_stats(&stats, ingester.last_seq(), ingester.has_pending(), true);
        return Ok(());
    }

    // Poll until killed. Transient errors (primary unreachable, torn
    // folder I/O) are logged and retried next cycle; only a corrupt
    // journal is fatal — resuming past it could double-apply a batch.
    // The loop is hand-rolled (rather than `Ingester::run`) so the stats
    // cadence can interleave with the poll cadence.
    let stats_every = Duration::from_secs(args.stats_every_s);
    let mut last_stats = Instant::now();
    let mut caught_up = false;
    loop {
        match ingester.poll_once() {
            Ok(report) => caught_up = report.caught_up,
            Err(e @ IngestError::Journal { .. }) => return Err(format!("halted: {e}")),
            Err(e) => dn_trace::event(
                Level::Warn,
                "ingest_retry",
                &[("error", EventValue::Str(&e.to_string()))],
            ),
        }
        if args.stats_every_s > 0 && last_stats.elapsed() >= stats_every {
            emit_stats(
                &stats,
                ingester.last_seq(),
                ingester.has_pending(),
                caught_up,
            );
            last_stats = Instant::now();
        }
        std::thread::sleep(Duration::from_millis(args.poll_ms));
    }
}
