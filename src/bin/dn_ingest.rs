//! `dn-ingest` — tail a CSV drop-folder into a remote DomainNet primary.
//!
//! ```text
//! dn-ingest --watch-dir DIR --primary http://HOST:PORT
//!           [--journal PATH] [--poll-ms 500] [--once]
//! ```
//!
//! The standalone companion to `dn-serve --ingest-dir`: where that flag
//! runs the ingester in-process against the server's own coordinator,
//! this binary runs it anywhere a drop-folder lives and ships the
//! synthesized delta batches over HTTP via `POST /v1/mutations`. The
//! resume journal (default `<watch-dir>/.dn-ingest.journal`) carries the
//! exactly-once state across restarts: a killed-and-restarted `dn-ingest`
//! resumes without duplicating or losing a batch, as long as it is the
//! folder's only writer to that primary.
//!
//! `--once` catches the primary up with the folder's current contents
//! and exits (useful in scripts and cron-style setups): it polls every
//! `--poll-ms` until a cycle reports caught-up with nothing pending —
//! at least two polls, because a file only becomes ingestable once its
//! fingerprint holds still across two consecutive polls, and that
//! stability state lives in the process, not the journal. The default
//! is a polling loop every `--poll-ms` until SIGINT/kill.

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use dn_ingest::{IngestConfig, IngestStats, Ingester};
use dn_server::HttpSink;

#[derive(Debug)]
struct Args {
    watch_dir: Option<String>,
    primary: Option<String>,
    journal: Option<String>,
    poll_ms: u64,
    once: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            watch_dir: None,
            primary: None,
            journal: None,
            poll_ms: 500,
            once: false,
        }
    }
}

const USAGE: &str = "usage: dn-ingest --watch-dir DIR --primary http://HOST:PORT \
[--journal PATH] [--poll-ms MS] [--once]";

fn parse_args() -> Result<Args, String> {
    let mut out = Args::default();
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            argv.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--watch-dir" => out.watch_dir = Some(value("--watch-dir")?),
            "--primary" => out.primary = Some(value("--primary")?),
            "--journal" => out.journal = Some(value("--journal")?),
            "--poll-ms" => {
                out.poll_ms = value("--poll-ms")?
                    .parse()
                    .map_err(|_| "--poll-ms must be an integer".to_owned())?;
                if out.poll_ms == 0 {
                    return Err("--poll-ms must be at least 1".to_owned());
                }
            }
            "--once" => out.once = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if out.watch_dir.is_none() {
        return Err("--watch-dir is required".to_owned());
    }
    if out.primary.is_none() {
        return Err("--primary is required".to_owned());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("dn-ingest: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dn-ingest: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    let watch_dir = args.watch_dir.as_deref().expect("checked in parse_args");
    let primary = args.primary.as_deref().expect("checked in parse_args");
    let addr: std::net::SocketAddr = primary
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .parse()
        .map_err(|e| format!("bad primary address {primary:?}: {e}"))?;

    let mut config = IngestConfig::new(watch_dir);
    if let Some(journal) = &args.journal {
        config.journal_path = journal.into();
    }
    config.poll_interval = Duration::from_millis(args.poll_ms);
    let journal_path = config.journal_path.clone();

    let stats = Arc::new(IngestStats::default());
    let sink = HttpSink::with_timeout(addr, Duration::from_secs(10));
    let mut ingester = Ingester::new(config, sink, Arc::clone(&stats))
        .map_err(|e| format!("starting ingester on {watch_dir}: {e}"))?;

    println!(
        "dn-ingest watching {watch_dir} -> http://{addr} (journal {}, resume seq {})",
        journal_path.display(),
        ingester.last_seq(),
    );

    if args.once {
        // One catch-up cycle, not one poll: the two-poll stability guard
        // is in-process state, so the first poll after a fresh start only
        // observes fingerprints — keep polling until a cycle reports
        // caught-up with nothing pending, then exit.
        let mut polls = 0u64;
        let (mut batches, mut ops, mut torn) = (0u64, 0u64, 0u64);
        loop {
            let report = ingester
                .poll_once()
                .map_err(|e| format!("poll failed: {e}"))?;
            polls += 1;
            batches += report.batches_delivered as u64;
            ops += report.ops_delivered as u64;
            torn += report.torn_skipped as u64;
            if report.caught_up && !ingester.has_pending() {
                break;
            }
            std::thread::sleep(Duration::from_millis(args.poll_ms));
        }
        let snapshot = stats.snapshot();
        println!(
            "dn-ingest: caught up in {polls} poll(s): delivered {batches} batch(es) / \
{ops} op(s), {torn} torn skipped",
        );
        println!(
            "dn-ingest: totals: {} batches applied, {} rows diffed, {} retries",
            snapshot.batches_applied, snapshot.rows_diffed, snapshot.retries,
        );
        return Ok(());
    }

    // Poll until killed. Transient errors (primary unreachable, torn
    // folder I/O) are logged and retried next cycle; only a corrupt
    // journal is fatal — resuming past it could double-apply a batch.
    let stop = AtomicBool::new(false);
    ingester
        .run(&stop, |e| {
            eprintln!("dn-ingest: error (will retry next poll): {e}");
        })
        .map_err(|e| format!("halted: {e}"))
}
