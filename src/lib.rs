//! Umbrella crate for the DomainNet reproduction workspace.
//!
//! This crate exists to host the repository-level [examples](../examples) and
//! [integration tests](../tests). It re-exports the workspace crates so that
//! examples and tests can use a single, convenient namespace:
//!
//! ```
//! use domainnet_suite::prelude::*;
//!
//! let lake = datagen::sb::SbGenerator::new(7).generate();
//! assert!(lake.catalog.table_count() > 0);
//! ```
//!
//! The actual functionality lives in the member crates:
//!
//! * [`lake`] — the data-lake substrate (tables, columns, values, CSV I/O).
//! * [`dn_graph`] — the bipartite graph engine and centrality measures.
//! * [`domainnet`] — the DomainNet pipeline (the paper's contribution).
//! * [`d4`] — the D4 domain-discovery baseline.
//! * [`datagen`] — benchmark and workload generators.
//! * [`dn_store`] — durable snapshots + delta WAL with crash recovery.
//! * [`dn_service`] — the concurrent (optionally durable) serving engine.
//! * [`dn_server`] — the zero-dependency HTTP/JSON query + ingest server.

pub use d4;
pub use datagen;
pub use dn_graph;
pub use dn_server;
pub use dn_service;
pub use dn_store;
pub use domainnet;
pub use lake;

/// Convenience re-exports used by the examples and integration tests.
pub mod prelude {
    pub use d4;
    pub use datagen;
    pub use dn_graph;
    pub use dn_server;
    pub use dn_service;
    pub use dn_store;
    pub use domainnet;
    pub use lake;

    pub use d4::D4Config;
    pub use datagen::mutate::{MutationConfig, MutationStream};
    pub use datagen::sb::SbGenerator;
    pub use datagen::tus::{TusConfig, TusGenerator};
    pub use dn_graph::bipartite::BipartiteGraph;
    pub use domainnet::pipeline::{DomainNet, DomainNetBuilder};
    pub use domainnet::Measure;
    pub use lake::catalog::LakeCatalog;
    pub use lake::delta::{LakeDelta, LakeView, MutableLake};
}
