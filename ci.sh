#!/usr/bin/env bash
# CI gate for the DomainNet reproduction workspace.
#
# Runs, in order: rustfmt check, clippy with warnings denied, rustdoc with
# warnings denied (so documentation rot fails the gate), the doc-test suite,
# a release build, the test suite, and then two explicitly labeled
# serving-layer gates: the golden-ranking regression corpus and the
# concurrency stress test. The main `cargo test -q` pass skips those two
# suites (they run once, in their own labeled steps, so a ranking drift or
# a consistency violation fails CI with an unambiguous gate name instead of
# being buried in the full run); the union of the three test steps is
# exactly the coverage of the repo's tier-1 command
# (`cargo build --release && cargo test -q`).
#
# The stress gate passes `--test-threads` matched to the machine's cores.
# Note libtest's --test-threads bounds *concurrently running test
# functions*, not the threads a test spawns — today serving_stress has one
# test (which spawns its own 8 readers + writer regardless), so the flag
# only starts mattering as more stress tests are added to that binary.
#
# Usage: ./ci.sh [--quick]
#   --quick   skip the criterion benches and the exp_serving smoke run
#             (keeps everything tier-1: build, tests, golden, stress)
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "unknown argument: $arg (usage: ./ci.sh [--quick])" >&2; exit 2 ;;
    esac
done

CORES=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# The tier-1 `cargo test -q` also runs doctests; this explicit step is
# kept deliberately so documentation rot fails fast with a clearly labeled
# gate step (the overlap costs a few seconds, attribution is worth it).
echo "==> cargo test --doc -q"
cargo test --doc -q

echo "==> cargo build --release"
cargo build --release

# Skip the two serving-layer suites here; they run next as labeled gates.
# (--skip is a substring filter applied inside every test binary, so use the
# full test-function names to keep the collision surface minimal.)
echo "==> cargo test -q (golden + stress deferred to labeled gates)"
cargo test -q -- \
    --skip golden_rankings_match_the_committed_corpus \
    --skip golden_corpus_files_are_well_formed \
    --skip readers_always_observe_consistent_epochs

echo "==> gate: golden-ranking regression corpus"
cargo test -q --test golden_rankings

echo "==> gate: serving concurrency stress (--test-threads ${CORES})"
cargo test -q --test serving_stress -- --test-threads "${CORES}"

if [[ "$QUICK" -eq 0 ]]; then
    echo "==> criterion benches (offline shim, indicative timings)"
    cargo bench -q
    echo "==> exp_serving smoke (--scale 0.3)"
    cargo run --release -q -p dn-bench --bin exp_serving -- --scale 0.3
else
    echo "==> --quick: skipping benches and exp_serving smoke"
fi

echo "CI OK"
