#!/usr/bin/env bash
# CI gate for the DomainNet reproduction workspace.
#
# Runs, in order: rustfmt check, clippy with warnings denied, a release
# build, and the full test suite. The last two lines are exactly the repo's
# tier-1 verification command (`cargo build --release && cargo test -q`).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "CI OK"
