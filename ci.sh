#!/usr/bin/env bash
# CI gate for the DomainNet reproduction workspace.
#
# Runs, in order: rustfmt check, clippy with warnings denied, rustdoc with
# warnings denied (so documentation rot fails the gate), the doc-test suite,
# a release build, and the full test suite. The last two steps are exactly
# the repo's tier-1 verification command
# (`cargo build --release && cargo test -q`).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# The final tier-1 `cargo test -q` also runs doctests; this explicit step is
# kept deliberately so documentation rot fails fast with a clearly labeled
# gate step (the overlap costs a few seconds, attribution is worth it).
echo "==> cargo test --doc -q"
cargo test --doc -q

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "CI OK"
