#!/usr/bin/env bash
# CI gate for the DomainNet reproduction workspace.
#
# Runs, in order: rustfmt check, clippy with warnings denied, rustdoc with
# warnings denied (so documentation rot fails the gate), the doc-test suite,
# a release build, the test suite, and then explicitly labeled gates: the
# golden-ranking regression corpus, the concurrency stress test, the
# dn-store corruption-hardening suite, the crash-recovery suite, a
# tempdir-hygiene check, an end-to-end HTTP smoke (dn-serve started on
# a loopback port and driven through the dn-server client module — once
# single-shard, once with --shards 2 through the coordinator — both with
# --threads 4 so the pooled compute core is what gets smoked, and with
# --trace-sample 1 --slow-query-us 0 so the smoke also asserts the
# /v1/debug/traces ring serves the request's own span tree and the
# slow-query JSON log fires), and a
# replication smoke (a 2-shard primary plus a --follow follower driven by
# dn-serve --smoke-replica: convergence, lag-gauge return to 0, and the
# read-only 403 envelope — run twice, with a single-threaded and then a
# 4-thread primary, so zero divergences proves the pooled compute core's
# digests are bit-identical to the sequential replay), and a drop-folder
# ingest smoke (dn-serve --ingest-dir tails a CSV folder while
# --smoke-ingest writes three homograph-drift file generations into it and
# asserts the served top-k reflects the drifted token and the dn_ingest_*
# gauges moved). The
# main `cargo test -q` pass skips the gated suites (they run once, in
# their own labeled steps, so a ranking drift, a consistency violation,
# or a recovery regression fails CI with an unambiguous gate name instead
# of being buried in the full run); the union
# of the test steps is at least the coverage of the repo's tier-1 command
# (`cargo build --release && cargo test -q`).
#
# The stress gate passes `--test-threads` matched to the machine's cores.
# Note libtest's --test-threads bounds *concurrently running test
# functions*, not the threads a test spawns — today serving_stress has one
# test (which spawns its own 8 readers + writer regardless), so the flag
# only starts mattering as more stress tests are added to that binary.
#
# Usage: ./ci.sh [--quick]
#   --quick   skip the criterion benches and the exp_serving/exp_http/
#             exp_replica/exp_parallel/exp_ingest/exp_trace smoke runs (keeps
#             everything tier-1: build, tests, golden, stress, recovery,
#             HTTP + replication + ingest smokes)
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "unknown argument: $arg (usage: ./ci.sh [--quick])" >&2; exit 2 ;;
    esac
done

CORES=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# The tier-1 `cargo test -q` also runs doctests; this explicit step is
# kept deliberately so documentation rot fails fast with a clearly labeled
# gate step (the overlap costs a few seconds, attribution is worth it).
echo "==> cargo test --doc -q"
cargo test --doc -q

echo "==> cargo build --release"
cargo build --release

# Skip the suites that run next as labeled gates. (--skip is a substring
# filter applied inside every test binary, so use the full test-function
# names to keep the collision surface minimal.)
echo "==> cargo test -q (golden + stress + store gates deferred)"
cargo test -q -- \
    --skip golden_rankings_match_the_committed_corpus \
    --skip golden_corpus_files_are_well_formed \
    --skip readers_always_observe_consistent_epochs \
    --skip kill_and_recover_matches_uninterrupted_run_on_golden_measures \
    --skip random_checkpoint_recovery_equivalence \
    --skip recovered_export_matches_golden_corpus_workflow

echo "==> gate: golden-ranking regression corpus"
cargo test -q --test golden_rankings

echo "==> gate: serving concurrency stress (--test-threads ${CORES})"
cargo test -q --test serving_stress -- --test-threads "${CORES}"

# Durability gates (fast; kept inside --quick). The store's snapshot
# round-trip + WAL unit tests run in the main pass above; these two suites
# are the labeled corruption-hardening and crash-recovery regressions.
# Clear residue a *previous* (possibly failed) run may have left so the
# hygiene gate below judges only this run.
rm -rf target/tmp/dn_store_* target/tmp/dn_replica_* target/tmp/dn_http_gate target/tmp/dn_ingest_gate 2>/dev/null || true

echo "==> gate: store corruption hardening (typed errors, no panics)"
cargo test -q -p dn-store --test corruption

echo "==> gate: store crash recovery (kill + recover == uninterrupted)"
cargo test -q --test store_recovery

# Store and replica tests create their scratch dirs under target/tmp
# (CARGO_TARGET_TMPDIR) and must remove them; leftovers mean a test leaked
# state even though it passed.
echo "==> gate: store tempdir hygiene"
STRAY=$(find target/tmp -mindepth 1 -maxdepth 1 \( -name 'dn_store_*' -o -name 'dn_replica_*' \) 2>/dev/null || true)
if [[ -n "${STRAY}" ]]; then
    echo "stray store test directories left behind:" >&2
    echo "${STRAY}" >&2
    exit 1
fi

# HTTP serving smoke: start a real dn-serve process on a loopback port,
# then drive healthz → mutation → top-k → metrics → checkpoint → shutdown
# through the client module (dn-serve --smoke; no curl involved). Runs
# twice — once in default single-shard mode and once with --shards 2, so
# the scatter-gather coordinator is smoked end-to-end over the same wire.
# Self-cleaning under target/tmp, total runtime bounded by the polling
# loops below (~30s worst case per mode) plus the cargo build above.
http_gate_fail() {
    echo "HTTP gate (${HTTP_MODE}) failed: $1" >&2
    [[ -f "${HTTP_LOG}" ]] && sed 's/^/  server: /' "${HTTP_LOG}" >&2
    kill -9 "${HTTP_PID}" 2>/dev/null || true
    exit 1
}
for HTTP_MODE in single sharded; do
    HTTP_FLAGS=""
    [[ "${HTTP_MODE}" == "sharded" ]] && HTTP_FLAGS="--shards 2"
    echo "==> gate: HTTP serving smoke (dn-serve ${HTTP_FLAGS:-"--shards 1"} + client module)"
    HTTP_DIR="target/tmp/dn_http_gate_${HTTP_MODE}"
    rm -rf "${HTTP_DIR}" 2>/dev/null || true
    mkdir -p "${HTTP_DIR}"
    HTTP_LOG="${HTTP_DIR}/server.log"
    # --trace-sample 1 makes the smoke's per-trace ring assertions
    # mandatory; --slow-query-us 0 makes every request emit a slow-query
    # JSON line, asserted below.
    # shellcheck disable=SC2086  # HTTP_FLAGS is intentionally word-split
    ./target/release/dn-serve \
        --data-dir "${HTTP_DIR}/store" \
        --addr 127.0.0.1:0 --workers 2 --threads 4 \
        --trace-sample 1 --slow-query-us 0 ${HTTP_FLAGS} >"${HTTP_LOG}" 2>&1 &
    HTTP_PID=$!
    HTTP_ADDR=""
    for _ in $(seq 1 100); do
        HTTP_ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\) .*#\1#p' "${HTTP_LOG}" | head -1)
        [[ -n "${HTTP_ADDR}" ]] && break
        kill -0 "${HTTP_PID}" 2>/dev/null || http_gate_fail "server exited before binding"
        sleep 0.1
    done
    [[ -n "${HTTP_ADDR}" ]] || http_gate_fail "server never logged its address"
    ./target/release/dn-serve --smoke "${HTTP_ADDR}" || http_gate_fail "smoke client reported failure"
    # The smoke ends with POST /v1/admin/shutdown; the server must drain
    # and exit on its own (and leave no stray process behind).
    for _ in $(seq 1 200); do
        kill -0 "${HTTP_PID}" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "${HTTP_PID}" 2>/dev/null; then
        http_gate_fail "server did not shut down after the smoke"
    fi
    wait "${HTTP_PID}" || http_gate_fail "server exited non-zero"
    grep -q '"event":"slow_query"' "${HTTP_LOG}" \
        || http_gate_fail "no slow-query JSON line despite --slow-query-us 0"
    grep -q '"trace_id":"' "${HTTP_LOG}" \
        || http_gate_fail "slow-query lines carry no trace IDs despite --trace-sample 1"
    if [[ "${HTTP_MODE}" == "sharded" ]]; then
        [[ -f "${HTTP_DIR}/store/shards.json" ]] || http_gate_fail "sharded store wrote no manifest"
        [[ -d "${HTTP_DIR}/store/shard-1" ]] || http_gate_fail "sharded store wrote no shard-1 directory"
        grep -q "shards=2" "${HTTP_LOG}" || http_gate_fail "server did not start in 2-shard mode"
    fi
    rm -rf "${HTTP_DIR}"
done

# Replication smoke: a real 2-shard primary plus a real `--follow`
# follower, both on loopback port 0, driven end to end by
# dn-serve --smoke-replica (mutate via the primary, wait for the follower
# to converge at the matching epoch, assert dn_replica_lag_epochs returns
# to 0 with zero divergences, and assert the 403 read-only envelope). Runs
# twice: primary --threads 1 and primary --threads 4. The follower's
# divergence gauge compares score digests against its own (sequential)
# replay, so the second pass proves the pooled compute core is
# bit-identical to the sequential one across a real WAL-shipping pipeline.
# The smoke shuts both processes down itself; self-cleaning under
# target/tmp.
replica_gate_fail() {
    echo "replication gate (primary --threads ${REP_THREADS}) failed: $1" >&2
    [[ -f "${REP_DIR}/primary.log" ]] && sed 's/^/  primary: /' "${REP_DIR}/primary.log" >&2
    [[ -f "${REP_DIR}/follower.log" ]] && sed 's/^/  follower: /' "${REP_DIR}/follower.log" >&2
    kill -9 "${REP_PRIMARY_PID:-0}" "${REP_FOLLOWER_PID:-0}" 2>/dev/null || true
    exit 1
}
for REP_THREADS in 1 4; do
    echo "==> gate: replication smoke (primary --threads ${REP_THREADS} + --follow follower + --smoke-replica)"
    REP_DIR="target/tmp/dn_replica_gate"
    rm -rf "${REP_DIR}" 2>/dev/null || true
    mkdir -p "${REP_DIR}"
    ./target/release/dn-serve \
        --data-dir "${REP_DIR}/primary" \
        --addr 127.0.0.1:0 --workers 2 --shards 2 \
        --threads "${REP_THREADS}" >"${REP_DIR}/primary.log" 2>&1 &
    REP_PRIMARY_PID=$!
    REP_PRIMARY_ADDR=""
    for _ in $(seq 1 100); do
        REP_PRIMARY_ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\) .*#\1#p' "${REP_DIR}/primary.log" | head -1)
        [[ -n "${REP_PRIMARY_ADDR}" ]] && break
        kill -0 "${REP_PRIMARY_PID}" 2>/dev/null || replica_gate_fail "primary exited before binding"
        sleep 0.1
    done
    [[ -n "${REP_PRIMARY_ADDR}" ]] || replica_gate_fail "primary never logged its address"
    ./target/release/dn-serve \
        --data-dir "${REP_DIR}/follower" \
        --addr 127.0.0.1:0 --workers 2 --poll-ms 50 --threads 1 \
        --follow "http://${REP_PRIMARY_ADDR}" >"${REP_DIR}/follower.log" 2>&1 &
    REP_FOLLOWER_PID=$!
    REP_FOLLOWER_ADDR=""
    for _ in $(seq 1 100); do
        REP_FOLLOWER_ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\) .*#\1#p' "${REP_DIR}/follower.log" | head -1)
        [[ -n "${REP_FOLLOWER_ADDR}" ]] && break
        kill -0 "${REP_FOLLOWER_PID}" 2>/dev/null || replica_gate_fail "follower exited before binding"
        sleep 0.1
    done
    [[ -n "${REP_FOLLOWER_ADDR}" ]] || replica_gate_fail "follower never logged its address"
    ./target/release/dn-serve --smoke-replica "${REP_PRIMARY_ADDR}" "${REP_FOLLOWER_ADDR}" \
        || replica_gate_fail "smoke-replica client reported failure"
    for _ in $(seq 1 200); do
        kill -0 "${REP_PRIMARY_PID}" 2>/dev/null || kill -0 "${REP_FOLLOWER_PID}" 2>/dev/null || break
        sleep 0.1
    done
    kill -0 "${REP_PRIMARY_PID}" 2>/dev/null && replica_gate_fail "primary did not shut down after the smoke"
    kill -0 "${REP_FOLLOWER_PID}" 2>/dev/null && replica_gate_fail "follower did not shut down after the smoke"
    wait "${REP_PRIMARY_PID}" || replica_gate_fail "primary exited non-zero"
    wait "${REP_FOLLOWER_PID}" || replica_gate_fail "follower exited non-zero"
    rm -rf "${REP_DIR}"
done

# Drop-folder ingest smoke: a real dn-serve with --ingest-dir tails a CSV
# drop-folder on loopback while dn-serve --smoke-ingest writes three
# seeded homograph-drift file generations into it, waits until the served
# top-k ranks the drifted token from the last generation, and asserts the
# dn_ingest_* gauges in /metrics moved. The smoke shuts the server down
# itself; self-cleaning under target/tmp.
ingest_gate_fail() {
    echo "ingest gate failed: $1" >&2
    [[ -f "${ING_LOG}" ]] && sed 's/^/  server: /' "${ING_LOG}" >&2
    kill -9 "${ING_PID:-0}" 2>/dev/null || true
    exit 1
}
echo "==> gate: drop-folder ingest smoke (dn-serve --ingest-dir + --smoke-ingest)"
ING_DIR="target/tmp/dn_ingest_gate"
rm -rf "${ING_DIR}" 2>/dev/null || true
mkdir -p "${ING_DIR}"
ING_LOG="${ING_DIR}/server.log"
./target/release/dn-serve \
    --data-dir "${ING_DIR}/store" \
    --addr 127.0.0.1:0 --workers 2 --threads 4 \
    --ingest-dir "${ING_DIR}/drop" --ingest-poll-ms 50 >"${ING_LOG}" 2>&1 &
ING_PID=$!
ING_ADDR=""
for _ in $(seq 1 100); do
    ING_ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\) .*#\1#p' "${ING_LOG}" | head -1)
    [[ -n "${ING_ADDR}" ]] && break
    kill -0 "${ING_PID}" 2>/dev/null || ingest_gate_fail "server exited before binding"
    sleep 0.1
done
[[ -n "${ING_ADDR}" ]] || ingest_gate_fail "server never logged its address"
./target/release/dn-serve --smoke-ingest "${ING_ADDR}" "${ING_DIR}/drop" \
    || ingest_gate_fail "smoke-ingest client reported failure"
for _ in $(seq 1 200); do
    kill -0 "${ING_PID}" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "${ING_PID}" 2>/dev/null; then
    ingest_gate_fail "server did not shut down after the smoke"
fi
wait "${ING_PID}" || ingest_gate_fail "server exited non-zero"
[[ -f "${ING_DIR}/store/ingest.journal" ]] || ingest_gate_fail "ingester wrote no resume journal"
rm -rf "${ING_DIR}"

if [[ "$QUICK" -eq 0 ]]; then
    echo "==> criterion benches (offline shim, indicative timings)"
    cargo bench -q
    echo "==> exp_serving smoke (--scale 0.3)"
    cargo run --release -q -p dn-bench --bin exp_serving -- --scale 0.3
    echo "==> exp_http smoke (--scale 0.3)"
    cargo run --release -q -p dn-bench --bin exp_http -- --scale 0.3
    echo "==> exp_replica smoke (--scale 0.3)"
    cargo run --release -q -p dn-bench --bin exp_replica -- --scale 0.3
    echo "==> exp_parallel smoke (--scale 0.3)"
    cargo run --release -q -p dn-bench --bin exp_parallel -- --scale 0.3
    # The thread sweep must have produced a well-formed baseline: the
    # determinism verdict and the pass flag both present and true.
    echo "==> gate: BENCH_parallel.json well-formed"
    [[ -f BENCH_parallel.json ]] || { echo "exp_parallel wrote no BENCH_parallel.json" >&2; exit 1; }
    grep -q '"bits_identical": *true' BENCH_parallel.json \
        || { echo "BENCH_parallel.json does not record bits_identical=true" >&2; exit 1; }
    grep -q '"pass": *true' BENCH_parallel.json \
        || { echo "BENCH_parallel.json does not record pass=true" >&2; exit 1; }
    grep -q '"cores":' BENCH_parallel.json \
        || { echo "BENCH_parallel.json does not record the machine's core count" >&2; exit 1; }
    echo "==> exp_ingest smoke (--scale 0.3)"
    cargo run --release -q -p dn-bench --bin exp_ingest -- --scale 0.3
    # The ingest replay must have produced a well-formed baseline: the
    # 1e-9 end-state equivalence verdict and the fault counters present.
    echo "==> gate: BENCH_ingest.json well-formed"
    [[ -f BENCH_ingest.json ]] || { echo "exp_ingest wrote no BENCH_ingest.json" >&2; exit 1; }
    grep -q '"pass": *true' BENCH_ingest.json \
        || { echo "BENCH_ingest.json does not record pass=true" >&2; exit 1; }
    grep -q '"kill_restarts": *1' BENCH_ingest.json \
        || { echo "BENCH_ingest.json does not record the injected kill/restart" >&2; exit 1; }
    grep -q '"redelivered_batches": *1' BENCH_ingest.json \
        || { echo "BENCH_ingest.json does not record the redelivered batch" >&2; exit 1; }
    grep -q '"batches_applied":' BENCH_ingest.json \
        || { echo "BENCH_ingest.json does not record batches_applied" >&2; exit 1; }
    echo "==> exp_trace smoke (--scale 0.3)"
    cargo run --release -q -p dn-bench --bin exp_trace -- --scale 0.3
    # The overhead gate must have produced a well-formed baseline: the
    # <5% p99 verdict plus proof the instrumentation was live.
    echo "==> gate: BENCH_trace.json well-formed"
    [[ -f BENCH_trace.json ]] || { echo "exp_trace wrote no BENCH_trace.json" >&2; exit 1; }
    grep -q '"pass": *true' BENCH_trace.json \
        || { echo "BENCH_trace.json does not record pass=true" >&2; exit 1; }
    grep -q '"overhead_p99_pct":' BENCH_trace.json \
        || { echo "BENCH_trace.json does not record the p99 overhead" >&2; exit 1; }
    grep -q '"traces_published_during_sampled":' BENCH_trace.json \
        || { echo "BENCH_trace.json does not prove the instrumentation was live" >&2; exit 1; }
else
    echo "==> --quick: skipping benches and the exp_serving/exp_http smoke runs"
fi

echo "CI OK"
