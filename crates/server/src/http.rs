//! Minimal HTTP/1.1 wire handling on `std::net` — request parsing with
//! hard limits, response writing, and the tiny URL utilities the router
//! needs (percent decoding, query-string parsing).
//!
//! The parser is deliberately strict and small: it understands exactly the
//! subset of HTTP/1.1 a JSON API needs — a request line, `\r\n`-separated
//! headers, and an optional `Content-Length` body. Chunked transfer
//! encoding is rejected with `501`, anything malformed with `400`, and
//! every read is bounded both in bytes (header/body limits) and in time
//! (the caller sets a socket read timeout), so a slow or hostile client
//! can never pin a worker for long.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Read-side limits applied to every request on a connection.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of body (`Content-Length` above this is refused).
    pub max_body_bytes: usize,
    /// Socket read timeout covering each blocking read.
    pub read_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 << 10,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// A parsed request. `path` is the raw (still percent-encoded) path
/// component; the router decodes individual segments.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// The raw path component of the target, before the `?`.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// A forwarded trace ID from an `X-Dn-Trace-Id` header (16 hex
    /// chars); malformed values are treated as absent.
    pub trace_id: Option<u64>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to one documented
/// close-path: a status code where a response is still possible, or a
/// silent close where the peer is already gone.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before the first byte — the peer closed an idle
    /// connection; not an error, just the end of the keep-alive loop.
    Closed,
    /// The socket read timed out (idle keep-alive slot or a stalled
    /// client); the connection is closed without a response.
    Timeout,
    /// Request line + headers exceeded [`Limits::max_head_bytes`] → `431`.
    HeadTooLarge,
    /// Declared `Content-Length` exceeded [`Limits::max_body_bytes`] → `413`.
    BodyTooLarge,
    /// The peer closed mid-request (EOF before `Content-Length` bytes or
    /// inside the head) → `400`.
    Truncated,
    /// Anything else unparsable (bad request line, bad header, bad
    /// `Content-Length`) → `400`, with a human-readable reason.
    Malformed(String),
    /// `Transfer-Encoding: chunked` (unsupported) → `501`.
    ChunkedUnsupported,
    /// A transport error other than a timeout; close silently.
    Io(std::io::Error),
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read and parse one request from `stream`. The caller is expected to
/// have applied `limits.read_timeout` to the stream already (once per
/// connection).
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, ReadError> {
    // --- head: read until CRLFCRLF, bounded ---------------------------
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_end;
    loop {
        if let Some(pos) = find_head_end(&buf) {
            head_end = pos;
            break;
        }
        if buf.len() >= limits.max_head_bytes {
            return Err(ReadError::HeadTooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Err(ReadError::Closed)
                } else {
                    Err(ReadError::Truncated)
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                return if buf.is_empty() {
                    Err(ReadError::Timeout)
                } else {
                    // Started a request but stalled: the worker gives up on
                    // the slot rather than waiting for more.
                    Err(ReadError::Truncated)
                };
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Malformed("non-UTF-8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line: {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    let mut trace_id = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line: {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse::<usize>()
                    .map_err(|_| ReadError::Malformed(format!("bad Content-Length: {value:?}")))?;
            }
            "transfer-encoding" if value.to_ascii_lowercase().contains("chunked") => {
                return Err(ReadError::ChunkedUnsupported);
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "x-dn-trace-id" => trace_id = dn_trace::parse_trace_id(value),
            _ => {}
        }
    }

    if content_length > limits.max_body_bytes {
        return Err(ReadError::BodyTooLarge);
    }

    // --- body: whatever followed the head, then read the remainder ----
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        // Pipelined extra bytes are not supported; treat as malformed
        // rather than silently answering requests out of order.
        return Err(ReadError::Malformed(
            "request body longer than Content-Length".into(),
        ));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return Err(ReadError::Truncated),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(ReadError::Truncated),
            Err(e) => return Err(ReadError::Io(e)),
        }
    }

    let (path, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_owned(),
        query: parse_query(query_raw),
        body,
        keep_alive,
        trace_id,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to be written to the wire.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// When the request was traced, its ID — echoed back to the client
    /// as an `X-Dn-Trace-Id` header so callers can fetch the span tree
    /// from `/v1/debug/traces/{id}`.
    pub trace_id: Option<u64>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            trace_id: None,
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            trace_id: None,
        }
    }
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Serialize `response` onto the stream. `keep_alive` decides the
/// `Connection` header (the worker closes the socket when false).
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let trace_header = match response.trace_id {
        Some(id) => format!("X-Dn-Trace-Id: {}\r\n", dn_trace::format_trace_id(id)),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{trace_header}Connection: {}\r\n\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// Percent-decode one path segment or query component. Returns `None` on
/// an invalid escape or non-UTF-8 result. `plus_is_space` applies the
/// `application/x-www-form-urlencoded` convention used in query strings.
pub fn percent_decode(input: &str, plus_is_space: bool) -> Option<String> {
    let bytes = input.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16))?;
                let lo = bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16))?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Percent-encode one path segment or query value: everything except RFC
/// 3986 unreserved characters is escaped. Clients interpolating data
/// values into request paths (`/v1/score/{value}`) must use this — raw
/// values can contain spaces (`TERRITORY 12`), which would split the
/// request line.
pub fn percent_encode(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for &b in raw.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Parse a raw query string into decoded `(key, value)` pairs. Components
/// that fail to decode are dropped (the router treats a missing key the
/// same as an absent parameter).
pub fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .filter_map(|part| {
            let (k, v) = part.split_once('=').unwrap_or((part, ""));
            Some((percent_decode(k, true)?, percent_decode(v, true)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("JAGUAR", false).unwrap(), "JAGUAR");
        assert_eq!(percent_decode("a%20b", false).unwrap(), "a b");
        assert_eq!(percent_decode("a+b", true).unwrap(), "a b");
        assert_eq!(percent_decode("a+b", false).unwrap(), "a+b");
        assert_eq!(percent_decode("%C3%A9", false).unwrap(), "é");
        assert!(percent_decode("%zz", false).is_none());
        assert!(percent_decode("%2", false).is_none());
        assert!(percent_decode("%ff", false).is_none(), "invalid UTF-8");
    }

    #[test]
    fn percent_encoding_round_trips() {
        for raw in ["JAGUAR", "TERRITORY 12", "a/b?c&d", "naïve", "100%"] {
            let encoded = percent_encode(raw);
            assert!(
                encoded
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric()
                        || matches!(b, b'-' | b'_' | b'.' | b'~' | b'%')),
                "{encoded}"
            );
            assert_eq!(percent_decode(&encoded, false).unwrap(), raw);
        }
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("measure=bc&k=20&table=T%201&flag");
        assert_eq!(
            q,
            vec![
                ("measure".into(), "bc".into()),
                ("k".into(), "20".into()),
                ("table".into(), "T 1".into()),
                ("flag".into(), String::new()),
            ]
        );
        assert!(parse_query("").is_empty());
    }

    #[test]
    fn reason_phrases_cover_emitted_statuses() {
        for status in [200, 400, 403, 404, 405, 409, 413, 431, 500, 501, 503] {
            assert!(!reason_phrase(status).is_empty(), "{status}");
        }
    }
}
