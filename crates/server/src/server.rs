//! The connection engine: a `TcpListener` accept loop feeding a fixed
//! worker-thread pool, with keep-alive, bounded reads, and a graceful
//! drain on shutdown.
//!
//! ## Thread model
//!
//! ```text
//!            ┌────────────┐  shared ConnQueue  ┌───────────┐
//!  clients ─►│ accept loop├───────────────────►│ worker 0  │──┐
//!            │ (1 thread) │ (Mutex<VecDeque> + │   ...     │  ├─► ServerState
//!            └────────────┘        Condvar)    │ worker N-1│──┘   (CoordinatorHandle,
//!                        ▲                     └─────┬─────┘      Mutex<Coordinator>,
//!                        └── idle keep-alive conns ──┘            Metrics, shutdown)
//! ```
//!
//! Keep-alive connections do **not** pin a worker while idle: before
//! blocking on a connection's next request, a worker `peek`s it — if no
//! bytes are buffered and other connections are waiting, the idle
//! connection is rotated to the back of the queue and the worker serves
//! whoever is ready. A fixed pool of N workers therefore multiplexes any
//! number of keep-alive connections, with the worst-case pickup latency
//! for a newly active connection bounded by one rotation cycle. A
//! connection idle longer than the read timeout is closed.
//!
//! ## Shutdown / drain semantics
//!
//! [`Server::shutdown`] (or `POST /v1/admin/shutdown`) flips the shared
//! shutdown flag and pokes the listener with a dummy connection so the
//! blocking `accept` wakes up. From that instant: the accept loop stops
//! accepting and drops the channel sender; workers finish the request
//! they are handling, answer it, then close their connection instead of
//! reading the next keep-alive request; queued-but-unserved connections
//! are drained and closed without a response. [`Server::join`] returns
//! once every worker has exited, so after it returns no request is in
//! flight and the [`dn_service::Coordinator`] can be dropped (flushing
//! nothing — commits are durable at append time).

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dn_service::{Coordinator, CoordinatorHandle, ReplicaShared};

use crate::error::ApiError;
use crate::http::{read_request, write_response, Limits, ReadError, Response};
use crate::metrics::{Metrics, Route};
use crate::router;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:8080"`. Port `0` picks an
    /// ephemeral port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Read-side limits (head/body size, read timeout).
    pub limits: Limits,
    /// Requests served on one connection before it is closed (bounds the
    /// damage of a counting bug and recycles sockets under load).
    pub max_requests_per_connection: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            limits: Limits::default(),
            max_requests_per_connection: 10_000,
        }
    }
}

/// What makes a server a read-only follower: where its primary lives
/// (returned in `403` envelopes so clients can redirect their writes) and
/// the replication gauges + halt latch shared with the tail loop.
pub struct ReplicaContext {
    /// Base URL of the primary, e.g. `http://127.0.0.1:8080`.
    pub primary_url: String,
    /// Lag/divergence gauges and the halt latch, shared with the
    /// follower's sync loop.
    pub shared: Arc<ReplicaShared>,
}

/// What makes a server an ingesting primary: the stats block shared with
/// the drop-folder ingest loop, sampled into `dn_ingest_*` gauges at
/// /metrics render time.
pub struct IngestContext {
    /// Counters/gauges shared with the ingest thread.
    pub shared: Arc<dn_ingest::IngestStats>,
}

/// Shared state every worker sees.
pub(crate) struct ServerState {
    pub(crate) service: CoordinatorHandle,
    pub(crate) coordinator: Arc<Mutex<Coordinator>>,
    pub(crate) metrics: Metrics,
    pub(crate) shutdown: AtomicBool,
    pub(crate) limits: Limits,
    pub(crate) max_requests_per_connection: usize,
    pub(crate) replica: Option<ReplicaContext>,
    pub(crate) ingest: Option<IngestContext>,
    local_addr: SocketAddr,
}

impl ServerState {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flip the shutdown flag and wake the accept loop with a throwaway
    /// connection (idempotent; safe from any thread, including a worker
    /// answering `/v1/admin/shutdown`).
    pub(crate) fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already shutting down
        }
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(500));
    }
}

/// A running HTTP server. Dropping it does **not** stop the threads; call
/// [`Server::shutdown`] + [`Server::join`] (or drive `POST
/// /v1/admin/shutdown` and then [`Server::join`]).
pub struct Server {
    state: Arc<ServerState>,
    accept_handle: std::thread::JoinHandle<()>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
}

/// Bind, spawn the workers, and start accepting.
///
/// The coordinator moves into the server (it is the process's single
/// write side; mutations arrive via `POST /v1/mutations`). The cloneable
/// [`CoordinatorHandle`] stays shareable — keep one outside to observe
/// epochs and cache stats from the hosting process. A single-engine host
/// wraps its lake with `serve_sharded(lake, config, 1)`, which is
/// bit-identical to the unsharded engine.
///
/// # Errors
/// Binding the listener may fail (address in use, permission).
pub fn serve_http(
    service: CoordinatorHandle,
    coordinator: Coordinator,
    config: ServerConfig,
) -> std::io::Result<Server> {
    serve_http_inner(
        service,
        Arc::new(Mutex::new(coordinator)),
        config,
        None,
        None,
    )
}

/// Like [`serve_http`], but for a primary that also runs an in-process
/// drop-folder ingester: the coordinator is *shared* with the ingest loop
/// (which stages/commits/publishes behind the same mutex the mutation
/// handler uses), and the ingester's stats surface as `dn_ingest_*` gauges
/// in /metrics. The ingest thread must drop its `Arc` clone before
/// [`Server::join`] is called.
///
/// # Errors
/// Binding the listener may fail (address in use, permission).
pub fn serve_http_ingest(
    service: CoordinatorHandle,
    coordinator: Arc<Mutex<Coordinator>>,
    config: ServerConfig,
    ingest: IngestContext,
) -> std::io::Result<Server> {
    serve_http_inner(service, coordinator, config, None, Some(ingest))
}

/// Like [`serve_http`], but as a read-only follower: the coordinator is
/// *shared* with the replication tail loop (which applies WAL batches
/// behind the same mutex the write handlers would use), mutations and
/// checkpoints answer `403` pointing at the primary, and reads answer
/// `503` once the insurance layer has halted the replica.
///
/// # Errors
/// Binding the listener may fail (address in use, permission).
pub fn serve_http_follower(
    service: CoordinatorHandle,
    coordinator: Arc<Mutex<Coordinator>>,
    config: ServerConfig,
    replica: ReplicaContext,
) -> std::io::Result<Server> {
    serve_http_inner(service, coordinator, config, Some(replica), None)
}

fn serve_http_inner(
    service: CoordinatorHandle,
    coordinator: Arc<Mutex<Coordinator>>,
    config: ServerConfig,
    replica: Option<ReplicaContext>,
    ingest: Option<IngestContext>,
) -> std::io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let state = Arc::new(ServerState {
        service,
        coordinator,
        metrics: Metrics::new(),
        shutdown: AtomicBool::new(false),
        limits: config.limits,
        max_requests_per_connection: config.max_requests_per_connection.max(1),
        replica,
        ingest,
        local_addr,
    });

    let queue = Arc::new(ConnQueue::new());
    let workers = config.workers.max(1);
    let worker_handles: Vec<_> = (0..workers)
        .map(|i| {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("dn-http-worker-{i}"))
                .spawn(move || worker_loop(&queue, &state))
                .expect("spawn worker thread")
        })
        .collect();

    let accept_state = Arc::clone(&state);
    let accept_queue = Arc::clone(&queue);
    let accept_handle = std::thread::Builder::new()
        .name("dn-http-accept".to_owned())
        .spawn(move || accept_loop(&listener, &accept_queue, &accept_state))
        .expect("spawn accept thread");

    Ok(Server {
        state,
        accept_handle,
        worker_handles,
    })
}

impl Server {
    /// The address the listener actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// A read handle onto the served coordinator (epoch, cache stats).
    pub fn service(&self) -> CoordinatorHandle {
        self.state.service.clone()
    }

    /// Total requests handled so far.
    pub fn requests_total(&self) -> u64 {
        self.state.metrics.requests_total()
    }

    /// Requests handled on one route so far.
    pub fn route_total(&self, route: Route) -> u64 {
        self.state.metrics.route_total(route)
    }

    /// Whether a shutdown has been initiated (locally or over HTTP).
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutting_down()
    }

    /// Initiate a graceful shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Wait for the drain to finish and reclaim the [`Coordinator`].
    /// Blocks until the accept loop and every worker have exited — which
    /// only happens after a shutdown was initiated (here, via
    /// [`Server::shutdown`], or over HTTP).
    ///
    /// Returns the coordinator so a durable host can checkpoint on exit.
    pub fn join(self) -> Coordinator {
        let state = self.join_inner();
        Arc::try_unwrap(state.coordinator)
            .ok()
            .expect("no replication loop holds the coordinator after join")
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// [`Server::join`] for a follower, whose coordinator stays shared
    /// with the replication tail loop: waits for the drain but leaves the
    /// `Arc<Mutex<Coordinator>>` to the remaining holder.
    pub fn join_follower(self) {
        let _ = self.join_inner();
    }

    fn join_inner(self) -> ServerState {
        let _ = self.accept_handle.join();
        for handle in self.worker_handles {
            let _ = handle.join();
        }
        Arc::try_unwrap(self.state)
            .ok()
            .expect("all worker references released after join")
    }
}

/// One live connection and its bookkeeping.
struct Conn {
    stream: TcpStream,
    /// Requests already served on this connection.
    served: usize,
    /// When the connection last finished a request (or was accepted).
    idle_since: Instant,
}

/// The shared connection queue: accepted connections and rotated-out idle
/// keep-alive connections, consumed by the workers.
struct ConnQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

struct QueueInner {
    queue: VecDeque<Conn>,
    closed: bool,
}

impl ConnQueue {
    fn new() -> ConnQueue {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, conn: Conn) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.queue.push_back(conn);
        drop(inner);
        self.ready.notify_one();
    }

    /// Blocking pop; `None` once the queue is closed *and* drained.
    fn pop(&self) -> Option<Conn> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(conn) = inner.queue.pop_front() {
                return Some(conn);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Whether other connections are waiting (the signal to rotate an
    /// idle keep-alive connection instead of blocking on it).
    fn has_waiters(&self) -> bool {
        self.len() > 0
    }

    /// Connections currently waiting in the queue.
    fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .queue
            .len()
    }

    fn close(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

fn accept_loop(listener: &TcpListener, queue: &Arc<ConnQueue>, state: &Arc<ServerState>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if state.shutting_down() {
                    // The wake-up connection (or a late client): close it
                    // unanswered and stop accepting.
                    drop(stream);
                    break;
                }
                state.metrics.record_connection();
                let _ = stream.set_nodelay(true);
                let _ = stream.set_write_timeout(Some(state.limits.read_timeout));
                queue.push(Conn {
                    stream,
                    served: 0,
                    idle_since: Instant::now(),
                });
            }
            Err(_) if state.shutting_down() => break,
            Err(_) => {
                // Transient accept failure (EMFILE, aborted handshake):
                // keep listening rather than killing the server.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    // Closing the queue lets workers drain what is left and exit.
    queue.close();
}

/// How long a worker blocks waiting for a sole connection's next request
/// before re-checking the queue for newly arrived connections.
const POLL_SLICE: Duration = Duration::from_millis(100);

/// What a readiness probe of a connection found.
enum Probe {
    /// At least one request byte is buffered.
    Data,
    /// No data yet (within the probe window).
    Empty,
    /// The peer closed (EOF) or the socket errored.
    Gone,
}

/// Probe a connection for buffered request bytes without consuming them.
/// `block_for: None` = non-blocking probe; `Some(t)` = wait up to `t`.
fn probe(stream: &TcpStream, block_for: Option<Duration>) -> Probe {
    let mut byte = [0u8; 1];
    let result = match block_for {
        Some(timeout) => {
            if stream.set_read_timeout(Some(timeout)).is_err() {
                return Probe::Gone;
            }
            stream.peek(&mut byte)
        }
        None => {
            if stream.set_nonblocking(true).is_err() {
                return Probe::Gone;
            }
            let result = stream.peek(&mut byte);
            if stream.set_nonblocking(false).is_err() {
                return Probe::Gone;
            }
            result
        }
    };
    match result {
        Ok(0) => Probe::Gone,
        Ok(_) => Probe::Data,
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Probe::Empty
        }
        Err(_) => Probe::Gone,
    }
}

fn worker_loop(queue: &Arc<ConnQueue>, state: &Arc<ServerState>) {
    // Counts consecutive idle rotations; once a full cycle of the queue
    // found nothing ready, back off briefly so all-idle connection sets
    // don't busy-spin the pool.
    let mut consecutive_idle = 0usize;
    while let Some(mut conn) = queue.pop() {
        if state.shutting_down() {
            drop(conn); // queued but unserved: drain and close
            continue;
        }
        // Serve this connection until it closes, goes idle while others
        // wait (rotate), expires, or the server drains.
        loop {
            if state.shutting_down() || conn.served >= state.max_requests_per_connection {
                break; // close
            }
            let others_waiting = queue.has_waiters();
            let window = if others_waiting {
                None // non-blocking probe: someone else is ready to serve
            } else {
                Some(POLL_SLICE)
            };
            match probe(&conn.stream, window) {
                Probe::Gone => break,
                Probe::Empty => {
                    // Only a connection with *nothing buffered* can be an
                    // idle-expiry victim: a request that queued up while
                    // every worker was busy must still be answered, even
                    // if the wait exceeded the read timeout.
                    if conn.idle_since.elapsed() >= state.limits.read_timeout {
                        break; // idle keep-alive expiry
                    }
                    if others_waiting {
                        consecutive_idle += 1;
                        if consecutive_idle > queue.len().max(4) {
                            // A whole rotation cycle (with margin) found
                            // only idle connections: pause briefly so an
                            // all-idle connection set doesn't busy-spin
                            // the pool.
                            std::thread::sleep(Duration::from_millis(1));
                            consecutive_idle = 0;
                        }
                        queue.push(conn); // rotate to the back
                        break;
                    }
                    continue; // sole connection: keep waiting in slices
                }
                Probe::Data => {
                    consecutive_idle = 0;
                    if serve_one(&mut conn, state) {
                        conn.served += 1;
                        conn.idle_since = Instant::now();
                        continue;
                    }
                    break; // response said close (or transport died)
                }
            }
        }
        // Dropping the connection closes the socket.
    }
}

/// Read, dispatch, and answer exactly one request on a connection whose
/// readiness was just probed. Returns whether the connection stays open.
/// Every failure path answers with the documented status when a response
/// is still possible; a worker never dies with its connection.
fn serve_one(conn: &mut Conn, state: &Arc<ServerState>) -> bool {
    if conn
        .stream
        .set_read_timeout(Some(state.limits.read_timeout))
        .is_err()
    {
        return false;
    }
    {
        let request = match read_request(&mut conn.stream, &state.limits) {
            Ok(request) => request,
            Err(read_error) => {
                // One terminal response (when one is still possible), then
                // close. `Closed`/`Timeout`/`Io` get no response — there
                // is either nobody listening or no usable request framing.
                let response: Option<Response> = match read_error {
                    ReadError::Closed | ReadError::Timeout | ReadError::Io(_) => None,
                    ReadError::HeadTooLarge => Some(
                        ApiError {
                            status: 431,
                            kind: "head_too_large",
                            message: format!(
                                "request head exceeds {} bytes",
                                state.limits.max_head_bytes
                            ),
                        }
                        .into_response(),
                    ),
                    ReadError::BodyTooLarge => Some(
                        ApiError {
                            status: 413,
                            kind: "body_too_large",
                            message: format!(
                                "request body exceeds {} bytes",
                                state.limits.max_body_bytes
                            ),
                        }
                        .into_response(),
                    ),
                    ReadError::Truncated => Some(
                        ApiError::bad_request("request truncated before Content-Length bytes")
                            .into_response(),
                    ),
                    ReadError::Malformed(reason) => {
                        Some(ApiError::bad_request(reason).into_response())
                    }
                    ReadError::ChunkedUnsupported => Some(
                        ApiError {
                            status: 501,
                            kind: "not_implemented",
                            message: "chunked transfer encoding is not supported".to_owned(),
                        }
                        .into_response(),
                    ),
                };
                if let Some(response) = response {
                    state.metrics.record(Route::Other, response.status, 0);
                    let _ = write_response(&mut conn.stream, &response, false);
                }
                return false;
            }
        };

        let started = Instant::now();
        // Sampling decision for this request: a forwarded X-Dn-Trace-Id
        // bypasses the 1-in-N draw so cross-process traces always stitch.
        let trace = dn_trace::start_trace("http", request.trace_id);
        let trace_id = trace.as_ref().map(|t| t.id());
        let (route, mut response) = router::handle(state, &request);
        if let Some(trace) = &trace {
            trace.set_label(format!("{} {}", route.label(), response.status));
        }
        // Close the root span (and publish to the ring) before the
        // response is written: by the time a client asks for its trace,
        // the trace is retrievable.
        drop(trace);
        let micros = started.elapsed().as_micros() as u64;
        state.metrics.record(route, response.status, micros);
        // Slow-query detection is independent of sampling: `micros` is
        // always measured, so an unsampled slow request still logs (just
        // without a trace ID to follow up on).
        if micros >= dn_trace::slow_query_us() {
            dn_trace::slow_query(route.label(), response.status, micros, trace_id);
        }
        response.trace_id = trace_id;

        let keep_alive = request.keep_alive
            && conn.served + 1 < state.max_requests_per_connection
            && !state.shutting_down();
        write_response(&mut conn.stream, &response, keep_alive).is_ok() && keep_alive
    }
}
