//! # `dn-server` — a zero-dependency HTTP/JSON layer over the serving engine
//!
//! The serving engine (`dn-service`) answers homograph queries from
//! immutable epoch snapshots, and the durability layer (`dn-store`) makes
//! its writer crash-safe — but both stop at the process boundary. This
//! crate puts the engine on the network with **no dependencies beyond the
//! workspace's vendored serde shims**: an HTTP/1.1 server hand-rolled on
//! [`std::net::TcpListener`] with a fixed worker-thread pool, keep-alive,
//! hard read limits and timeouts, and a graceful connection drain.
//!
//! * [`server`] — the accept loop, worker pool, and shutdown semantics
//!   ([`serve_http`] is the entry point).
//! * `router` (internal) — dispatch from method + path to the engine:
//!   every read handler pins one cross-shard view for the whole request,
//!   so a response is internally consistent exactly like an in-process
//!   reader; writes serialize on the single
//!   `Mutex<`[`dn_service::Coordinator`]`>`. The server always talks to
//!   a coordinator — a single-engine deployment is just `--shards 1`,
//!   which is bit-identical to the unsharded engine.
//! * [`http`] — the wire subset: strict request parsing with bounded
//!   head/body reads, percent/query decoding, response framing.
//! * [`api`] — the JSON request/response schema, shared by server and
//!   client so both sides agree by construction.
//! * [`metrics`] — lock-free per-route counters + latency histograms,
//!   rendered as a Prometheus-style text exposition at `GET /metrics`.
//! * [`client`] — a minimal blocking keep-alive client used by the wire
//!   tests, the `ci.sh` smoke gate, and the `exp_http` load generator.
//!
//! See `docs/API.md` for the endpoint reference and `ARCHITECTURE.md` for
//! the thread-pool diagram and request lifecycle.
//!
//! ## Example
//!
//! ```
//! use dn_server::{serve_http, Client, ServerConfig};
//! use dn_service::{serve_sharded, ServiceConfig};
//! use lake::delta::MutableLake;
//!
//! let lake = MutableLake::from_catalog(&lake::fixtures::running_example());
//! let (service, coordinator) = serve_sharded(lake, ServiceConfig::default(), 1);
//! let server = serve_http(service, coordinator, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::new(server.local_addr());
//! let health = client.get("/healthz").unwrap();
//! assert_eq!(health.status, 200);
//! let top = client.get("/v1/top-k?measure=bc&k=1").unwrap();
//! assert!(top.body.contains("JAGUAR"));
//!
//! server.shutdown();
//! server.join();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod api;
pub mod client;
pub mod error;
pub mod http;
pub mod ingest_sink;
pub mod metrics;
pub mod replica_source;
mod router;
pub mod server;

pub use client::{Client, ClientResponse};
pub use error::ApiError;
pub use http::{percent_encode, Limits};
pub use ingest_sink::HttpSink;
pub use metrics::{Metrics, Route};
pub use replica_source::HttpReplicaSource;
pub use server::{
    serve_http, serve_http_follower, serve_http_ingest, IngestContext, ReplicaContext, Server,
    ServerConfig,
};
