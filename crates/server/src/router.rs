//! Route resolution and the per-endpoint handlers.
//!
//! Every read handler mints a [`dn_service::CoordinatorReader`] (or
//! clones the current [`dn_service::MultiView`] `Arc`), which pins one
//! immutable cross-shard epoch for the whole request — exactly the
//! in-process consistency contract, now over a socket. Write handlers
//! serialize on the single `Mutex<Coordinator>`; readers never touch it,
//! so a slow commit (or cross-shard rebalance) never blocks a query. The
//! wire format is unchanged from the unsharded server: merged rankings,
//! global ranks/percentiles, and the coordinator epoch are
//! indistinguishable from a single bigger engine.

use domainnet::Measure;

use crate::api::{
    CheckpointResponse, DigestResponse, ExplainResponse, HealthResponse, MutationRequest,
    MutationResponse, ScoreResponse, ShardDigest, ShutdownResponse, SnapshotResponse, SpanDto,
    TableSummaryResponse, TablesResponse, TopKResponse, TraceListResponse, TraceResponse,
    TraceSummary, WalRecordDto, WalResponse,
};
use crate::error::ApiError;
use crate::http::{percent_decode, Request, Response};
use crate::metrics::{EngineGauges, IngestGauges, ReplicaGauges, Route, ShardGauges};
use crate::server::ServerState;

/// Default `k` when the query string does not pass one.
const DEFAULT_K: usize = 20;
/// Hard ceiling on `k` (a request for more is clamped, not refused — the
/// ranking is finite anyway and the cap bounds response allocation).
const MAX_K: usize = 100_000;

/// Resolve the path to a route and its allowed method, then dispatch.
/// Returns the route (for metrics labeling) together with the response.
pub(crate) fn handle(state: &ServerState, req: &Request) -> (Route, Response) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let resolved: Option<(Route, &'static str)> = match segments.as_slice() {
        ["healthz"] => Some((Route::Healthz, "GET")),
        ["metrics"] => Some((Route::Metrics, "GET")),
        ["v1", "top-k"] => Some((Route::TopK, "GET")),
        ["v1", "score", _] => Some((Route::Score, "GET")),
        ["v1", "explain", _] => Some((Route::Explain, "GET")),
        ["v1", "tables"] => Some((Route::Tables, "GET")),
        ["v1", "tables", _] => Some((Route::TableSummary, "GET")),
        ["v1", "mutations"] => Some((Route::Mutations, "POST")),
        ["v1", "wal"] => Some((Route::Wal, "GET")),
        ["v1", "snapshot"] => Some((Route::Snapshot, "GET")),
        ["v1", "digest"] => Some((Route::Digest, "GET")),
        ["v1", "admin", "checkpoint"] => Some((Route::Checkpoint, "POST")),
        ["v1", "admin", "shutdown"] => Some((Route::Shutdown, "POST")),
        ["v1", "debug", "traces"] => Some((Route::DebugTraces, "GET")),
        ["v1", "debug", "traces", _] => Some((Route::DebugTrace, "GET")),
        _ => None,
    };
    let Some((route, allowed)) = resolved else {
        return (
            Route::Other,
            ApiError::not_found(format!("no route for {}", req.path)).into_response(),
        );
    };
    if req.method != allowed {
        return (
            route,
            ApiError::method_not_allowed(format!(
                "{} does not allow {} (use {allowed})",
                req.path, req.method
            ))
            .into_response(),
        );
    }

    if let Some(refusal) = follower_gate(state, route) {
        return (route, refusal.into_response());
    }
    let _route_span = dn_trace::span_labeled(dn_trace::Phase::Route, route.label());
    let result = match route {
        Route::Healthz => healthz(state),
        Route::Metrics => metrics(state),
        Route::TopK => top_k(state, req),
        Route::Score => score(state, segments[2]),
        Route::Explain => explain(state, segments[2]),
        Route::Tables => tables(state),
        Route::TableSummary => table_summary(state, req, segments[2]),
        Route::Mutations => mutations(state, req),
        Route::Wal => wal(state, req),
        Route::Snapshot => snapshot(state, req),
        Route::Digest => digest(state),
        Route::Checkpoint => checkpoint(state),
        Route::Shutdown => shutdown(state),
        Route::DebugTraces => debug_traces(req),
        Route::DebugTrace => debug_trace(segments[3]),
        Route::Other => unreachable!("resolved routes are concrete"),
    };
    (
        route,
        result.unwrap_or_else(|api_error| api_error.into_response()),
    )
}

/// The follower-mode gate, applied before dispatch. Mutating routes
/// answer `403` with the primary's URL in the message; data-serving
/// routes answer `503` once the insurance layer has halted the replica —
/// a diverged follower must never serve a ranking. `/healthz`,
/// `/metrics`, and shutdown stay reachable so operators can observe and
/// drain a halted follower.
fn follower_gate(state: &ServerState, route: Route) -> Option<ApiError> {
    let replica = state.replica.as_ref()?;
    match route {
        Route::Mutations | Route::Checkpoint => Some(ApiError::forbidden(
            "read_only_follower",
            format!(
                "this server is a read-only follower; send writes to the primary at {}",
                replica.primary_url
            ),
        )),
        // Debug/trace introspection stays reachable on a halted follower
        // for the same reason /metrics does: it is how an operator sees
        // what the replica was doing when it diverged.
        Route::Healthz
        | Route::Metrics
        | Route::Shutdown
        | Route::DebugTraces
        | Route::DebugTrace
        | Route::Other => None,
        _ => replica.shared.halted().map(|reason| {
            ApiError::unavailable(
                "replica_diverged",
                format!("this follower halted after divergence from the primary: {reason}"),
            )
        }),
    }
}

fn ok_json<T: serde::Serialize>(body: &T) -> Result<Response, ApiError> {
    let json = serde_json::to_string(body)
        .map_err(|e| ApiError::internal(format!("response serialization failed: {e}")))?;
    Ok(Response::json(200, json))
}

fn decode_segment(raw: &str) -> Result<String, ApiError> {
    percent_decode(raw, false)
        .ok_or_else(|| ApiError::bad_request(format!("invalid percent-encoding in {raw:?}")))
}

/// Resolve the `measure` query parameter against the served measures.
/// An unknown token is a `400`; a recognized token whose measure this
/// server does not serve is a `404`.
fn resolve_measure(served: &[Measure], param: Option<&str>) -> Result<Measure, ApiError> {
    let Some(token) = param else {
        return served
            .first()
            .copied()
            .ok_or_else(|| ApiError::not_found("this server serves no measures"));
    };
    let canonical = match token.to_ascii_lowercase().replace('-', "_").as_str() {
        "lcc" => "LCC",
        "lcc_attr" | "lcc(attr)" => "LCC(attr)",
        "bc" | "exact_bc" => "BC",
        "bc_approx" | "approx_bc" | "bc(approx)" => "BC(approx)",
        _ => {
            return Err(ApiError::bad_request(format!(
                "unknown measure {token:?} (expected one of: lcc, lcc_attr, bc, approx_bc)"
            )))
        }
    };
    served
        .iter()
        .copied()
        .find(|m| m.name() == canonical)
        .ok_or_else(|| {
            let names: Vec<&str> = served.iter().map(|m| m.name()).collect();
            ApiError::not_found(format!(
                "measure {canonical} is not served here (served: {names:?})"
            ))
        })
}

fn parse_k(req: &Request) -> Result<usize, ApiError> {
    match req.query_value("k") {
        None => Ok(DEFAULT_K),
        Some(raw) => {
            let k: usize = raw.parse().map_err(|_| {
                ApiError::bad_request(format!("k must be a non-negative integer, got {raw:?}"))
            })?;
            Ok(k.min(MAX_K))
        }
    }
}

fn healthz(state: &ServerState) -> Result<Response, ApiError> {
    ok_json(&HealthResponse {
        status: "ok".to_owned(),
        epoch: state.service.epoch(),
    })
}

fn metrics(state: &ServerState) -> Result<Response, ApiError> {
    let view = state.service.current();
    let cache = state.service.cache_stats();
    let mut gauges = EngineGauges {
        epoch: view.epoch(),
        epochs_published: state.service.epochs_published(),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_hit_rate: cache.hit_rate(),
        wal_record_bytes: None,
        store_snapshots: None,
        // Shard epochs come from the pinned view — always available.
        shards: (0..view.shard_count())
            .map(|i| ShardGauges {
                epoch: view.shard(i).epoch(),
                ..ShardGauges::default()
            })
            .collect(),
        replica: state.replica.as_ref().map(|r| ReplicaGauges {
            lag_epochs: r.shared.lag_epochs(),
            divergence_total: r.shared.divergence_total(),
        }),
        ingest: state.ingest.as_ref().map(|c| {
            let snap = c.shared.snapshot();
            IngestGauges {
                files_seen: snap.files_seen,
                batches_applied: snap.batches_applied,
                rows_diffed: snap.rows_diffed,
                retries: snap.retries,
                torn_files: snap.torn_files,
                lag_seconds: snap.lag_seconds,
            }
        }),
    };
    // Sample store/cache gauges opportunistically: /metrics must never
    // queue behind a long commit, so a contended coordinator lock just
    // omits them for this scrape.
    if let Ok(coordinator) = state.coordinator.try_lock() {
        let mut total_wal = 0u64;
        let mut total_snapshots = 0u64;
        let mut durable = false;
        for (i, shard) in gauges.shards.iter_mut().enumerate() {
            let shard_cache = coordinator.shard_cache_stats(i);
            shard.cache_hits = shard_cache.hits;
            shard.cache_misses = shard_cache.misses;
            if let Ok(Some(stats)) = coordinator.shard_store_stats(i) {
                durable = true;
                shard.wal_record_bytes = Some(stats.wal_record_bytes);
                shard.store_snapshots = Some(stats.snapshot_count as u64);
                total_wal += stats.wal_record_bytes;
                total_snapshots += stats.snapshot_count as u64;
            }
        }
        if durable {
            gauges.wal_record_bytes = Some(total_wal);
            gauges.store_snapshots = Some(total_snapshots);
        }
    }
    Ok(Response::text(200, state.metrics.render(&gauges)))
}

fn top_k(state: &ServerState, req: &Request) -> Result<Response, ApiError> {
    let reader = state.service.reader();
    let view = reader.view();
    let measure = resolve_measure(view.measures(), req.query_value("measure"))?;
    let k = parse_k(req)?;
    let results: Vec<domainnet::ScoredValue> = match req.query_value("table") {
        None => {
            let ranking = reader
                .top_k(measure, k)
                .ok_or_else(|| ApiError::not_found("measure not served"))?;
            ranking.as_ref().clone()
        }
        Some(table) => {
            let summary = view.table_summary(table, measure, k).ok_or_else(|| {
                ApiError::not_found(format!("no table named {table:?} in this epoch"))
            })?;
            summary.top
        }
    };
    ok_json(&TopKResponse {
        epoch: view.epoch(),
        measure: measure.name().to_owned(),
        k,
        results,
    })
}

fn score(state: &ServerState, raw_value: &str) -> Result<Response, ApiError> {
    let value = decode_segment(raw_value)?;
    let view = state.service.current();
    let cards: Vec<_> = view
        .measures()
        .to_vec()
        .into_iter()
        .filter_map(|m| view.score_card(m, &value))
        .collect();
    if cards.is_empty() {
        return Err(ApiError::not_found(format!(
            "value {value:?} is not a live candidate in epoch {}",
            view.epoch()
        )));
    }
    ok_json(&ScoreResponse {
        epoch: view.epoch(),
        value: cards[0].value.clone(),
        cards,
    })
}

fn explain(state: &ServerState, raw_value: &str) -> Result<Response, ApiError> {
    let value = decode_segment(raw_value)?;
    let view = state.service.current();
    let explanation = view.explain(&value).ok_or_else(|| {
        ApiError::not_found(format!(
            "value {value:?} is not a live candidate in epoch {}",
            view.epoch()
        ))
    })?;
    ok_json(&ExplainResponse {
        epoch: view.epoch(),
        explanation,
    })
}

fn tables(state: &ServerState) -> Result<Response, ApiError> {
    let view = state.service.current();
    ok_json(&TablesResponse {
        epoch: view.epoch(),
        tables: view.table_names(),
    })
}

fn table_summary(state: &ServerState, req: &Request, raw_name: &str) -> Result<Response, ApiError> {
    let name = decode_segment(raw_name)?;
    let view = state.service.current();
    let measure = resolve_measure(view.measures(), req.query_value("measure"))?;
    let k = parse_k(req)?;
    let summary = view
        .table_summary(&name, measure, k)
        .ok_or_else(|| ApiError::not_found(format!("no table named {name:?} in this epoch")))?;
    ok_json(&TableSummaryResponse {
        epoch: view.epoch(),
        measure: measure.name().to_owned(),
        summary,
    })
}

fn mutations(state: &ServerState, req: &Request) -> Result<Response, ApiError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    let parsed: MutationRequest = serde_json::from_str(text)
        .map_err(|e| ApiError::bad_request(format!("invalid mutation JSON: {e}")))?;
    if parsed.deltas.is_empty() {
        return Err(ApiError::bad_request("empty mutation batch"));
    }
    // Serde's derived decode trusts whatever the JSON said; tables ride
    // inside AddTable ops, so re-check their construction invariants
    // (dictionary encoding, rectangularity, unique column names) exactly
    // like WAL replay does — a structurally impossible table must be a
    // 400, never a panic inside the engine.
    for delta in &parsed.deltas {
        for op in delta.ops() {
            if let lake::delta::LakeOp::AddTable(table) = op {
                table
                    .validate_encoding()
                    .map_err(|e| ApiError::bad_request(format!("invalid table payload: {e}")))?;
            }
        }
    }
    let batches = parsed.deltas.len();
    let mut coordinator = state
        .coordinator
        .lock()
        .map_err(|_| ApiError::internal("coordinator lock poisoned"))?;
    for delta in parsed.deltas {
        coordinator.stage(delta);
    }
    // A failed commit is NOT published: every shard that applied part of
    // the batch already resynced its net from its partially applied lake
    // (the engine's documented batch semantics), and readers keep the
    // previous coordinator epoch until the next successful batch
    // publishes.
    let stats = coordinator
        .commit()
        .map_err(|e| ApiError::from_service(&e))?;
    let epoch = coordinator.publish();
    ok_json(&MutationResponse {
        epoch,
        batches,
        stats,
    })
}

/// Parse a required non-negative integer query parameter.
fn parse_uint_param<T: std::str::FromStr>(req: &Request, name: &str) -> Result<T, ApiError> {
    let raw = req
        .query_value(name)
        .ok_or_else(|| ApiError::bad_request(format!("missing required parameter {name:?}")))?;
    raw.parse().map_err(|_| {
        ApiError::bad_request(format!(
            "{name} must be a non-negative integer, got {raw:?}"
        ))
    })
}

/// Lock the coordinator for a replication read, mapping the durability
/// precondition to the documented `409`.
fn lock_durable(
    state: &ServerState,
) -> Result<std::sync::MutexGuard<'_, dn_service::Coordinator>, ApiError> {
    let coordinator = state
        .coordinator
        .lock()
        .map_err(|_| ApiError::internal("coordinator lock poisoned"))?;
    if !coordinator.is_durable() {
        return Err(ApiError::conflict(
            "this server is not durable (no --data-dir store); nothing to replicate",
        ));
    }
    Ok(coordinator)
}

fn wal(state: &ServerState, req: &Request) -> Result<Response, ApiError> {
    let shard: usize = parse_uint_param(req, "shard")?;
    let from_seq: u64 = parse_uint_param(req, "from_seq")?;
    let coordinator = lock_durable(state)?;
    if shard >= coordinator.shard_count() {
        return Err(ApiError::bad_request(format!(
            "shard {shard} out of range (this server has {})",
            coordinator.shard_count()
        )));
    }
    let tail = match coordinator.shard_wal_after(shard, from_seq) {
        Ok(tail) => tail,
        // The only Corrupt a range read raises itself is a from_seq ahead
        // of the log — the caller's position is wrong, not the log.
        Err(dn_service::ServiceError::Store(dn_store::StoreError::Corrupt { .. })) => {
            return Err(ApiError::bad_request(format!(
                "from_seq {from_seq} is ahead of shard {shard}'s log"
            )))
        }
        Err(e) => return Err(ApiError::from_service(&e)),
    };
    drop(coordinator);
    let response = match tail {
        dn_store::WalTail::Records(records) => WalResponse {
            shard,
            from_seq,
            snapshot_required: false,
            snapshot_seq: None,
            records: records
                .into_iter()
                .map(|r| WalRecordDto {
                    seq: r.seq,
                    epoch: r.epoch,
                    batch: r.batch,
                })
                .collect(),
        },
        dn_store::WalTail::SnapshotRequired { snapshot_seq } => WalResponse {
            shard,
            from_seq,
            snapshot_required: true,
            snapshot_seq: Some(snapshot_seq),
            records: Vec::new(),
        },
    };
    ok_json(&response)
}

fn snapshot(state: &ServerState, req: &Request) -> Result<Response, ApiError> {
    let shard: usize = parse_uint_param(req, "shard")?;
    let coordinator = lock_durable(state)?;
    if shard >= coordinator.shard_count() {
        return Err(ApiError::bad_request(format!(
            "shard {shard} out of range (this server has {})",
            coordinator.shard_count()
        )));
    }
    let (seq, bytes) = coordinator
        .shard_snapshot_bytes(shard)
        .map_err(|e| ApiError::from_service(&e))?;
    drop(coordinator);
    ok_json(&SnapshotResponse {
        shard,
        seq,
        hex: dn_store::to_hex(&bytes),
    })
}

fn digest(state: &ServerState) -> Result<Response, ApiError> {
    // Digest the published view — lock-free, and exactly what this
    // server's own readers observe, which is the state the insurance
    // exchange is insuring.
    let view = state.service.current();
    let shards = (0..view.shard_count())
        .map(|i| {
            let snapshot = view.shard(i);
            ShardDigest {
                shard: i,
                epoch: snapshot.epoch(),
                digest: format!("{:016x}", dn_service::snapshot_digest(snapshot)),
            }
        })
        .collect();
    ok_json(&DigestResponse {
        epoch: view.epoch(),
        shards,
    })
}

fn checkpoint(state: &ServerState) -> Result<Response, ApiError> {
    let mut coordinator = state
        .coordinator
        .lock()
        .map_err(|_| ApiError::internal("coordinator lock poisoned"))?;
    match coordinator.checkpoint_now() {
        Ok(true) => ok_json(&CheckpointResponse {
            checkpointed: true,
            epoch: coordinator.epoch(),
        }),
        Ok(false) => Err(ApiError::conflict(
            "this server is not durable (no --data-dir store); nothing to checkpoint",
        )),
        Err(e) => Err(ApiError::from_service(&e)),
    }
}

fn shutdown(state: &ServerState) -> Result<Response, ApiError> {
    state.begin_shutdown();
    ok_json(&ShutdownResponse {
        status: "shutting down".to_owned(),
    })
}

/// Default and maximum `limit` for the trace list.
const DEFAULT_TRACE_LIMIT: usize = 50;

fn trace_summary(trace: &dn_trace::FinishedTrace) -> TraceSummary {
    TraceSummary {
        id: dn_trace::format_trace_id(trace.id),
        name: trace.name.to_owned(),
        label: trace.label.clone(),
        started: dn_trace::format_unix_ms(trace.started_unix_ms),
        duration_us: trace.duration_us,
        forwarded: trace.forwarded,
        spans: trace.spans.len(),
    }
}

fn debug_traces(req: &Request) -> Result<Response, ApiError> {
    let limit = match req.query_value("limit") {
        None => DEFAULT_TRACE_LIMIT,
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| {
                ApiError::bad_request(format!("limit must be a non-negative integer, got {raw:?}"))
            })?
            .min(dn_trace::RING_CAPACITY),
    };
    let traces = dn_trace::recent_traces(limit);
    ok_json(&TraceListResponse {
        sample_every: dn_trace::sample_every() as u64,
        published: dn_trace::traces_published(),
        dropped: dn_trace::traces_dropped(),
        traces: traces.iter().map(|t| trace_summary(t)).collect(),
    })
}

fn debug_trace(raw_id: &str) -> Result<Response, ApiError> {
    let id = dn_trace::parse_trace_id(raw_id)
        .ok_or_else(|| ApiError::bad_request(format!("invalid trace id {raw_id:?}")))?;
    let trace = dn_trace::trace_by_id(id).ok_or_else(|| {
        ApiError::not_found(format!(
            "no retained trace {raw_id} (the ring holds the newest {}; was the request sampled?)",
            dn_trace::RING_CAPACITY
        ))
    })?;
    // Self time = own duration minus the direct children's durations.
    let mut child_sum = std::collections::HashMap::new();
    for span in &trace.spans {
        if let Some(parent) = span.parent {
            *child_sum.entry(parent).or_insert(0u64) += span.duration_us();
        }
    }
    let spans = trace
        .spans
        .iter()
        .map(|s| SpanDto {
            id: s.id as u64,
            parent: s.parent.map(|p| p as u64),
            name: s.name.to_owned(),
            label: s.label.clone(),
            start_us: s.start_us,
            end_us: s.end_us,
            duration_us: s.duration_us(),
            self_us: s
                .duration_us()
                .saturating_sub(child_sum.get(&s.id).copied().unwrap_or(0)),
        })
        .collect();
    ok_json(&TraceResponse {
        id: dn_trace::format_trace_id(trace.id),
        name: trace.name.to_owned(),
        label: trace.label.clone(),
        started: dn_trace::format_unix_ms(trace.started_unix_ms),
        duration_us: trace.duration_us,
        forwarded: trace.forwarded,
        spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_resolution() {
        let served = [Measure::lcc(), Measure::exact_bc()];
        assert_eq!(
            resolve_measure(&served, None).unwrap(),
            Measure::lcc(),
            "default = first served"
        );
        assert_eq!(
            resolve_measure(&served, Some("bc")).unwrap(),
            Measure::exact_bc()
        );
        assert_eq!(
            resolve_measure(&served, Some("BC")).unwrap(),
            Measure::exact_bc()
        );
        assert_eq!(
            resolve_measure(&served, Some("lcc")).unwrap(),
            Measure::lcc()
        );
        // Recognized but unserved → 404.
        assert_eq!(
            resolve_measure(&served, Some("approx_bc"))
                .unwrap_err()
                .status,
            404
        );
        // Unknown token → 400.
        assert_eq!(
            resolve_measure(&served, Some("pagerank"))
                .unwrap_err()
                .status,
            400
        );
    }
}
