//! Request/response body types for the `/v1` JSON API.
//!
//! One struct per endpoint payload, shared by the server handlers, the
//! blocking [`crate::client`], the wire tests, and the `exp_http` load
//! generator — so both sides of the socket agree on the schema by
//! construction. Every response carries the `epoch` it was answered at:
//! each request pins one immutable snapshot, and the epoch is how a client
//! reasons about cross-request consistency.

use domainnet::{DeltaStats, ScoredValue};
use serde::{Deserialize, Serialize};

pub use dn_service::{AttributeNeighborhood, ScoreCard, TableSummary, ValueExplanation};

/// `GET /healthz` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `"ok"` when the server is accepting requests.
    pub status: String,
    /// The currently published epoch.
    pub epoch: u64,
}

/// `GET /v1/top-k` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopKResponse {
    /// Epoch the answering snapshot was pinned at.
    pub epoch: u64,
    /// Short name of the measure that ranked the results.
    pub measure: String,
    /// The `k` that was requested (the result may be shorter).
    pub k: usize,
    /// Most homograph-like values first.
    pub results: Vec<ScoredValue>,
}

/// `GET /v1/score/{value}` response: one card per served measure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreResponse {
    /// Epoch the answering snapshot was pinned at.
    pub epoch: u64,
    /// The normalized value the cards describe.
    pub value: String,
    /// Score/rank/percentile under each measure the card exists for.
    pub cards: Vec<ScoreCard>,
}

/// `GET /v1/explain/{value}` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainResponse {
    /// Epoch the answering snapshot was pinned at.
    pub epoch: u64,
    /// The attribute-neighborhood breakdown.
    pub explanation: ValueExplanation,
}

/// `GET /v1/tables` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TablesResponse {
    /// Epoch the answering snapshot was pinned at.
    pub epoch: u64,
    /// Names of tables with at least one live attribute, sorted.
    pub tables: Vec<String>,
}

/// `GET /v1/tables/{name}` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSummaryResponse {
    /// Epoch the answering snapshot was pinned at.
    pub epoch: u64,
    /// Short name of the measure that ranked `summary.top`.
    pub measure: String,
    /// The table's aggregate view.
    pub summary: TableSummary,
}

/// `POST /v1/mutations` request body: a batch of lake deltas, applied as
/// one commit and published as one new epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MutationRequest {
    /// The deltas, applied in order within one batch.
    pub deltas: Vec<lake::delta::LakeDelta>,
}

/// `POST /v1/mutations` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MutationResponse {
    /// The epoch the batch was published as (readers see it from now on).
    pub epoch: u64,
    /// Number of deltas in the applied batch.
    pub batches: usize,
    /// Incremental-maintenance effect counters for the batch.
    pub stats: DeltaStats,
}

/// One WAL record in a `GET /v1/wal` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalRecordDto {
    /// Monotonic per-shard sequence number.
    pub seq: u64,
    /// The primary's epoch when the batch committed.
    pub epoch: u64,
    /// The committed batch of deltas.
    pub batch: Vec<lake::delta::LakeDelta>,
}

/// `GET /v1/wal?shard=<i>&from_seq=<s>` response: the shard's log suffix
/// after `from_seq`, or a directive to bootstrap from a snapshot when the
/// primary has checkpointed past that position.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalResponse {
    /// The shard the records belong to.
    pub shard: usize,
    /// The position the suffix starts after (echoed from the request).
    pub from_seq: u64,
    /// When `true`, the tail is gone — fetch `/v1/snapshot` instead.
    pub snapshot_required: bool,
    /// Sequence of the snapshot on offer when `snapshot_required`.
    pub snapshot_seq: Option<u64>,
    /// The record suffix, in sequence order (empty when caught up).
    pub records: Vec<WalRecordDto>,
}

/// `GET /v1/snapshot?shard=<i>` response. The snapshot file bytes ship
/// hex-encoded: the body is JSON and the format is binary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotResponse {
    /// The shard the snapshot belongs to.
    pub shard: usize,
    /// The last sequence number the snapshot covers.
    pub seq: u64,
    /// The snapshot file, lowercase hex.
    pub hex: String,
}

/// One shard's entry in a `GET /v1/digest` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardDigest {
    /// The shard index.
    pub shard: usize,
    /// The shard's published epoch.
    pub epoch: u64,
    /// The shard's state digest as 16 lowercase hex digits (a raw `u64`
    /// exceeds the integer range JSON readers agree on).
    pub digest: String,
}

/// `GET /v1/digest` response: the insurance exchange payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DigestResponse {
    /// The coordinator epoch (sum of shard epochs).
    pub epoch: u64,
    /// Per-shard epoch-tagged digests, in shard order.
    pub shards: Vec<ShardDigest>,
}

/// `POST /v1/admin/checkpoint` response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointResponse {
    /// Whether a snapshot was written (`false` never happens over HTTP —
    /// a non-durable server answers `409` instead).
    pub checkpointed: bool,
    /// The epoch the checkpoint covers.
    pub epoch: u64,
}

/// `POST /v1/admin/shutdown` response (sent while the drain begins).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShutdownResponse {
    /// Always `"shutting down"`.
    pub status: String,
}

/// One span in a `GET /v1/debug/traces/{id}` response: flat records that
/// encode the tree through `parent` (the root span has id `0` and no
/// parent). Timings are microsecond offsets from the trace start.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanDto {
    /// Span ID, unique within the trace; `0` is the root.
    pub id: u64,
    /// Parent span ID (`None` only on the root).
    pub parent: Option<u64>,
    /// The phase name (`route`, `coord_scatter`, `shard_query`, ...).
    pub name: String,
    /// Free-form detail label (`shard1`, the route, ...); often empty.
    pub label: String,
    /// Start offset from trace start, microseconds.
    pub start_us: u64,
    /// End offset from trace start, microseconds.
    pub end_us: u64,
    /// Wall duration (`end_us - start_us`).
    pub duration_us: u64,
    /// Self time: duration minus the summed durations of direct children.
    pub self_us: u64,
}

/// One entry in the `GET /v1/debug/traces` list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSummary {
    /// The trace ID, 16 lowercase hex chars (the `X-Dn-Trace-Id` value).
    pub id: String,
    /// The trace name (`http`, `ingest_poll`, ...).
    pub name: String,
    /// The edge's display label (route + status for HTTP traces).
    pub label: String,
    /// Wall-clock start, ISO-8601 UTC.
    pub started: String,
    /// Root span duration, microseconds.
    pub duration_us: u64,
    /// Whether the ID was forwarded from another process.
    pub forwarded: bool,
    /// Number of spans recorded (including the root).
    pub spans: usize,
}

/// `GET /v1/debug/traces` response: the most recent completed traces,
/// newest first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceListResponse {
    /// The active sampling rate (`0` = tracing disabled).
    pub sample_every: u64,
    /// Traces published into the ring since startup.
    pub published: u64,
    /// Traces dropped at publish time (contended ring slot).
    pub dropped: u64,
    /// The retained traces, newest first.
    pub traces: Vec<TraceSummary>,
}

/// `GET /v1/debug/traces/{id}` response: one trace's full span tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceResponse {
    /// The trace ID, 16 lowercase hex chars.
    pub id: String,
    /// The trace name.
    pub name: String,
    /// The edge's display label.
    pub label: String,
    /// Wall-clock start, ISO-8601 UTC.
    pub started: String,
    /// Root span duration, microseconds.
    pub duration_us: u64,
    /// Whether the ID was forwarded from another process.
    pub forwarded: bool,
    /// All spans, sorted by `(start_us, id)`.
    pub spans: Vec<SpanDto>,
}

/// The JSON error envelope every non-2xx response carries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorBody {
    /// The error detail.
    pub error: ErrorDetail,
}

/// Machine-readable error description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorDetail {
    /// The HTTP status code, repeated in the body.
    pub status: u16,
    /// A stable kind tag (`bad_request`, `not_found`, `conflict`, ...).
    pub kind: String,
    /// Human-readable context.
    pub message: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_body_round_trips() {
        let body = ErrorBody {
            error: ErrorDetail {
                status: 404,
                kind: "not_found".into(),
                message: "no such value".into(),
            },
        };
        let json = serde_json::to_string(&body).unwrap();
        let back: ErrorBody = serde_json::from_str(&json).unwrap();
        assert_eq!(back.error.status, 404);
        assert_eq!(back.error.kind, "not_found");
    }

    #[test]
    fn mutation_request_round_trips() {
        use lake::delta::LakeDelta;
        use lake::table::TableBuilder;
        let req = MutationRequest {
            deltas: vec![
                LakeDelta::new().add_table(
                    TableBuilder::new("T9")
                        .column("animal", ["Jaguar", "Okapi"])
                        .build()
                        .unwrap(),
                ),
                LakeDelta::new().remove_table("T1"),
            ],
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: MutationRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.deltas.len(), 2);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
