//! Lock-free request metrics and the `/metrics` text exposition.
//!
//! Every route gets a request counter per status class and a fixed-bucket
//! latency histogram, all plain `AtomicU64`s — recording a request is a
//! handful of relaxed increments, so the metrics path adds nothing
//! measurable to request latency. The exposition format is the Prometheus
//! text format (counters + cumulative `_bucket{le=...}` histograms), which
//! is also trivially greppable by eye.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Histogram bucket upper bounds, in microseconds. The last implicit
/// bucket is `+Inf`.
pub const BUCKET_BOUNDS_US: [u64; 10] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000,
];

/// The fixed set of routes the server exposes (used as metric labels and
/// for dispatch bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `GET /v1/top-k`
    TopK,
    /// `GET /v1/score/{value}`
    Score,
    /// `GET /v1/explain/{value}`
    Explain,
    /// `GET /v1/tables`
    Tables,
    /// `GET /v1/tables/{name}`
    TableSummary,
    /// `POST /v1/mutations`
    Mutations,
    /// `GET /v1/wal`
    Wal,
    /// `GET /v1/snapshot`
    Snapshot,
    /// `GET /v1/digest`
    Digest,
    /// `POST /v1/admin/checkpoint`
    Checkpoint,
    /// `POST /v1/admin/shutdown`
    Shutdown,
    /// `GET /v1/debug/traces`
    DebugTraces,
    /// `GET /v1/debug/traces/{id}`
    DebugTrace,
    /// Anything that matched no route (404s, 405s, parse failures).
    Other,
}

/// All routes, in exposition order.
pub const ROUTES: [Route; 16] = [
    Route::Healthz,
    Route::Metrics,
    Route::TopK,
    Route::Score,
    Route::Explain,
    Route::Tables,
    Route::TableSummary,
    Route::Mutations,
    Route::Wal,
    Route::Snapshot,
    Route::Digest,
    Route::Checkpoint,
    Route::Shutdown,
    Route::DebugTraces,
    Route::DebugTrace,
    Route::Other,
];

impl Route {
    /// The metric label for this route.
    pub fn label(self) -> &'static str {
        match self {
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::TopK => "top_k",
            Route::Score => "score",
            Route::Explain => "explain",
            Route::Tables => "tables",
            Route::TableSummary => "table_summary",
            Route::Mutations => "mutations",
            Route::Wal => "wal",
            Route::Snapshot => "snapshot",
            Route::Digest => "digest",
            Route::Checkpoint => "checkpoint",
            Route::Shutdown => "shutdown",
            Route::DebugTraces => "debug_traces",
            Route::DebugTrace => "debug_trace",
            Route::Other => "other",
        }
    }

    fn index(self) -> usize {
        ROUTES.iter().position(|&r| r == self).expect("known route")
    }
}

#[derive(Debug)]
struct RouteMetrics {
    /// Requests by status class: 2xx, 4xx, 5xx.
    by_class: [AtomicU64; 3],
    /// Cumulative-style histogram counts per bucket (stored per-bucket,
    /// accumulated at render time) + the +Inf bucket.
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    /// Sum of observed latencies, microseconds.
    sum_us: AtomicU64,
}

impl RouteMetrics {
    fn new() -> RouteMetrics {
        RouteMetrics {
            by_class: std::array::from_fn(|_| AtomicU64::new(0)),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }

    fn record(&self, status: u16, micros: u64) {
        let class = match status {
            200..=299 => 0,
            500..=599 => 2,
            _ => 1,
        };
        self.by_class[class].fetch_add(1, Ordering::Relaxed);
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(micros, Ordering::Relaxed);
    }

    fn total(&self) -> u64 {
        self.by_class
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// Gauges of one shard engine, exposed with a `shard="<i>"` label.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardGauges {
    /// The shard's own published epoch.
    pub epoch: u64,
    /// The shard engine's own top-k cache hits (the merged coordinator
    /// cache is the unlabeled `dn_cache_*` family).
    pub cache_hits: u64,
    /// The shard engine's own top-k cache misses.
    pub cache_misses: u64,
    /// Bytes of batch records in the shard's WAL (`None` on a
    /// non-durable server or when the coordinator lock was contended at
    /// render time).
    pub wal_record_bytes: Option<u64>,
    /// Snapshot files in the shard's store directory (same caveat).
    pub store_snapshots: Option<u64>,
}

/// Replication gauges of a follower server (absent on a primary).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicaGauges {
    /// Epochs this follower's view trails the primary's.
    pub lag_epochs: u64,
    /// Digest mismatches detected since the follower started.
    pub divergence_total: u64,
}

/// Drop-folder ingest gauges (absent unless the server runs with
/// `--ingest-dir`). Sampled from the ingester's shared
/// [`dn_ingest::IngestStats`] at render time.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestGauges {
    /// Drop-folder files scanned, cumulative across polls.
    pub files_seen: u64,
    /// Delta batches delivered and journal-committed.
    pub batches_applied: u64,
    /// Rows compared or loaded while synthesizing deltas.
    pub rows_diffed: u64,
    /// Transient delivery failures retried.
    pub retries: u64,
    /// Files skipped because they failed to parse (torn input).
    pub torn_files: u64,
    /// Age in seconds of the oldest observed-but-unapplied change.
    pub lag_seconds: f64,
}

/// Engine-level gauges the handler samples at render time and passes in.
#[derive(Debug, Clone, Default)]
pub struct EngineGauges {
    /// The currently published (coordinator) epoch.
    pub epoch: u64,
    /// Snapshots published so far.
    pub epochs_published: u64,
    /// Top-k cache hits (the coordinator's merged cache).
    pub cache_hits: u64,
    /// Top-k cache misses.
    pub cache_misses: u64,
    /// Top-k cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Total bytes of batch records across the shard WALs (`None` on a
    /// non-durable server or when the coordinator lock was contended at
    /// render time).
    pub wal_record_bytes: Option<u64>,
    /// Snapshot files on disk across the shard stores (same caveat).
    pub store_snapshots: Option<u64>,
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardGauges>,
    /// Follower-mode replication gauges (`None` on a primary).
    pub replica: Option<ReplicaGauges>,
    /// Drop-folder ingest gauges (`None` without `--ingest-dir`).
    pub ingest: Option<IngestGauges>,
}

/// The server-wide metrics registry.
#[derive(Debug)]
pub struct Metrics {
    routes: Vec<RouteMetrics>,
    connections_accepted: AtomicU64,
    /// When this registry was created (= server start), for
    /// `dn_uptime_seconds`.
    started: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// A fresh registry with every counter at zero.
    pub fn new() -> Metrics {
        Metrics {
            routes: ROUTES.iter().map(|_| RouteMetrics::new()).collect(),
            connections_accepted: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Record one handled request.
    pub fn record(&self, route: Route, status: u16, micros: u64) {
        self.routes[route.index()].record(status, micros);
    }

    /// Record one accepted connection.
    pub fn record_connection(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests handled across all routes.
    pub fn requests_total(&self) -> u64 {
        self.routes.iter().map(RouteMetrics::total).sum()
    }

    /// Requests handled on one route.
    pub fn route_total(&self, route: Route) -> u64 {
        self.routes[route.index()].total()
    }

    /// Render the Prometheus-style text exposition, folding in the
    /// engine gauges sampled by the caller.
    pub fn render(&self, gauges: &EngineGauges) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# TYPE dn_http_requests_total counter\n");
        for (i, route) in ROUTES.iter().enumerate() {
            let m = &self.routes[i];
            for (class, label) in [(0, "2xx"), (1, "4xx"), (2, "5xx")] {
                let n = m.by_class[class].load(Ordering::Relaxed);
                if n > 0 {
                    out.push_str(&format!(
                        "dn_http_requests_total{{route=\"{}\",class=\"{label}\"}} {n}\n",
                        route.label()
                    ));
                }
            }
        }
        out.push_str("# TYPE dn_http_request_duration_us histogram\n");
        for (i, route) in ROUTES.iter().enumerate() {
            let m = &self.routes[i];
            let total = m.total();
            if total == 0 {
                continue;
            }
            let mut cumulative = 0u64;
            for (b, bound) in BUCKET_BOUNDS_US.iter().enumerate() {
                cumulative += m.buckets[b].load(Ordering::Relaxed);
                out.push_str(&format!(
                    "dn_http_request_duration_us_bucket{{route=\"{}\",le=\"{bound}\"}} {cumulative}\n",
                    route.label()
                ));
            }
            cumulative += m.buckets[BUCKET_BOUNDS_US.len()].load(Ordering::Relaxed);
            out.push_str(&format!(
                "dn_http_request_duration_us_bucket{{route=\"{}\",le=\"+Inf\"}} {cumulative}\n",
                route.label()
            ));
            out.push_str(&format!(
                "dn_http_request_duration_us_sum{{route=\"{}\"}} {}\n",
                route.label(),
                m.sum_us.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "dn_http_request_duration_us_count{{route=\"{}\"}} {total}\n",
                route.label()
            ));
        }
        out.push_str("# TYPE dn_http_connections_accepted_total counter\n");
        out.push_str(&format!(
            "dn_http_connections_accepted_total {}\n",
            self.connections_accepted.load(Ordering::Relaxed)
        ));
        out.push_str("# TYPE dn_build_info gauge\n");
        out.push_str(&format!(
            "dn_build_info{{version=\"{}\",crate=\"dn-server\",rust_edition=\"2021\"}} 1\n",
            env!("CARGO_PKG_VERSION")
        ));
        out.push_str("# TYPE dn_uptime_seconds gauge\n");
        out.push_str(&format!(
            "dn_uptime_seconds {:.3}\n",
            self.started.elapsed().as_secs_f64()
        ));
        out.push_str("# TYPE dn_trace_sample_every gauge\n");
        out.push_str(&format!(
            "dn_trace_sample_every {}\n",
            dn_trace::sample_every()
        ));
        out.push_str("# TYPE dn_traces_published_total counter\n");
        out.push_str(&format!(
            "dn_traces_published_total {}\n",
            dn_trace::traces_published()
        ));
        out.push_str("# TYPE dn_traces_dropped_total counter\n");
        out.push_str(&format!(
            "dn_traces_dropped_total {}\n",
            dn_trace::traces_dropped()
        ));
        // Per-phase duration histograms, fed by the span layer. Phases
        // with no observations yet are omitted (they appear once traced).
        let phases = dn_trace::phase_snapshot();
        if phases.iter().any(|p| p.count > 0) {
            out.push_str("# TYPE dn_phase_duration_us histogram\n");
            for snap in &phases {
                if snap.count == 0 {
                    continue;
                }
                let phase = snap.phase;
                let mut cumulative = 0u64;
                for (b, bound) in dn_trace::PHASE_BUCKET_BOUNDS_US.iter().enumerate() {
                    cumulative += snap.buckets[b];
                    out.push_str(&format!(
                        "dn_phase_duration_us_bucket{{phase=\"{phase}\",le=\"{bound}\"}} {cumulative}\n"
                    ));
                }
                cumulative += snap.buckets[dn_trace::PHASE_BUCKET_BOUNDS_US.len()];
                out.push_str(&format!(
                    "dn_phase_duration_us_bucket{{phase=\"{phase}\",le=\"+Inf\"}} {cumulative}\n"
                ));
                out.push_str(&format!(
                    "dn_phase_duration_us_sum{{phase=\"{phase}\"}} {}\n",
                    snap.sum_us
                ));
                out.push_str(&format!(
                    "dn_phase_duration_us_count{{phase=\"{phase}\"}} {}\n",
                    snap.count
                ));
            }
        }
        out.push_str("# TYPE dn_server_epoch gauge\n");
        out.push_str(&format!("dn_server_epoch {}\n", gauges.epoch));
        out.push_str("# TYPE dn_server_epochs_published_total counter\n");
        out.push_str(&format!(
            "dn_server_epochs_published_total {}\n",
            gauges.epochs_published
        ));
        out.push_str("# TYPE dn_cache_hits_total counter\n");
        out.push_str(&format!("dn_cache_hits_total {}\n", gauges.cache_hits));
        out.push_str("# TYPE dn_cache_misses_total counter\n");
        out.push_str(&format!("dn_cache_misses_total {}\n", gauges.cache_misses));
        out.push_str("# TYPE dn_cache_hit_rate gauge\n");
        out.push_str(&format!("dn_cache_hit_rate {:.6}\n", gauges.cache_hit_rate));
        if let Some(bytes) = gauges.wal_record_bytes {
            out.push_str("# TYPE dn_wal_record_bytes gauge\n");
            out.push_str(&format!("dn_wal_record_bytes {bytes}\n"));
        }
        if let Some(snaps) = gauges.store_snapshots {
            out.push_str("# TYPE dn_store_snapshots gauge\n");
            out.push_str(&format!("dn_store_snapshots {snaps}\n"));
        }
        if let Some(replica) = gauges.replica {
            out.push_str("# TYPE dn_replica_lag_epochs gauge\n");
            out.push_str(&format!("dn_replica_lag_epochs {}\n", replica.lag_epochs));
            out.push_str("# TYPE dn_replica_divergence_total counter\n");
            out.push_str(&format!(
                "dn_replica_divergence_total {}\n",
                replica.divergence_total
            ));
        }
        if let Some(ingest) = gauges.ingest {
            out.push_str("# TYPE dn_ingest_files_seen_total counter\n");
            out.push_str(&format!(
                "dn_ingest_files_seen_total {}\n",
                ingest.files_seen
            ));
            out.push_str("# TYPE dn_ingest_batches_applied_total counter\n");
            out.push_str(&format!(
                "dn_ingest_batches_applied_total {}\n",
                ingest.batches_applied
            ));
            out.push_str("# TYPE dn_ingest_rows_diffed_total counter\n");
            out.push_str(&format!(
                "dn_ingest_rows_diffed_total {}\n",
                ingest.rows_diffed
            ));
            out.push_str("# TYPE dn_ingest_retries_total counter\n");
            out.push_str(&format!("dn_ingest_retries_total {}\n", ingest.retries));
            out.push_str("# TYPE dn_ingest_torn_files_total counter\n");
            out.push_str(&format!(
                "dn_ingest_torn_files_total {}\n",
                ingest.torn_files
            ));
            out.push_str("# TYPE dn_ingest_lag_seconds gauge\n");
            out.push_str(&format!(
                "dn_ingest_lag_seconds {:.3}\n",
                ingest.lag_seconds
            ));
        }
        if !gauges.shards.is_empty() {
            out.push_str("# TYPE dn_shard_epoch gauge\n");
            for (i, shard) in gauges.shards.iter().enumerate() {
                out.push_str(&format!(
                    "dn_shard_epoch{{shard=\"{i}\"}} {}\n",
                    shard.epoch
                ));
            }
            out.push_str("# TYPE dn_shard_cache_hits_total counter\n");
            for (i, shard) in gauges.shards.iter().enumerate() {
                out.push_str(&format!(
                    "dn_shard_cache_hits_total{{shard=\"{i}\"}} {}\n",
                    shard.cache_hits
                ));
            }
            out.push_str("# TYPE dn_shard_cache_misses_total counter\n");
            for (i, shard) in gauges.shards.iter().enumerate() {
                out.push_str(&format!(
                    "dn_shard_cache_misses_total{{shard=\"{i}\"}} {}\n",
                    shard.cache_misses
                ));
            }
            if gauges.shards.iter().any(|s| s.wal_record_bytes.is_some()) {
                out.push_str("# TYPE dn_shard_wal_record_bytes gauge\n");
                for (i, shard) in gauges.shards.iter().enumerate() {
                    if let Some(bytes) = shard.wal_record_bytes {
                        out.push_str(&format!(
                            "dn_shard_wal_record_bytes{{shard=\"{i}\"}} {bytes}\n"
                        ));
                    }
                }
            }
            if gauges.shards.iter().any(|s| s.store_snapshots.is_some()) {
                out.push_str("# TYPE dn_shard_store_snapshots gauge\n");
                for (i, shard) in gauges.shards.iter().enumerate() {
                    if let Some(snaps) = shard.store_snapshots {
                        out.push_str(&format!(
                            "dn_shard_store_snapshots{{shard=\"{i}\"}} {snaps}\n"
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_show_up_in_the_exposition() {
        let metrics = Metrics::new();
        metrics.record(Route::TopK, 200, 120);
        metrics.record(Route::TopK, 200, 3_000);
        metrics.record(Route::Score, 404, 40);
        metrics.record(Route::Mutations, 500, 900_000);
        metrics.record_connection();

        assert_eq!(metrics.requests_total(), 4);
        assert_eq!(metrics.route_total(Route::TopK), 2);

        let text = metrics.render(&EngineGauges {
            epoch: 7,
            epochs_published: 8,
            cache_hits: 10,
            cache_misses: 5,
            cache_hit_rate: 10.0 / 15.0,
            wal_record_bytes: Some(4096),
            store_snapshots: Some(2),
            shards: vec![
                ShardGauges {
                    epoch: 4,
                    cache_hits: 1,
                    cache_misses: 2,
                    wal_record_bytes: Some(1024),
                    store_snapshots: Some(1),
                },
                ShardGauges {
                    epoch: 3,
                    cache_hits: 0,
                    cache_misses: 0,
                    wal_record_bytes: Some(3072),
                    store_snapshots: Some(1),
                },
            ],
            replica: Some(ReplicaGauges {
                lag_epochs: 2,
                divergence_total: 1,
            }),
            ingest: Some(IngestGauges {
                files_seen: 12,
                batches_applied: 4,
                rows_diffed: 320,
                retries: 1,
                torn_files: 2,
                lag_seconds: 0.25,
            }),
        });
        assert!(text.contains("dn_http_requests_total{route=\"top_k\",class=\"2xx\"} 2"));
        assert!(text.contains("dn_http_requests_total{route=\"score\",class=\"4xx\"} 1"));
        assert!(text.contains("dn_http_requests_total{route=\"mutations\",class=\"5xx\"} 1"));
        // Histogram cumulativeness: the 250us bucket holds the 120us obs,
        // the +Inf bucket holds both.
        assert!(text.contains("dn_http_request_duration_us_bucket{route=\"top_k\",le=\"250\"} 1"));
        assert!(text.contains("dn_http_request_duration_us_bucket{route=\"top_k\",le=\"+Inf\"} 2"));
        assert!(text.contains("dn_http_request_duration_us_count{route=\"top_k\"} 2"));
        // The 900ms observation lands in +Inf only.
        assert!(text
            .contains("dn_http_request_duration_us_bucket{route=\"mutations\",le=\"250000\"} 0"));
        assert!(text.contains("dn_server_epoch 7\n"));
        assert!(text.contains("dn_wal_record_bytes 4096\n"));
        assert!(text.contains("dn_store_snapshots 2\n"));
        assert!(text.contains("dn_http_connections_accepted_total 1\n"));
        // Per-shard families carry the shard label.
        assert!(text.contains("dn_shard_epoch{shard=\"0\"} 4\n"));
        assert!(text.contains("dn_shard_epoch{shard=\"1\"} 3\n"));
        assert!(text.contains("dn_shard_cache_hits_total{shard=\"0\"} 1\n"));
        assert!(text.contains("dn_shard_wal_record_bytes{shard=\"1\"} 3072\n"));
        assert!(text.contains("dn_shard_store_snapshots{shard=\"0\"} 1\n"));
        assert!(text.contains("dn_replica_lag_epochs 2\n"));
        assert!(text.contains("dn_replica_divergence_total 1\n"));
        assert!(text.contains("dn_ingest_files_seen_total 12\n"));
        assert!(text.contains("dn_ingest_batches_applied_total 4\n"));
        assert!(text.contains("dn_ingest_rows_diffed_total 320\n"));
        assert!(text.contains("dn_ingest_retries_total 1\n"));
        assert!(text.contains("dn_ingest_torn_files_total 2\n"));
        assert!(text.contains("dn_ingest_lag_seconds 0.250\n"));
    }

    #[test]
    fn absent_gauges_are_omitted() {
        let metrics = Metrics::new();
        let text = metrics.render(&EngineGauges::default());
        assert!(!text.contains("dn_wal_record_bytes"));
        assert!(!text.contains("dn_store_snapshots"));
        assert!(!text.contains("dn_shard_epoch"));
        assert!(
            !text.contains("dn_replica_lag_epochs"),
            "a primary exposes no replica gauges"
        );
        assert!(
            !text.contains("dn_ingest_"),
            "a server without --ingest-dir exposes no ingest gauges"
        );
        assert!(text.contains("dn_server_epoch 0\n"));
    }

    #[test]
    fn build_info_uptime_and_trace_gauges_always_render() {
        let metrics = Metrics::new();
        let text = metrics.render(&EngineGauges::default());
        assert!(text.contains(&format!(
            "dn_build_info{{version=\"{}\",crate=\"dn-server\",rust_edition=\"2021\"}} 1\n",
            env!("CARGO_PKG_VERSION")
        )));
        assert!(text.contains("dn_uptime_seconds "));
        assert!(text.contains("dn_trace_sample_every "));
        assert!(text.contains("dn_traces_published_total "));
        assert!(text.contains("dn_traces_dropped_total "));
    }

    #[test]
    fn phase_histograms_render_once_observed() {
        // The phase registry is process-global; observe directly rather
        // than via spans so this test needs no sampling state.
        dn_trace::observe(dn_trace::Phase::CoordScatter, 120);
        let metrics = Metrics::new();
        let text = metrics.render(&EngineGauges::default());
        assert!(text.contains("# TYPE dn_phase_duration_us histogram\n"));
        assert!(text.contains("dn_phase_duration_us_count{phase=\"coord_scatter\"} "));
        assert!(text.contains("dn_phase_duration_us_bucket{phase=\"coord_scatter\",le=\"+Inf\"} "));
    }

    #[test]
    fn route_labels_are_unique() {
        let labels: std::collections::HashSet<&str> = ROUTES.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), ROUTES.len());
    }
}
