//! The HTTP delivery sink for dn-ingest: ships delta batches to a remote
//! primary's `POST /v1/mutations`.
//!
//! This is the transport behind the standalone `dn-ingest` CLI. Error
//! mapping follows the exactly-once contract in `dn_ingest::sink`:
//! transport failures and 5xx responses are [`SinkError::Transient`] (the
//! batch *may* have committed server-side — the client never auto-retries
//! POSTs, and a timed-out request can still have landed), while 4xx
//! responses are [`SinkError::Rejected`] (the server evaluated the batch
//! and refused it). The sink keeps the default
//! `transient_means_unapplied() == false`, which tells the ingester that a
//! rejection following a transient failure may just be the first delivery
//! showing through.

use std::net::SocketAddr;
use std::time::Duration;

use dn_ingest::{DeltaSink, SinkError};
use lake::LakeDelta;

use crate::api::MutationRequest;
use crate::client::Client;

/// [`DeltaSink`] that POSTs batches to a primary's `/v1/mutations`.
#[derive(Debug)]
pub struct HttpSink {
    client: Client,
}

impl HttpSink {
    /// A sink for the primary at `addr` with the client's default timeout.
    pub fn new(addr: SocketAddr) -> HttpSink {
        HttpSink {
            client: Client::new(addr),
        }
    }

    /// Override the connect/read timeout.
    pub fn with_timeout(addr: SocketAddr, timeout: Duration) -> HttpSink {
        HttpSink {
            client: Client::new(addr).with_timeout(timeout),
        }
    }
}

impl DeltaSink for HttpSink {
    fn deliver(&mut self, _seq: u64, deltas: &[LakeDelta]) -> Result<(), SinkError> {
        let request = MutationRequest {
            deltas: deltas.to_vec(),
        };
        let body = serde_json::to_string(&request)
            .map_err(|e| SinkError::Rejected(format!("unserializable batch: {e}")))?;
        match self.client.post_json("/v1/mutations", &body) {
            Ok(response) if response.status == 200 => Ok(()),
            Ok(response) if (400..500).contains(&response.status) => Err(SinkError::Rejected(
                format!("HTTP {}: {}", response.status, clip(&response.body)),
            )),
            Ok(response) => Err(SinkError::Transient(format!(
                "HTTP {}: {}",
                response.status,
                clip(&response.body)
            ))),
            Err(e) => Err(SinkError::Transient(e.to_string())),
        }
    }
}

fn clip(body: &str) -> &str {
    let end = body
        .char_indices()
        .nth(200)
        .map(|(i, _)| i)
        .unwrap_or(body.len());
    &body[..end]
}
