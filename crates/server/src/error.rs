//! Typed API errors and their mapping from engine errors to HTTP status
//! codes + JSON bodies.
//!
//! The mapping contract (documented in `docs/API.md`):
//!
//! | source | status |
//! |---|---|
//! | bad parameters, bad JSON, truncated body | `400` |
//! | mutation or checkpoint on a read-only follower | `403` |
//! | unknown route / value / table / unserved measure | `404` |
//! | wrong method on a known route | `405` |
//! | duplicate table/column, checkpoint on a non-durable server | `409` |
//! | body over the configured limit | `413` |
//! | head over the configured limit | `431` |
//! | maintenance or durability failure | `500` |
//! | chunked transfer encoding | `501` |
//! | halted (diverged) replica asked for data | `503` |

use dn_service::ServiceError;
use lake::LakeError;

use crate::api::{ErrorBody, ErrorDetail};
use crate::http::Response;

/// An error ready to become an HTTP response.
#[derive(Debug)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable tag.
    pub kind: &'static str,
    /// Human-readable context.
    pub message: String,
}

impl ApiError {
    /// `400` — the client sent something unusable.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            kind: "bad_request",
            message: message.into(),
        }
    }

    /// `404` — the route, value, table, or measure does not exist here.
    pub fn not_found(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 404,
            kind: "not_found",
            message: message.into(),
        }
    }

    /// `405` — known route, wrong method.
    pub fn method_not_allowed(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 405,
            kind: "method_not_allowed",
            message: message.into(),
        }
    }

    /// `403` — the server understood but refuses (read-only follower).
    pub fn forbidden(kind: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status: 403,
            kind,
            message: message.into(),
        }
    }

    /// `503` — the server cannot serve safely right now (halted replica).
    pub fn unavailable(kind: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status: 503,
            kind,
            message: message.into(),
        }
    }

    /// `409` — the request conflicts with current state.
    pub fn conflict(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 409,
            kind: "conflict",
            message: message.into(),
        }
    }

    /// `500` — the engine failed; the client did nothing wrong.
    pub fn internal(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 500,
            kind: "internal",
            message: message.into(),
        }
    }

    /// Map a writer-path failure onto the documented statuses.
    pub fn from_service(err: &ServiceError) -> ApiError {
        match err {
            ServiceError::Lake(lake_err) => match lake_err {
                LakeError::NotFound(what) => ApiError::not_found(format!("not found: {what}")),
                LakeError::DuplicateTable(name) => {
                    ApiError::conflict(format!("table {name:?} already exists"))
                }
                LakeError::DuplicateColumn { .. } => ApiError::conflict(lake_err.to_string()),
                LakeError::Io { .. } => ApiError::internal(lake_err.to_string()),
                // Ragged rows, CSV problems, serde problems: the client's
                // payload was structurally valid JSON but not a valid lake
                // mutation.
                other => ApiError::bad_request(other.to_string()),
            },
            ServiceError::Maintenance(msg) => {
                ApiError::internal(format!("incremental maintenance failed: {msg}"))
            }
            ServiceError::Store(store_err) => {
                ApiError::internal(format!("durability layer failed: {store_err}"))
            }
        }
    }

    /// Render the JSON error envelope.
    pub fn into_response(self) -> Response {
        let body = ErrorBody {
            error: ErrorDetail {
                status: self.status,
                kind: self.kind.to_owned(),
                message: self.message,
            },
        };
        let json = serde_json::to_string(&body)
            .unwrap_or_else(|_| format!("{{\"error\":{{\"status\":{}}}}}", self.status));
        Response::json(self.status, json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_errors_map_to_documented_statuses() {
        let not_found = ServiceError::Lake(LakeError::NotFound("T9".into()));
        assert_eq!(ApiError::from_service(&not_found).status, 404);
        let dup = ServiceError::Lake(LakeError::DuplicateTable("T1".into()));
        assert_eq!(ApiError::from_service(&dup).status, 409);
        let maint = ServiceError::Maintenance("bad effects".into());
        assert_eq!(ApiError::from_service(&maint).status, 500);
        let empty = ServiceError::Lake(LakeError::EmptyTable("T0".into()));
        assert_eq!(ApiError::from_service(&empty).status, 400);
    }

    #[test]
    fn error_response_is_json_with_matching_status() {
        let resp = ApiError::not_found("no such value").into_response();
        assert_eq!(resp.status, 404);
        let body: ErrorBody =
            serde_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(body.error.status, 404);
        assert_eq!(body.error.kind, "not_found");
        assert!(body.error.message.contains("no such value"));
    }
}
