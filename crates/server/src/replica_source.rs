//! The HTTP transport for the follower engine: a
//! [`dn_service::ReplicaSource`] over the primary's `/v1/digest`,
//! `/v1/snapshot`, and `/v1/wal` endpoints, built on the blocking
//! [`Client`].
//!
//! Every failure — transport, non-200 status, undecodable body — maps to
//! [`ReplicaError::Source`], which the follower's tail loop treats as
//! transient and retries with backoff. Snapshot bytes travel hex-encoded
//! (the body is JSON, the format is binary) and digests travel as 16-hex
//! strings (a raw `u64` exceeds the integer range JSON readers agree on);
//! both are decoded here so the service layer never sees the wire shapes.

use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::Duration;

use dn_service::{
    FetchedRecord, PrimaryStatus, ReplicaError, ReplicaSource, ShardPeerStatus, WalFetch,
};

use crate::api::{DigestResponse, SnapshotResponse, WalResponse};
use crate::client::Client;

/// A [`ReplicaSource`] that pulls from a primary over HTTP.
#[derive(Debug)]
pub struct HttpReplicaSource {
    client: Mutex<Client>,
}

impl HttpReplicaSource {
    /// A source for the primary at `addr`.
    pub fn new(addr: SocketAddr) -> HttpReplicaSource {
        HttpReplicaSource {
            client: Mutex::new(Client::new(addr)),
        }
    }

    /// Override the connect/read timeout (default 10s).
    pub fn with_timeout(addr: SocketAddr, timeout: Duration) -> HttpReplicaSource {
        HttpReplicaSource {
            client: Mutex::new(Client::new(addr).with_timeout(timeout)),
        }
    }

    fn get_json<T: serde::Deserialize>(&self, path: &str) -> Result<T, ReplicaError> {
        let mut client = self.client.lock().unwrap_or_else(|p| p.into_inner());
        let response = client
            .get(path)
            .map_err(|e| ReplicaError::Source(format!("GET {path}: {e}")))?;
        if response.status != 200 {
            return Err(ReplicaError::Source(format!(
                "GET {path}: primary answered {}: {}",
                response.status, response.body
            )));
        }
        response
            .json()
            .map_err(|e| ReplicaError::Source(format!("GET {path}: undecodable body: {e}")))
    }
}

impl ReplicaSource for HttpReplicaSource {
    fn fetch_status(&self) -> Result<PrimaryStatus, ReplicaError> {
        let response: DigestResponse = self.get_json("/v1/digest")?;
        let mut shards = Vec::with_capacity(response.shards.len());
        for entry in response.shards {
            let digest = u64::from_str_radix(&entry.digest, 16).map_err(|_| {
                ReplicaError::Source(format!(
                    "shard {} digest {:?} is not 16 hex digits",
                    entry.shard, entry.digest
                ))
            })?;
            shards.push(ShardPeerStatus {
                epoch: entry.epoch,
                digest,
            });
        }
        Ok(PrimaryStatus {
            epoch: response.epoch,
            shards,
        })
    }

    fn fetch_snapshot(&self, shard: usize) -> Result<(u64, Vec<u8>), ReplicaError> {
        let response: SnapshotResponse = self.get_json(&format!("/v1/snapshot?shard={shard}"))?;
        let bytes = dn_store::from_hex(&response.hex)
            .map_err(|e| ReplicaError::Source(format!("shard {shard} snapshot hex: {e}")))?;
        Ok((response.seq, bytes))
    }

    fn fetch_wal(&self, shard: usize, from_seq: u64) -> Result<WalFetch, ReplicaError> {
        let response: WalResponse =
            self.get_json(&format!("/v1/wal?shard={shard}&from_seq={from_seq}"))?;
        if response.snapshot_required {
            return Ok(WalFetch::SnapshotRequired {
                snapshot_seq: response.snapshot_seq.unwrap_or(0),
            });
        }
        Ok(WalFetch::Records(
            response
                .records
                .into_iter()
                .map(|r| FetchedRecord {
                    seq: r.seq,
                    epoch: r.epoch,
                    batch: r.batch,
                })
                .collect(),
        ))
    }
}
