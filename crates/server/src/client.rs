//! A minimal blocking HTTP/1.1 client over `std::net`, good enough for
//! the wire tests, the `ci.sh` smoke gate, and the `exp_http` load
//! generator — so driving the server needs no external tooling.
//!
//! The client keeps one connection alive and reuses it across requests
//! (matching the server's keep-alive path); when the server closed the
//! connection in the meantime, the next request transparently reconnects
//! once. Responses are read strictly by `Content-Length`, mirroring the
//! server's framing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value (empty when absent).
    pub content_type: String,
    /// Body as text (the API is JSON / plain text throughout).
    pub body: String,
    /// Whether the server kept the connection open.
    pub keep_alive: bool,
    /// The `X-Dn-Trace-Id` the server echoed, when the request was
    /// traced (fetch its span tree at `/v1/debug/traces/{id}`).
    pub trace_id: Option<u64>,
}

impl ClientResponse {
    /// Deserialize the JSON body into `T`.
    ///
    /// # Errors
    /// The decode error when the body is not valid JSON for `T`.
    pub fn json<T: serde::Deserialize>(&self) -> Result<T, serde::Error> {
        serde_json::from_str(&self.body)
    }
}

/// A blocking keep-alive client bound to one server address.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
    forward_trace: bool,
}

impl Client {
    /// A client for `addr`. No connection is made until the first request.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(10),
            stream: None,
            forward_trace: true,
        }
    }

    /// Override the connect/read timeout (default 10s).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Disable trace-ID forwarding: by default, when the calling thread
    /// is inside an active trace, every request carries its ID as
    /// `X-Dn-Trace-Id` so the far server's spans join this trace.
    pub fn without_trace_forwarding(mut self) -> Client {
        self.forward_trace = false;
        self
    }

    /// `GET` a path (with query string), e.g. `"/v1/top-k?measure=bc&k=10"`.
    ///
    /// # Errors
    /// Transport failures after one reconnect attempt.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST` a JSON body to a path.
    ///
    /// # Errors
    /// Transport failures after one reconnect attempt.
    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    fn connect(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        // Before reusing a kept-alive connection, probe it: the server
        // may have sent a FIN in the meantime (drain, per-connection
        // request cap). Detecting staleness *before* writing means even
        // a non-idempotent POST can safely go out on a fresh socket.
        if self.stream.as_ref().is_some_and(connection_is_stale) {
            self.stream = None;
        }
        let reused = self.stream.is_some();
        match self.try_request(method, path, body) {
            Ok(response) => Ok(response),
            Err(err) if reused && method == "GET" => {
                // A request already in flight when the connection died is
                // only safe to replay when it is idempotent; POSTs (e.g.
                // /v1/mutations, which the server may have committed even
                // though the response was lost) surface the error to the
                // caller instead of silently applying twice.
                self.stream = None;
                let _ = err;
                self.try_request(method, path, body)
            }
            Err(err) => {
                self.stream = None;
                Err(err)
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let trace_header = match self
            .forward_trace
            .then(dn_trace::current_trace_id)
            .flatten()
        {
            Some(id) => format!("X-Dn-Trace-Id: {}\r\n", dn_trace::format_trace_id(id)),
            None => String::new(),
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n{}{trace_header}Connection: keep-alive\r\n\r\n",
            self.addr,
            body.map_or(0, str::len),
            if body.is_some() {
                "Content-Type: application/json\r\n"
            } else {
                ""
            },
        );
        let result = (|| {
            let stream = self.connect()?;
            stream.write_all(head.as_bytes())?;
            if let Some(body) = body {
                stream.write_all(body.as_bytes())?;
            }
            stream.flush()?;
            read_response(stream)
        })();
        match result {
            Ok(response) => {
                if !response.keep_alive {
                    self.stream = None;
                }
                Ok(response)
            }
            Err(err) => {
                self.stream = None;
                Err(err)
            }
        }
    }
}

/// Whether a kept-alive connection is unusable for the next request: a
/// non-blocking peek sees a FIN (EOF), leftover unread bytes (protocol
/// desync), or a socket error. Only a clean `WouldBlock` means the
/// connection is idle and healthy.
fn connection_is_stale(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut byte = [0u8; 1];
    let probe = stream.peek(&mut byte);
    if stream.set_nonblocking(false).is_err() {
        return true;
    }
    !matches!(probe, Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock)
}

fn bad_data(message: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.to_owned())
}

/// Read one `Content-Length`-framed response from the stream.
fn read_response(stream: &mut TcpStream) -> std::io::Result<ClientResponse> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        if buf.len() > (1 << 20) {
            return Err(bad_data("response head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a full response head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad_data("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad_data("bad status line"))?;
    let mut content_length = 0usize;
    let mut content_type = String::new();
    let mut keep_alive = true;
    let mut trace_id = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad_data("bad Content-Length"))?;
            }
            "content-type" => content_type = value.trim().to_owned(),
            "connection" => keep_alive = !value.trim().eq_ignore_ascii_case("close"),
            "x-dn-trace-id" => trace_id = dn_trace::parse_trace_id(value.trim()),
            _ => {}
        }
    }

    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    if body.len() != content_length {
        return Err(bad_data("body length mismatch"));
    }
    Ok(ClientResponse {
        status,
        content_type,
        body: String::from_utf8(body).map_err(|_| bad_data("non-UTF-8 body"))?,
        keep_alive,
        trace_id,
    })
}
