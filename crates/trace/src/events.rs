//! Structured single-line event logging.
//!
//! One process-wide logger shared by `dn-serve` and `dn-ingest`: an event
//! is a level, a snake_case event name, and typed fields. The default
//! rendering is a human `ts LEVEL event key=value` line; under
//! [`set_log_format_json`] every event becomes one JSON object per line
//! (`{"ts":...,"level":...,"event":...,...}`). The slow-query log
//! ([`slow_query`]) is *always* JSON — it exists to be machine-parsed.
//!
//! Everything goes to stderr, matching the pre-existing `eprintln!`
//! diagnostics it replaces. Timestamps are hand-rolled ISO-8601 UTC (no
//! chrono; the civil-from-days conversion is the standard Howard Hinnant
//! algorithm).

use std::sync::atomic::{AtomicBool, Ordering};

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Routine lifecycle events (startup, drain, catch-up).
    Info,
    /// Degraded-but-operating conditions (retries, slow queries).
    Warn,
    /// Failures (halt, fatal I/O).
    Error,
}

impl Level {
    /// The lowercase label used in both renderings.
    pub fn label(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A typed field value; borrows strings so call sites pay nothing to
/// build an event that formatting will not allocate for twice.
#[derive(Debug, Clone, Copy)]
pub enum EventValue<'a> {
    /// A string value (JSON-escaped when rendered as JSON).
    Str(&'a str),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rendered with enough precision to round-trip).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

static JSON_FORMAT: AtomicBool = AtomicBool::new(false);

/// Switch the event logger between human text (default) and single-line
/// JSON (`--log-format json`).
pub fn set_log_format_json(json: bool) {
    JSON_FORMAT.store(json, Ordering::Relaxed);
}

/// Whether the logger is in JSON mode.
pub fn log_format_json() -> bool {
    JSON_FORMAT.load(Ordering::Relaxed)
}

/// Emit one event in the configured format.
pub fn event(level: Level, name: &str, fields: &[(&str, EventValue<'_>)]) {
    if log_format_json() {
        eprintln!("{}", render_json(level, name, fields));
    } else {
        eprintln!("{}", render_text(level, name, fields));
    }
}

/// Emit one event as a JSON line regardless of the configured format
/// (machine-consumed logs: slow queries, ingest stats).
pub fn json_event(level: Level, name: &str, fields: &[(&str, EventValue<'_>)]) {
    eprintln!("{}", render_json(level, name, fields));
}

/// Emit the slow-query JSON line for one handled request. The caller
/// checks the [`crate::slow_query_us`] threshold; `trace_id` is present
/// only when the request was sampled (slow detection itself covers every
/// request).
pub fn slow_query(route: &str, status: u16, duration_us: u64, trace_id: Option<u64>) {
    let id_hex;
    let mut fields: Vec<(&str, EventValue<'_>)> = vec![
        ("route", EventValue::Str(route)),
        ("status", EventValue::U64(status as u64)),
        ("duration_us", EventValue::U64(duration_us)),
        ("threshold_us", EventValue::U64(crate::slow_query_us())),
    ];
    if let Some(id) = trace_id {
        id_hex = crate::format_trace_id(id);
        fields.push(("trace_id", EventValue::Str(&id_hex)));
    }
    json_event(Level::Warn, "slow_query", &fields);
}

/// Render an event as one JSON object (exposed for tests and for callers
/// that write to their own sink).
pub fn render_json(level: Level, name: &str, fields: &[(&str, EventValue<'_>)]) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"ts\":\"");
    out.push_str(&iso8601_utc_now());
    out.push_str("\",\"level\":\"");
    out.push_str(level.label());
    out.push_str("\",\"event\":\"");
    push_json_escaped(&mut out, name);
    out.push('"');
    for (key, value) in fields {
        out.push_str(",\"");
        push_json_escaped(&mut out, key);
        out.push_str("\":");
        match value {
            EventValue::Str(s) => {
                out.push('"');
                push_json_escaped(&mut out, s);
                out.push('"');
            }
            EventValue::U64(n) => out.push_str(&n.to_string()),
            EventValue::I64(n) => out.push_str(&n.to_string()),
            EventValue::F64(x) if x.is_finite() => out.push_str(&format!("{x}")),
            EventValue::F64(_) => out.push_str("null"),
            EventValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
    out
}

fn render_text(level: Level, name: &str, fields: &[(&str, EventValue<'_>)]) -> String {
    let mut out = format!("{} {} {}", iso8601_utc_now(), level.label(), name);
    for (key, value) in fields {
        out.push(' ');
        out.push_str(key);
        out.push('=');
        match value {
            EventValue::Str(s) if s.contains(' ') || s.is_empty() => {
                out.push('"');
                out.push_str(s);
                out.push('"');
            }
            EventValue::Str(s) => out.push_str(s),
            EventValue::U64(n) => out.push_str(&n.to_string()),
            EventValue::I64(n) => out.push_str(&n.to_string()),
            EventValue::F64(x) => out.push_str(&format!("{x}")),
            EventValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out
}

fn push_json_escaped(out: &mut String, raw: &str) {
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Now, as `YYYY-MM-DDTHH:MM:SS.mmmZ`.
fn iso8601_utc_now() -> String {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default();
    format_unix_ms(now.as_millis() as u64)
}

/// Format milliseconds-since-epoch as ISO-8601 UTC.
pub fn format_unix_ms(unix_ms: u64) -> String {
    let secs = unix_ms / 1000;
    let millis = unix_ms % 1000;
    let days = (secs / 86_400) as i64;
    let tod = secs % 86_400;
    let (year, month, day) = civil_from_days(days);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        tod / 3600,
        (tod % 3600) / 60,
        tod % 60,
    )
}

/// Days-since-epoch → (year, month, day), proleptic Gregorian.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let month = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    (if month <= 2 { year + 1 } else { year }, month, day)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(format_unix_ms(0), "1970-01-01T00:00:00.000Z");
        // 2000-02-29 (leap day) 12:34:56.789
        assert_eq!(format_unix_ms(951_827_696_789), "2000-02-29T12:34:56.789Z");
        // 2026-08-08 00:00:00
        assert_eq!(
            format_unix_ms(1_786_147_200_000),
            "2026-08-08T00:00:00.000Z"
        );
    }

    #[test]
    fn json_rendering_escapes_and_types_fields() {
        let line = render_json(
            Level::Warn,
            "test_event",
            &[
                ("path", EventValue::Str("a\"b\\c\nd")),
                ("count", EventValue::U64(7)),
                ("delta", EventValue::I64(-3)),
                ("rate", EventValue::F64(0.5)),
                ("nan", EventValue::F64(f64::NAN)),
                ("ok", EventValue::Bool(true)),
            ],
        );
        assert!(line.starts_with("{\"ts\":\""));
        assert!(line.contains("\"level\":\"warn\""));
        assert!(line.contains("\"event\":\"test_event\""));
        assert!(line.contains("\"path\":\"a\\\"b\\\\c\\nd\""));
        assert!(line.contains("\"count\":7"));
        assert!(line.contains("\"delta\":-3"));
        assert!(line.contains("\"rate\":0.5"));
        assert!(line.contains("\"nan\":null"));
        assert!(line.contains("\"ok\":true"));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'), "single line");
    }

    #[test]
    fn text_rendering_is_single_line_key_values() {
        let line = render_text(
            Level::Info,
            "server_started",
            &[
                ("addr", EventValue::Str("127.0.0.1:80")),
                ("mode", EventValue::Str("two words")),
                ("shards", EventValue::U64(2)),
            ],
        );
        assert!(line.contains("info server_started"));
        assert!(line.contains("addr=127.0.0.1:80"));
        assert!(line.contains("mode=\"two words\""));
        assert!(line.contains("shards=2"));
    }
}
