//! The completed-trace ring buffer.
//!
//! A process-wide, fixed-capacity ring of the most recent
//! [`FinishedTrace`]s. The write path is designed never to block a
//! request worker: claiming a slot is one lock-free `fetch_add` on the
//! cursor, and the per-slot store is a `try_lock` + swap — the slot
//! mutexes are uncontended in practice (a reader holds one only long
//! enough to clone an `Arc`), and if a slot *is* contended the trace is
//! counted in [`traces_dropped`] and discarded rather than waited for.
//! Unsampled requests never touch the ring at all.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// How many completed traces the ring retains before overwriting.
pub const RING_CAPACITY: usize = 256;

/// One closed span inside a finished trace.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span ID, unique within the trace; the root span is always `0`.
    pub id: u32,
    /// Parent span ID (`None` only for the root).
    pub parent: Option<u32>,
    /// The span/phase name (`route`, `coord_scatter`, ...).
    pub name: &'static str,
    /// Free-form detail label (`shard1`, a route path, ...); often empty.
    pub label: String,
    /// Start offset from the trace's start, microseconds.
    pub start_us: u64,
    /// End offset from the trace's start, microseconds.
    pub end_us: u64,
}

impl SpanRecord {
    /// The span's wall duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// A completed trace, as retained by the ring and served by the debug
/// endpoints.
#[derive(Debug, Clone)]
pub struct FinishedTrace {
    /// The 64-bit trace ID (hex-encoded as 16 chars on the wire).
    pub id: u64,
    /// The trace name (`http`, `ingest_poll`, `replica_sync`, ...).
    pub name: &'static str,
    /// Free-form label set by the edge (route + status for HTTP traces).
    pub label: String,
    /// Wall-clock start, milliseconds since the Unix epoch (for display
    /// only — span timings use the monotonic clock).
    pub started_unix_ms: u64,
    /// Root span duration, microseconds.
    pub duration_us: u64,
    /// Whether the ID was forwarded from another process rather than
    /// minted here.
    pub forwarded: bool,
    /// All closed spans, sorted by `(start_us, id)`; `spans[0]` is not
    /// necessarily the root (sort order), find it by `id == 0`.
    pub spans: Vec<SpanRecord>,
}

struct Ring {
    slots: Vec<Mutex<Option<Arc<FinishedTrace>>>>,
    /// Next slot to claim; total published = this counter (minus drops).
    cursor: AtomicU64,
    published: AtomicU64,
    dropped: AtomicU64,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring {
        slots: (0..RING_CAPACITY).map(|_| Mutex::new(None)).collect(),
        cursor: AtomicU64::new(0),
        published: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
    })
}

/// Publish one finished trace into the ring (called by the span layer
/// when a root guard drops).
pub(crate) fn publish(trace: FinishedTrace) {
    let ring = ring();
    let slot = ring.cursor.fetch_add(1, Ordering::Relaxed) as usize % RING_CAPACITY;
    match ring.slots[slot].try_lock() {
        Ok(mut held) => {
            *held = Some(Arc::new(trace));
            ring.published.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            // A reader holds this slot right now; dropping the trace is
            // cheaper than making the request path wait.
            ring.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The most recent traces, newest first, at most `limit`.
pub fn recent_traces(limit: usize) -> Vec<Arc<FinishedTrace>> {
    let ring = ring();
    let cursor = ring.cursor.load(Ordering::Relaxed);
    let mut out = Vec::new();
    for back in 1..=RING_CAPACITY as u64 {
        if out.len() >= limit || back > cursor {
            break;
        }
        let slot = ((cursor - back) % RING_CAPACITY as u64) as usize;
        if let Ok(held) = ring.slots[slot].try_lock() {
            if let Some(trace) = held.as_ref() {
                out.push(Arc::clone(trace));
            }
        }
    }
    out
}

/// Find the newest retained trace with the given ID. Forwarded IDs can
/// appear on several traces (each hop publishes its own tree under the
/// shared ID); the newest wins.
pub fn trace_by_id(id: u64) -> Option<Arc<FinishedTrace>> {
    recent_traces(RING_CAPACITY)
        .into_iter()
        .find(|t| t.id == id)
}

/// Total traces successfully published into the ring since startup.
pub fn traces_published() -> u64 {
    ring().published.load(Ordering::Relaxed)
}

/// Total traces discarded because their slot was contended at publish
/// time.
pub fn traces_dropped() -> u64 {
    ring().dropped.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::global_state_lock;

    fn trace(id: u64, duration_us: u64) -> FinishedTrace {
        FinishedTrace {
            id,
            name: "test",
            label: String::new(),
            started_unix_ms: 0,
            duration_us,
            forwarded: false,
            spans: vec![SpanRecord {
                id: 0,
                parent: None,
                name: "test",
                label: String::new(),
                start_us: 0,
                end_us: duration_us,
            }],
        }
    }

    #[test]
    fn publish_find_and_evict() {
        let _lock = global_state_lock();
        // IDs in a range no other test uses: the ring is process-global.
        publish(trace(0xAAAA_0001, 10));
        publish(trace(0xAAAA_0002, 20));
        assert_eq!(trace_by_id(0xAAAA_0001).expect("retained").duration_us, 10);
        assert_eq!(trace_by_id(0xAAAA_0002).expect("retained").duration_us, 20);
        assert!(trace_by_id(0xAAAA_FFFF).is_none());

        // Overflow the capacity; the early IDs rotate out.
        for i in 0..RING_CAPACITY as u64 {
            publish(trace(0xBBBB_0000 + i, i));
        }
        assert!(trace_by_id(0xAAAA_0001).is_none(), "evicted");
        assert!(trace_by_id(0xBBBB_0000 + RING_CAPACITY as u64 - 1).is_some());

        let recent = recent_traces(8);
        assert_eq!(recent.len(), 8);
        assert_eq!(
            recent[0].id,
            0xBBBB_0000 + RING_CAPACITY as u64 - 1,
            "newest first"
        );
        assert!(traces_published() >= RING_CAPACITY as u64 + 2);
    }

    #[test]
    fn duplicate_ids_resolve_to_the_newest() {
        let _lock = global_state_lock();
        publish(trace(0xCCCC_0001, 1));
        publish(trace(0xCCCC_0001, 2));
        assert_eq!(trace_by_id(0xCCCC_0001).expect("retained").duration_us, 2);
    }
}
