//! # `dn-trace` — zero-dependency structured tracing for the serving stack
//!
//! The serving pipeline spans five moving layers (HTTP workers →
//! coordinator scatter-gather → shard engines → `dn-pool` compute →
//! WAL/ingest/replica background threads); this crate gives every layer a
//! shared, std-only tracing vocabulary:
//!
//! * **Traces and spans** ([`start_trace`], [`span()`]) — a trace is minted
//!   at the HTTP edge (or at the top of a background cycle) and carries a
//!   64-bit ID; spans open and close on a thread-local stack with
//!   monotonic-clock timings, so nesting falls out of scoping. Work that
//!   hops threads (pool workers, scatter probes) is carried across
//!   explicitly with [`current`] + [`TraceContext::enter`].
//! * **Sampling gate** — tracing is off unless [`set_sample_every`] is
//!   non-zero, and the *disabled* fast path of every instrumentation
//!   point is a single relaxed atomic load. Requests arriving with a
//!   forwarded `X-Dn-Trace-Id` are always traced (while tracing is
//!   enabled at all), so a cross-process mutation — `dn-ingest` →
//!   primary, follower tail → primary — is one logical trace.
//! * **The ring** ([`recent_traces`], [`trace_by_id`]) — completed traces
//!   land in a fixed-capacity ring buffer whose write path is an atomic
//!   cursor claim plus an uncontended per-slot swap (a contended slot
//!   drops the trace rather than blocking the request path). The server
//!   exposes it as `GET /v1/debug/traces` and `/v1/debug/traces/{id}`.
//! * **Phase histograms** ([`phase_snapshot`]) — every span observation
//!   also lands in a per-[`Phase`] fixed-bucket histogram, rendered by
//!   the server as `dn_phase_duration_us{phase=...}`. Request-path phases
//!   fill at the sampling rate; background cycles (ingest, replica sync)
//!   trace themselves with the same gate.
//! * **Structured events** ([`event`], [`slow_query`]) — a single-line
//!   logger shared by `dn-serve` and `dn-ingest`, text by default and
//!   JSON under `--log-format json`; the slow-query log is always JSON
//!   (one machine-parsable line per request over the
//!   [`set_slow_query_us`] threshold).
//!
//! Everything here is plain `std`: no dependencies, no unsafe, no
//! wall-clock reads on the hot path.
//!
//! ## Example
//!
//! ```
//! dn_trace::set_sample_every(1);
//! {
//!     let trace = dn_trace::start_trace("example", None).expect("sampled");
//!     let id = trace.id();
//!     {
//!         let _route = dn_trace::span(dn_trace::Phase::Route);
//!         let _inner = dn_trace::span_labeled(dn_trace::Phase::ShardQuery, "shard0");
//!     }
//!     drop(trace);
//!     let finished = dn_trace::trace_by_id(id).expect("published");
//!     assert_eq!(finished.spans.len(), 3, "root + two nested spans");
//! }
//! dn_trace::set_sample_every(0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod events;
pub mod phase;
pub mod ring;
pub mod span;

pub use events::{
    event, format_unix_ms, json_event, log_format_json, render_json, set_log_format_json,
    slow_query, EventValue, Level,
};
pub use phase::{observe, phase_snapshot, Phase, PhaseSnapshot, PHASES, PHASE_BUCKET_BOUNDS_US};
pub use ring::{
    recent_traces, trace_by_id, traces_dropped, traces_published, FinishedTrace, SpanRecord,
    RING_CAPACITY,
};
pub use span::{
    current, current_trace_id, format_trace_id, parse_trace_id, span, span_labeled, start_trace,
    SpanGuard, TraceContext, TraceGuard,
};

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// `0` = tracing disabled; `N` = trace one request in `N` (1 = all).
static SAMPLE_EVERY: AtomicU32 = AtomicU32::new(0);

/// Requests at or above this duration emit a slow-query JSON line.
/// `u64::MAX` = disabled.
static SLOW_QUERY_US: AtomicU64 = AtomicU64::new(u64::MAX);

/// Set the sampling rate: `0` disables tracing entirely (the fast path of
/// every instrumentation point is then a single relaxed load), `1` traces
/// every request, `N` traces one request in `N`. Forwarded trace IDs are
/// always honored while the rate is non-zero.
pub fn set_sample_every(n: u32) {
    SAMPLE_EVERY.store(n, Ordering::Relaxed);
}

/// The current sampling rate (see [`set_sample_every`]).
pub fn sample_every() -> u32 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Whether tracing is enabled at all — one relaxed load.
pub fn enabled() -> bool {
    SAMPLE_EVERY.load(Ordering::Relaxed) != 0
}

/// Set the slow-query threshold in microseconds. Requests whose total
/// handling time meets or exceeds it emit one JSON line via
/// [`slow_query`]. `u64::MAX` (the default) disables the log; `0` logs
/// every request (useful in smoke tests).
pub fn set_slow_query_us(us: u64) {
    SLOW_QUERY_US.store(us, Ordering::Relaxed);
}

/// The current slow-query threshold (see [`set_slow_query_us`]).
pub fn slow_query_us() -> u64 {
    SLOW_QUERY_US.load(Ordering::Relaxed)
}

/// Tests across this crate's modules share process-global state (the
/// sampling gate, the ring); they serialize on this lock so libtest's
/// parallel runner cannot interleave them.
#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn global_state_lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::global_state_lock;

    #[test]
    fn sampling_gate_round_trips() {
        let _lock = global_state_lock();
        assert_eq!(sample_every(), 0, "tracing is disabled between tests");
        assert!(!enabled());
        set_sample_every(16);
        assert_eq!(sample_every(), 16);
        assert!(enabled());
        set_sample_every(0);
        assert!(!enabled());
    }

    #[test]
    fn slow_query_threshold_round_trips() {
        assert_eq!(slow_query_us(), u64::MAX, "slow-query log starts off");
        set_slow_query_us(2_500);
        assert_eq!(slow_query_us(), 2_500);
        set_slow_query_us(u64::MAX);
    }
}
