//! Per-phase duration histograms.
//!
//! Every closed span also lands one observation in a fixed-bucket
//! histogram keyed by its [`Phase`], giving `/metrics` an aggregate
//! per-phase latency view (`dn_phase_duration_us{phase=...}`) that stays
//! useful even when individual traces have rotated out of the ring.
//! Recording is a few relaxed atomic increments; the histograms fill at
//! the sampling rate (a phase observed under 1-in-16 sampling represents
//! roughly 16× its count of real occurrences).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Histogram bucket upper bounds, in microseconds; the implicit last
/// bucket is `+Inf`. Matches the server's HTTP latency buckets so the two
/// families line up in dashboards.
pub const PHASE_BUCKET_BOUNDS_US: [u64; 10] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000,
];

/// The fixed vocabulary of instrumented phases across the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Router dispatch: method/path match through handler return.
    Route,
    /// Coordinator mutation commit: routing deltas + per-shard applies.
    CoordCommit,
    /// Coordinator read fan-out over the shard snapshots.
    CoordScatter,
    /// Coordinator k-way merge of per-shard ranked results.
    CoordMerge,
    /// One shard engine applying a delta batch (WAL append, lake apply,
    /// graph delta, ranking warm).
    ShardApply,
    /// One shard engine extracting + swapping in a published snapshot.
    ShardPublish,
    /// One shard snapshot answering a read probe.
    ShardQuery,
    /// `dn-pool` batch: exact/approx BC canonical chunk accumulation.
    PoolBcChunks,
    /// `dn-pool` batch: per-section snapshot encode.
    PoolSnapshotEncode,
    /// `dn-pool` batch: per-section snapshot decode.
    PoolSnapshotDecode,
    /// `dn-pool` batch: per-shard WAL replay during recovery.
    PoolWalReplay,
    /// One measure computed over the graph (BC, LCC, ...).
    MeasureCompute,
    /// Ingest cycle: scanning + fingerprinting the drop folder.
    IngestScan,
    /// Ingest cycle: diffing file generations into minimal deltas.
    IngestDiff,
    /// Ingest cycle: delivering a delta batch to the sink.
    IngestDeliver,
    /// Ingest cycle: committing the exactly-once resume journal.
    IngestJournal,
    /// One follower tail-and-verify pass against the primary.
    ReplicaSync,
}

/// All phases, in exposition order.
pub const PHASES: [Phase; 17] = [
    Phase::Route,
    Phase::CoordCommit,
    Phase::CoordScatter,
    Phase::CoordMerge,
    Phase::ShardApply,
    Phase::ShardPublish,
    Phase::ShardQuery,
    Phase::PoolBcChunks,
    Phase::PoolSnapshotEncode,
    Phase::PoolSnapshotDecode,
    Phase::PoolWalReplay,
    Phase::MeasureCompute,
    Phase::IngestScan,
    Phase::IngestDiff,
    Phase::IngestDeliver,
    Phase::IngestJournal,
    Phase::ReplicaSync,
];

impl Phase {
    /// The span name / metric label for this phase.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Route => "route",
            Phase::CoordCommit => "coord_commit",
            Phase::CoordScatter => "coord_scatter",
            Phase::CoordMerge => "coord_merge",
            Phase::ShardApply => "shard_apply",
            Phase::ShardPublish => "shard_publish",
            Phase::ShardQuery => "shard_query",
            Phase::PoolBcChunks => "pool_bc_chunks",
            Phase::PoolSnapshotEncode => "pool_snapshot_encode",
            Phase::PoolSnapshotDecode => "pool_snapshot_decode",
            Phase::PoolWalReplay => "pool_wal_replay",
            Phase::MeasureCompute => "measure_compute",
            Phase::IngestScan => "ingest_scan",
            Phase::IngestDiff => "ingest_diff",
            Phase::IngestDeliver => "ingest_deliver",
            Phase::IngestJournal => "ingest_journal",
            Phase::ReplicaSync => "replica_sync",
        }
    }

    fn index(self) -> usize {
        PHASES.iter().position(|&p| p == self).expect("known phase")
    }
}

struct PhaseHist {
    /// Per-bucket counts (stored per-bucket, accumulated at render time)
    /// + the `+Inf` bucket.
    buckets: [AtomicU64; PHASE_BUCKET_BOUNDS_US.len() + 1],
    sum_us: AtomicU64,
}

impl PhaseHist {
    fn new() -> PhaseHist {
        PhaseHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }
}

fn hists() -> &'static [PhaseHist] {
    static HISTS: OnceLock<Vec<PhaseHist>> = OnceLock::new();
    HISTS.get_or_init(|| PHASES.iter().map(|_| PhaseHist::new()).collect())
}

/// Record one phase observation. Called by the span machinery on close;
/// callable directly for timings measured without an active trace.
pub fn observe(phase: Phase, duration_us: u64) {
    let hist = &hists()[phase.index()];
    let bucket = PHASE_BUCKET_BOUNDS_US
        .iter()
        .position(|&bound| duration_us <= bound)
        .unwrap_or(PHASE_BUCKET_BOUNDS_US.len());
    hist.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    hist.sum_us.fetch_add(duration_us, Ordering::Relaxed);
}

/// Point-in-time copy of one phase's histogram.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSnapshot {
    /// The phase label (`dn_phase_duration_us{phase="<this>"}`).
    pub phase: &'static str,
    /// Per-bucket (non-cumulative) counts; the last entry is `+Inf`.
    pub buckets: [u64; PHASE_BUCKET_BOUNDS_US.len() + 1],
    /// Sum of observed durations, microseconds.
    pub sum_us: u64,
    /// Total observations.
    pub count: u64,
}

/// Sample every phase histogram at once, in [`PHASES`] order. Phases with
/// zero observations are included (the renderer decides what to omit).
pub fn phase_snapshot() -> Vec<PhaseSnapshot> {
    let hists = hists();
    PHASES
        .iter()
        .enumerate()
        .map(|(i, phase)| {
            let buckets: [u64; PHASE_BUCKET_BOUNDS_US.len() + 1] =
                std::array::from_fn(|b| hists[i].buckets[b].load(Ordering::Relaxed));
            PhaseSnapshot {
                phase: phase.label(),
                buckets,
                sum_us: hists[i].sum_us.load(Ordering::Relaxed),
                count: buckets.iter().sum(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_are_unique() {
        let labels: std::collections::HashSet<&str> = PHASES.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), PHASES.len());
    }

    #[test]
    fn observations_land_in_the_right_bucket() {
        observe(Phase::PoolWalReplay, 40); // <= 50
        observe(Phase::PoolWalReplay, 40);
        observe(Phase::PoolWalReplay, 1_000_000); // +Inf
        let snap = phase_snapshot()
            .into_iter()
            .find(|s| s.phase == "pool_wal_replay")
            .expect("known phase");
        assert!(snap.buckets[0] >= 2);
        assert!(snap.buckets[PHASE_BUCKET_BOUNDS_US.len()] >= 1);
        assert!(snap.count >= 3);
        assert!(snap.sum_us >= 1_000_080);
    }
}
