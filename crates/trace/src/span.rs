//! Traces, spans, and the thread-local span stack.
//!
//! A [`TraceGuard`] (from [`start_trace`]) owns one trace: it installs
//! the trace on the current thread, opens the root span, and on drop
//! closes the root, sorts the collected spans, and publishes the
//! [`FinishedTrace`] into the ring. [`span`] opens a child span under
//! whatever is on the current thread's stack — a no-op costing one
//! relaxed atomic load when tracing is disabled, and one thread-local
//! check when no trace is active on this thread.
//!
//! Work that crosses threads (scatter probes, pool workers) captures a
//! [`TraceContext`] with [`current`] *before* handing off and calls
//! [`TraceContext::enter`] inside the worker: that installs the trace on
//! the worker's thread for the guard's lifetime, so further [`span`]
//! calls in the worker nest correctly under the remote parent.
//!
//! Timings are monotonic ([`Instant`]) offsets from the trace start; the
//! only wall-clock read is one `SystemTime::now` per *sampled* trace, for
//! the display timestamp.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::phase::{self, Phase};
use crate::ring::{self, FinishedTrace, SpanRecord};

/// The collection state of one in-flight trace, shared by every thread
/// that records spans into it.
struct ActiveTrace {
    id: u64,
    name: &'static str,
    t0: Instant,
    started_unix_ms: u64,
    forwarded: bool,
    label: Mutex<String>,
    spans: Mutex<Vec<SpanRecord>>,
    next_span: AtomicU32,
}

impl ActiveTrace {
    fn elapsed_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }
}

/// This thread's position inside a trace: the trace plus the stack of
/// currently open span IDs (innermost last).
struct LocalCtx {
    trace: Arc<ActiveTrace>,
    stack: Vec<u32>,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalCtx>> = const { RefCell::new(None) };
}

/// Mint a fresh, non-zero, process-unique 64-bit trace ID. Seeded once
/// from the wall clock + PID, then stepped through SplitMix64 — no
/// coordination, no RNG dependency.
fn mint_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap_or_default();
        (now.as_nanos() as u64) ^ ((std::process::id() as u64) << 32)
    });
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let id = splitmix64(seed.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    if id == 0 {
        1
    } else {
        id
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Render a trace ID as its canonical 16-hex-char wire form (the
/// `X-Dn-Trace-Id` header value).
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a wire-form trace ID: 1–16 hex chars, non-zero. Anything else
/// is rejected (the edge then mints a fresh ID instead).
pub fn parse_trace_id(raw: &str) -> Option<u64> {
    if raw.is_empty() || raw.len() > 16 || !raw.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(raw, 16).ok().filter(|&id| id != 0)
}

fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Start a trace on this thread, subject to the sampling gate.
///
/// Returns `None` when tracing is disabled (one relaxed load) or this
/// request lost the 1-in-N sampling draw. A `forwarded` ID (from an
/// `X-Dn-Trace-Id` header) bypasses the draw — while tracing is enabled,
/// forwarded requests are always traced under the forwarded ID, which is
/// what stitches cross-process work into one logical trace.
pub fn start_trace(name: &'static str, forwarded: Option<u64>) -> Option<TraceGuard> {
    let every = crate::sample_every();
    if every == 0 {
        return None;
    }
    if forwarded.is_none() {
        static DRAW: AtomicU32 = AtomicU32::new(0);
        if DRAW.fetch_add(1, Ordering::Relaxed) % every != 0 {
            return None;
        }
    }
    let trace = Arc::new(ActiveTrace {
        id: forwarded.unwrap_or_else(mint_id),
        name,
        t0: Instant::now(),
        started_unix_ms: unix_ms_now(),
        forwarded: forwarded.is_some(),
        label: Mutex::new(String::new()),
        spans: Mutex::new(Vec::with_capacity(16)),
        next_span: AtomicU32::new(1), // the root consumed ID 0
    });
    let saved = LOCAL.with(|local| {
        local.borrow_mut().replace(LocalCtx {
            trace: Arc::clone(&trace),
            stack: vec![0],
        })
    });
    Some(TraceGuard { trace, saved })
}

/// Owns one in-flight trace; dropping it closes the root span and
/// publishes the finished trace into the ring.
pub struct TraceGuard {
    trace: Arc<ActiveTrace>,
    /// Whatever trace was active on this thread before (usually none).
    saved: Option<LocalCtx>,
}

impl TraceGuard {
    /// The trace's 64-bit ID.
    pub fn id(&self) -> u64 {
        self.trace.id
    }

    /// The trace ID in wire form (16 hex chars).
    pub fn id_hex(&self) -> String {
        format_trace_id(self.trace.id)
    }

    /// Set the trace's display label (route + status for HTTP traces).
    /// The last call wins.
    pub fn set_label(&self, label: impl Into<String>) {
        *self.trace.label.lock().unwrap_or_else(|p| p.into_inner()) = label.into();
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let end_us = self.trace.elapsed_us();
        LOCAL.with(|local| {
            *local.borrow_mut() = self.saved.take();
        });
        let mut spans =
            std::mem::take(&mut *self.trace.spans.lock().unwrap_or_else(|p| p.into_inner()));
        spans.push(SpanRecord {
            id: 0,
            parent: None,
            name: self.trace.name,
            label: String::new(),
            start_us: 0,
            end_us,
        });
        spans.sort_by_key(|s| (s.start_us, s.id));
        ring::publish(FinishedTrace {
            id: self.trace.id,
            name: self.trace.name,
            label: self
                .trace
                .label
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone(),
            started_unix_ms: self.trace.started_unix_ms,
            duration_us: end_us,
            forwarded: self.trace.forwarded,
            spans,
        });
    }
}

/// The state one open span carries until it closes.
struct OpenSpan {
    trace: Arc<ActiveTrace>,
    id: u32,
    parent: Option<u32>,
    phase: Phase,
    label: String,
    start_us: u64,
    /// `Some` when this guard installed the trace on a fresh thread
    /// ([`TraceContext::enter`]); holds the context to restore on drop.
    restore: Option<Option<LocalCtx>>,
}

/// Closes its span on drop. A disabled or inactive instrumentation point
/// yields an inert guard (no allocation, no atomics beyond the gate).
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl SpanGuard {
    const NOOP: SpanGuard = SpanGuard { open: None };

    /// An inert guard that records nothing — for call sites that check
    /// [`TraceContext::is_active`] themselves to skip label formatting.
    pub fn noop() -> SpanGuard {
        SpanGuard::NOOP
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.open.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut open) = self.open.take() else {
            return;
        };
        let end_us = open.trace.elapsed_us();
        LOCAL.with(|local| {
            let mut slot = local.borrow_mut();
            if let Some(ctx) = slot.as_mut() {
                if ctx.stack.last() == Some(&open.id) {
                    ctx.stack.pop();
                } else {
                    // Out-of-order drop (shouldn't happen with scoped
                    // guards); scrub rather than corrupt the stack.
                    ctx.stack.retain(|&id| id != open.id);
                }
            }
            if let Some(previous) = open.restore.take() {
                *slot = previous;
            }
        });
        phase::observe(open.phase, end_us.saturating_sub(open.start_us));
        open.trace
            .spans
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(SpanRecord {
                id: open.id,
                parent: open.parent,
                name: open.phase.label(),
                label: open.label,
                start_us: open.start_us,
                end_us,
            });
    }
}

/// Open an unlabeled span under the current thread's innermost open span.
pub fn span(phase: Phase) -> SpanGuard {
    span_labeled(phase, "")
}

/// Open a span with a detail label. The label is only copied when the
/// span actually records.
pub fn span_labeled(phase: Phase, label: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::NOOP; // disabled path: one relaxed load
    }
    LOCAL.with(|local| {
        let mut slot = local.borrow_mut();
        let Some(ctx) = slot.as_mut() else {
            return SpanGuard::NOOP;
        };
        let id = ctx.trace.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = ctx.stack.last().copied();
        let start_us = ctx.trace.elapsed_us();
        ctx.stack.push(id);
        SpanGuard {
            open: Some(OpenSpan {
                trace: Arc::clone(&ctx.trace),
                id,
                parent,
                phase,
                label: label.to_owned(),
                start_us,
                restore: None,
            }),
        }
    })
}

/// A cheap, cloneable capture of "the trace and parent span active on
/// this thread right now", for carrying a trace across a thread hop.
/// Inactive when tracing is off or no trace is running — `enter` is then
/// a no-op, so call sites never branch themselves.
#[derive(Clone)]
pub struct TraceContext {
    inner: Option<(Arc<ActiveTrace>, u32)>,
}

impl TraceContext {
    /// A context that records nothing.
    pub fn inactive() -> TraceContext {
        TraceContext { inner: None }
    }

    /// Whether entering this context will record spans.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace ID this context belongs to, if active.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|(trace, _)| trace.id)
    }

    /// Install the trace on the current thread and open a span under the
    /// captured parent. Dropping the guard closes the span and restores
    /// the thread's previous trace state — use one `enter` per unit of
    /// handed-off work, with further [`span`] calls nesting inside it.
    pub fn enter(&self, phase: Phase, label: &str) -> SpanGuard {
        let Some((trace, parent)) = &self.inner else {
            return SpanGuard::NOOP;
        };
        let id = trace.next_span.fetch_add(1, Ordering::Relaxed);
        let start_us = trace.elapsed_us();
        let previous = LOCAL.with(|local| {
            local.borrow_mut().replace(LocalCtx {
                trace: Arc::clone(trace),
                stack: vec![id],
            })
        });
        SpanGuard {
            open: Some(OpenSpan {
                trace: Arc::clone(trace),
                id,
                parent: Some(*parent),
                phase,
                label: label.to_owned(),
                start_us,
                restore: Some(previous),
            }),
        }
    }
}

/// Capture the current thread's trace position (see [`TraceContext`]).
/// One relaxed load when tracing is disabled.
pub fn current() -> TraceContext {
    if !crate::enabled() {
        return TraceContext::inactive();
    }
    LOCAL.with(|local| TraceContext {
        inner: local.borrow().as_ref().map(|ctx| {
            (
                Arc::clone(&ctx.trace),
                ctx.stack.last().copied().unwrap_or(0),
            )
        }),
    })
}

/// The ID of the trace active on this thread, if any — what outbound
/// HTTP calls put in their `X-Dn-Trace-Id` header.
pub fn current_trace_id() -> Option<u64> {
    if !crate::enabled() {
        return None;
    }
    LOCAL.with(|local| local.borrow().as_ref().map(|ctx| ctx.trace.id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::global_state_lock;

    #[test]
    fn id_wire_format_round_trips() {
        assert_eq!(format_trace_id(0x1234), "0000000000001234");
        assert_eq!(parse_trace_id("0000000000001234"), Some(0x1234));
        assert_eq!(parse_trace_id("abc"), Some(0xabc));
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("0"), None, "zero is reserved");
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_trace_id("00000000000000000"), None, "too long");
    }

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = mint_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate minted ID");
        }
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _lock = global_state_lock();
        crate::set_sample_every(0);
        assert!(start_trace("test", None).is_none());
        assert!(!span(Phase::Route).is_recording());
        assert!(!current().is_active());
        assert_eq!(current_trace_id(), None);
    }

    #[test]
    fn spans_nest_and_publish() {
        let _lock = global_state_lock();
        crate::set_sample_every(1);
        let trace = start_trace("test_nest", None).expect("sampled at 1");
        let id = trace.id();
        trace.set_label("unit");
        assert_eq!(current_trace_id(), Some(id));
        {
            let outer = span_labeled(Phase::CoordScatter, "outer");
            assert!(outer.is_recording());
            let _inner = span(Phase::ShardQuery);
        }
        drop(trace);
        crate::set_sample_every(0);

        let finished = crate::trace_by_id(id).expect("published");
        assert_eq!(finished.name, "test_nest");
        assert_eq!(finished.label, "unit");
        assert!(!finished.forwarded);
        assert_eq!(finished.spans.len(), 3);
        let root = finished.spans.iter().find(|s| s.id == 0).expect("root");
        assert_eq!(root.parent, None);
        let outer = finished
            .spans
            .iter()
            .find(|s| s.name == "coord_scatter")
            .expect("outer");
        assert_eq!(outer.parent, Some(0));
        assert_eq!(outer.label, "outer");
        let inner = finished
            .spans
            .iter()
            .find(|s| s.name == "shard_query")
            .expect("inner");
        assert_eq!(inner.parent, Some(outer.id));
        // Monotone containment: children inside parents, all inside root.
        for child in [outer, inner] {
            assert!(child.start_us <= child.end_us);
            assert!(child.end_us <= root.end_us);
        }
        assert!(inner.start_us >= outer.start_us && inner.end_us <= outer.end_us);
    }

    #[test]
    fn sampling_draw_traces_one_in_n() {
        let _lock = global_state_lock();
        crate::set_sample_every(4);
        let sampled = (0..40)
            .filter(|_| start_trace("test_draw", None).is_some())
            .count();
        crate::set_sample_every(0);
        assert_eq!(sampled, 10, "exactly 1 in 4");
    }

    #[test]
    fn forwarded_ids_bypass_the_draw() {
        let _lock = global_state_lock();
        crate::set_sample_every(1_000_000);
        for _ in 0..3 {
            let trace = start_trace("test_fwd", Some(0xF0F0)).expect("forwarded always traced");
            assert_eq!(trace.id(), 0xF0F0);
        }
        crate::set_sample_every(0);
        let finished = crate::trace_by_id(0xF0F0).expect("published");
        assert!(finished.forwarded);
    }

    #[test]
    fn context_carries_spans_across_threads() {
        let _lock = global_state_lock();
        crate::set_sample_every(1);
        let trace = start_trace("test_cross", None).expect("sampled at 1");
        let id = trace.id();
        let parent_span = span_labeled(Phase::CoordScatter, "batch");
        let ctx = current();
        assert_eq!(ctx.id(), Some(id));
        std::thread::scope(|scope| {
            for shard in 0..2 {
                let ctx = ctx.clone();
                scope.spawn(move || {
                    let _entered = ctx.enter(Phase::ShardQuery, &format!("shard{shard}"));
                    let _nested = span(Phase::MeasureCompute);
                    assert_eq!(current_trace_id(), Some(id), "installed on the worker");
                });
            }
        });
        drop(parent_span);
        drop(trace);
        crate::set_sample_every(0);

        let finished = crate::trace_by_id(id).expect("published");
        // root + batch + 2×(enter + nested) = 6 spans.
        assert_eq!(finished.spans.len(), 6);
        let batch = finished
            .spans
            .iter()
            .find(|s| s.label == "batch")
            .expect("batch span");
        let probes: Vec<_> = finished
            .spans
            .iter()
            .filter(|s| s.name == "shard_query")
            .collect();
        assert_eq!(probes.len(), 2);
        for probe in &probes {
            assert_eq!(probe.parent, Some(batch.id), "probes hang off the batch");
            assert!(probe.start_us >= batch.start_us && probe.end_us <= batch.end_us);
            let nested = finished
                .spans
                .iter()
                .find(|s| s.parent == Some(probe.id))
                .expect("nested span recorded on the worker");
            assert_eq!(nested.name, "measure_compute");
        }
    }

    #[test]
    fn enter_restores_the_previous_thread_state() {
        let _lock = global_state_lock();
        crate::set_sample_every(1);
        let trace_a = start_trace("test_restore_a", None).expect("sampled");
        let ctx_a = current();
        // Simulate a same-thread handoff (inline pool path): entering a
        // context replaces the thread state and drop restores it.
        {
            let _entered = ctx_a.enter(Phase::PoolBcChunks, "inline");
            assert_eq!(current_trace_id(), Some(trace_a.id()));
        }
        assert_eq!(current_trace_id(), Some(trace_a.id()));
        drop(trace_a);
        assert_eq!(current_trace_id(), None, "root drop clears the thread");
        crate::set_sample_every(0);
    }
}
