//! # `dn-pool` — a hand-rolled work-stealing scheduler
//!
//! The DomainNet compute core is dominated by embarrassingly parallel loops:
//! one Brandes accumulation per source node, one CRC + decode per snapshot
//! section, one recovery per shard. This crate schedules those loops across
//! threads with two properties the rest of the workspace depends on:
//!
//! 1. **Deterministic indexed reduction.** Every task carries its index, and
//!    [`Pool::run`] returns results **in index order** no matter which worker
//!    ran which task or in what order they finished. Callers fold the result
//!    vector left-to-right, so floating-point reductions are bit-identical
//!    across thread counts and across runs — the property the `to_bits()`
//!    golden gates and the replication digest exchange rely on.
//! 2. **Work stealing.** Task indices are dealt to per-worker deques in
//!    contiguous blocks (cache-friendly starts), with the remainder parked on
//!    a shared injector. A worker drains its own deque from the front, then
//!    the injector, then steals from the *back* of sibling deques — so a
//!    straggler block (one giant connected component, say) ends up shared
//!    instead of serializing the tail, which is exactly the failure mode of
//!    fixed `len / threads` chunking.
//!
//! The scheduler is std-only (`std::thread::scope` + `Mutex<VecDeque>`), per
//! the workspace's zero-dependency vendor policy, and contains no `unsafe`.
//! Tasks never spawn tasks, which is what makes the termination argument
//! trivial: once every deque and the injector are empty, the remaining tasks
//! are all in flight on some worker, so an idle worker can simply exit —
//! there is no state in which a worker waits on another, hence no deadlock,
//! even when a sibling panics (see below).
//!
//! **Panics** in a task propagate to the caller: every worker is joined, the
//! first panic payload observed is re-raised via
//! [`std::panic::resume_unwind`], and deque locks poisoned by a panicking
//! worker are recovered with [`std::sync::PoisonError::into_inner`] so the
//! surviving workers drain the queue rather than deadlocking or unwinding
//! with a confusing secondary panic.
//!
//! ```
//! use dn_pool::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.run(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};

/// A fixed-width scheduler: `threads` workers per [`Pool::run`] call.
///
/// The pool is a *configuration*, not a set of live threads: each `run`
/// spawns scoped workers and joins them before returning, so a `Pool` is
/// freely shareable (`Copy`) and holding one costs nothing. A width of 0 or
/// 1 degrades to inline sequential execution — same task decomposition, same
/// results, no threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

/// Lock a mutex, recovering from poisoning: a panicking worker must not
/// wedge its siblings, and the payload is re-raised at join time anyway.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Pool {
    /// A pool `threads` wide. Zero is clamped to one (inline execution).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool as wide as the machine (`std::thread::available_parallelism`,
    /// falling back to 1 when the runtime cannot tell).
    pub fn machine_wide() -> Pool {
        Pool::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `task` for every index in `0..len` and return the results **in
    /// index order**, regardless of which worker ran which index or the
    /// order they finished in.
    ///
    /// # Panics
    /// Re-raises the first panic payload observed among the tasks after all
    /// workers have been joined (no task is left running).
    pub fn run<T, F>(&self, len: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(len);
        if workers <= 1 {
            return (0..len).map(task).collect();
        }

        // Deal contiguous blocks to the workers, remainder to the injector.
        let block = len / workers;
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w * block..(w + 1) * block).collect()))
            .collect();
        let injector: Mutex<VecDeque<usize>> = Mutex::new((workers * block..len).collect());

        let mut slots: Vec<Option<T>> = Vec::with_capacity(len);
        slots.resize_with(len, || None);
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let deques = &deques;
                    let injector = &injector;
                    let task = &task;
                    scope.spawn(move || {
                        let mut produced: Vec<(usize, T)> = Vec::new();
                        while let Some(index) = next_index(me, deques, injector) {
                            produced.push((index, task(index)));
                        }
                        produced
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(produced) => {
                        for (index, value) in produced {
                            slots[index] = Some(value);
                        }
                    }
                    Err(payload) => {
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
            }
        });

        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index was claimed exactly once"))
            .collect()
    }

    /// Run `task` once per element of `items` with **exclusive mutable
    /// access** to that element, returning the per-element results in index
    /// order. Each element is wrapped in its own `Mutex` for the duration of
    /// the call; since every index is claimed exactly once, the locks are
    /// uncontended — they exist only to hand `&mut` across threads without
    /// `unsafe`.
    ///
    /// # Panics
    /// As [`Pool::run`].
    pub fn run_over_mut<T, R, F>(&self, items: &mut [T], task: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        if self.threads.min(items.len()) <= 1 {
            return items
                .iter_mut()
                .enumerate()
                .map(|(i, item)| task(i, item))
                .collect();
        }
        let cells: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
        self.run(cells.len(), |i| {
            let mut guard = lock_unpoisoned(&cells[i]);
            task(i, &mut guard)
        })
    }
}

/// Claim the next task index for worker `me`: own deque front, then the
/// injector, then steal from the back of the other workers' deques (lowest
/// victim index first, for determinism of the *schedule shape* under test
/// seeds — results are index-ordered regardless). `None` means every queue
/// is empty; since tasks never spawn tasks, whatever remains is already in
/// flight and this worker is done.
fn next_index(
    me: usize,
    deques: &[Mutex<VecDeque<usize>>],
    injector: &Mutex<VecDeque<usize>>,
) -> Option<usize> {
    if let Some(index) = lock_unpoisoned(&deques[me]).pop_front() {
        return Some(index);
    }
    if let Some(index) = lock_unpoisoned(injector).pop_front() {
        return Some(index);
    }
    for (victim, deque) in deques.iter().enumerate() {
        if victim == me {
            continue;
        }
        if let Some(index) = lock_unpoisoned(deque).pop_back() {
            return Some(index);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        let pool = Pool::new(4);
        let out = pool.run(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks_and_zero_threads_are_fine() {
        assert!(Pool::new(4).run(0, |i| i).is_empty());
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::new(0).run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn fewer_tasks_than_workers() {
        let pool = Pool::new(8);
        assert_eq!(pool.run(3, |i| i + 10), vec![10, 11, 12]);
        assert_eq!(pool.run(1, |i| i), vec![0]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = Pool::new(4);
        let counters: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(1000, |i| counters[i].fetch_add(1, Ordering::SeqCst));
        for (i, counter) in counters.iter().enumerate() {
            assert_eq!(counter.load(Ordering::SeqCst), 1, "task {i}");
        }
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let pool = Pool::new(4);
        let ran = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(64, |i| {
                ran.fetch_add(1, Ordering::SeqCst);
                assert!(i != 17, "task 17 explodes");
                i
            })
        }));
        let payload = result.expect_err("the task panic must reach the caller");
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("task 17 explodes"), "got: {message}");
        assert!(ran.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn run_over_mut_gives_each_element_exclusive_access() {
        let pool = Pool::new(4);
        let mut items: Vec<u64> = (0..257).collect();
        let returns = pool.run_over_mut(&mut items, |i, item| {
            *item += 1000;
            i as u64
        });
        assert_eq!(returns, (0..257).collect::<Vec<u64>>());
        for (i, item) in items.iter().enumerate() {
            assert_eq!(*item, i as u64 + 1000);
        }
    }

    /// The determinism contract under adversarial schedules: random task
    /// durations (seeded, so the test is reproducible) must not change the
    /// result of a left-fold over the returned vector, for any width.
    #[test]
    fn seeded_stress_indexed_reduction_is_deterministic() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD0_5EED);
        let inputs: Vec<f64> = (0..500).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let spins: Vec<u32> = (0..500).map(|_| rng.gen_range(0..2000)).collect();

        let reduce = |threads: usize| -> f64 {
            let pool = Pool::new(threads);
            let parts = pool.run(inputs.len(), |i| {
                // Busy-wait a seeded, index-dependent amount so completion
                // order varies wildly between workers and runs.
                let mut x = inputs[i];
                for _ in 0..spins[i] {
                    x = x.sin() + inputs[i];
                }
                x
            });
            parts.iter().fold(0.0, |acc, &p| acc + p)
        };

        let reference = reduce(1);
        for threads in [2, 4, 8] {
            for _ in 0..3 {
                assert_eq!(
                    reduce(threads).to_bits(),
                    reference.to_bits(),
                    "threads={threads}"
                );
            }
        }
    }
}
