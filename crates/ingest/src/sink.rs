//! Delivery sinks: where synthesized delta batches go.
//!
//! The ingester is sink-agnostic. [`CoordinatorSink`] delivers in-process to
//! a shared [`Coordinator`] writer (the `dn-serve --ingest-dir` path);
//! dn-server provides an `HttpSink` that POSTs to a remote primary's
//! `/v1/mutations` (the standalone `dn-ingest` CLI path). Tests wrap sinks
//! to inject crashes and duplicate deliveries.

use std::fmt;
use std::sync::{Arc, Mutex};

use dn_service::{Coordinator, ServiceError};
use lake::LakeDelta;

/// How a delivery failed. The distinction drives the exactly-once protocol:
/// `Transient` failures are retried with backoff (the batch may or may not
/// have been applied — the journal remembers it as pending), while
/// `Rejected` means the engine evaluated the batch and refused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkError {
    /// Delivery may not have reached (or may not have been acknowledged by)
    /// the engine: connection failure, timeout, 5xx, lock poisoning.
    Transient(String),
    /// The engine evaluated the batch and refused it (invalid delta, 4xx).
    Rejected(String),
}

impl fmt::Display for SinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinkError::Transient(m) => write!(f, "transient delivery failure: {m}"),
            SinkError::Rejected(m) => write!(f, "batch rejected: {m}"),
        }
    }
}

/// A destination for delta batches. `seq` is the journal sequence number of
/// the batch — stable across redeliveries of the same batch, so sinks that
/// can deduplicate have the key to do it with.
pub trait DeltaSink {
    fn deliver(&mut self, seq: u64, deltas: &[LakeDelta]) -> Result<(), SinkError>;

    /// Whether a `Transient` failure from this sink guarantees the batch was
    /// NOT applied. In-process sinks return `true` (a failed commit resyncs
    /// the engine), which lets the ingester treat a later `Rejected` on the
    /// same fresh batch as a genuine rejection instead of evidence of a
    /// prior application. Network sinks must keep the default `false`: a
    /// timed-out POST may have committed server-side.
    fn transient_means_unapplied(&self) -> bool {
        false
    }
}

/// In-process sink: stage → commit → publish on a shared [`Coordinator`].
///
/// Holds an `Arc` clone of the coordinator that dn-serve also hands to the
/// HTTP layer, so ingested batches are immediately visible to readers via
/// the published epoch.
pub struct CoordinatorSink {
    coordinator: Arc<Mutex<Coordinator>>,
}

impl CoordinatorSink {
    pub fn new(coordinator: Arc<Mutex<Coordinator>>) -> Self {
        Self { coordinator }
    }
}

impl DeltaSink for CoordinatorSink {
    fn transient_means_unapplied(&self) -> bool {
        true
    }

    fn deliver(&mut self, _seq: u64, deltas: &[LakeDelta]) -> Result<(), SinkError> {
        let mut guard = self
            .coordinator
            .lock()
            .map_err(|_| SinkError::Transient("coordinator lock poisoned".to_string()))?;
        for delta in deltas {
            guard.stage(delta.clone());
        }
        match guard.commit() {
            Ok(_) => {
                guard.publish();
                Ok(())
            }
            Err(ServiceError::Lake(e)) => Err(SinkError::Rejected(e.to_string())),
            Err(other) => Err(SinkError::Transient(other.to_string())),
        }
    }
}
