//! The checksummed ingest journal: the ingester's exactly-once ledger.
//!
//! The journal records, per drop-folder file, the fingerprint of the last
//! generation whose deltas were *applied* by the sink, plus the sequence
//! number of the last applied batch and (transiently) the one pending batch
//! in flight. Every save is atomic — serialize, CRC-32 the payload, write a
//! `.tmp` sibling, fsync, rename — so a crash leaves either the previous
//! state or the new one, never a torn file. A journal whose checksum does
//! not verify is a fatal [`IngestError::Journal`]: guessing at its content
//! could double-apply or drop a batch.
//!
//! Delivery is two-phase. Before the first delivery attempt of batch `seq`,
//! the journal is saved with `pending = Some(batch)` (the write-ahead
//! intent). After the sink acknowledges — or redelivery after a restart
//! resolves the batch as already applied — the journal is saved again with
//! `pending = None`, `seq` advanced, and the per-file fingerprints moved to
//! the batch's post-state. An ingester killed between the two phases finds
//! the pending batch on restart and redelivers it; the sink-level
//! idempotency rules (see the crate docs) make that redelivery a no-op.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::error::IngestError;
use crate::fingerprint::Fingerprint;
use lake::LakeDelta;

const MAGIC: &str = "dn-ingest-journal v1";

/// Last applied fingerprint for one drop-folder file (keyed by file name,
/// e.g. `zoo.csv`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileEntry {
    pub name: String,
    pub fingerprint: Fingerprint,
}

/// Post-delivery fingerprint change for one file. `after = None` records a
/// deletion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileChange {
    pub name: String,
    pub after: Option<Fingerprint>,
}

/// A batch whose delivery has been intended (and possibly attempted) but
/// not yet confirmed applied.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PendingBatch {
    /// Sequence number this batch will commit as.
    pub seq: u64,
    /// The deltas to deliver, in order.
    pub deltas: Vec<LakeDelta>,
    /// Fingerprint changes to fold into [`JournalState::files`] once the
    /// batch is confirmed applied.
    pub files: Vec<FileChange>,
}

/// The serialized journal state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct JournalState {
    /// Sequence number of the last batch confirmed applied.
    pub seq: u64,
    /// Per-file fingerprints of the last applied generation, sorted by name.
    pub files: Vec<FileEntry>,
    /// The in-flight batch, if a delivery was interrupted.
    pub pending: Option<PendingBatch>,
}

impl JournalState {
    /// Fingerprint of the last applied generation of `name`, if any.
    pub fn fingerprint_of(&self, name: &str) -> Option<&Fingerprint> {
        self.files
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.fingerprint)
    }

    /// Fold a batch's post-delivery fingerprint changes into the file map,
    /// keeping it sorted by name.
    pub fn apply_changes(&mut self, changes: &[FileChange]) {
        for change in changes {
            match &change.after {
                Some(fp) => match self.files.iter_mut().find(|e| e.name == change.name) {
                    Some(entry) => entry.fingerprint = *fp,
                    None => {
                        self.files.push(FileEntry {
                            name: change.name.clone(),
                            fingerprint: *fp,
                        });
                    }
                },
                None => self.files.retain(|e| e.name != change.name),
            }
        }
        self.files.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

/// Handle on the journal file; owns the atomic load/save protocol.
#[derive(Debug, Clone)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Load the journal. `Ok(None)` when no journal exists yet (first run);
    /// [`IngestError::Journal`] when one exists but fails verification.
    pub fn load(&self) -> Result<Option<JournalState>, IngestError> {
        let bytes = match fs::read(&self.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(IngestError::io(&self.path, e)),
        };
        decode(&bytes)
            .map(Some)
            .map_err(|message| IngestError::Journal {
                path: self.path.clone(),
                message,
            })
    }

    /// Atomically persist `state`: tmp sibling + fsync + rename + dir fsync.
    pub fn save(&self, state: &JournalState) -> Result<(), IngestError> {
        let _journal = dn_trace::span(dn_trace::Phase::IngestJournal);
        let bytes = encode(state);
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent).map_err(|e| IngestError::io(parent, e))?;
        }
        let tmp = self.path.with_extension("journal.tmp");
        {
            let mut file = fs::File::create(&tmp).map_err(|e| IngestError::io(&tmp, e))?;
            file.write_all(&bytes)
                .map_err(|e| IngestError::io(&tmp, e))?;
            file.sync_all().map_err(|e| IngestError::io(&tmp, e))?;
        }
        fs::rename(&tmp, &self.path).map_err(|e| IngestError::io(&self.path, e))?;
        if let Some(parent) = self.path.parent() {
            // Make the rename durable; non-fatal on filesystems that refuse
            // directory fsync.
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }
}

fn encode(state: &JournalState) -> Vec<u8> {
    let payload = serde_json::to_string(state).expect("journal state serializes");
    let payload = payload.into_bytes();
    let mut out = format!(
        "{MAGIC} {:08x} {}\n",
        dn_store::codec::crc32(&payload),
        payload.len()
    )
    .into_bytes();
    out.extend_from_slice(&payload);
    out
}

fn decode(bytes: &[u8]) -> Result<JournalState, String> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| "missing header line".to_string())?;
    let header =
        std::str::from_utf8(&bytes[..newline]).map_err(|_| "non-UTF-8 header".to_string())?;
    let rest = &bytes[newline + 1..];
    let suffix = header
        .strip_prefix(MAGIC)
        .ok_or_else(|| format!("bad magic (expected `{MAGIC}`)"))?;
    let mut parts = suffix.split_whitespace();
    let crc_hex = parts.next().ok_or_else(|| "missing crc".to_string())?;
    let len_str = parts.next().ok_or_else(|| "missing length".to_string())?;
    let crc = u32::from_str_radix(crc_hex, 16).map_err(|_| "unparsable crc".to_string())?;
    let len: usize = len_str
        .parse()
        .map_err(|_| "unparsable length".to_string())?;
    if rest.len() != len {
        return Err(format!("payload length {} != declared {len}", rest.len()));
    }
    let actual = dn_store::codec::crc32(rest);
    if actual != crc {
        return Err(format!("payload crc {actual:08x} != declared {crc:08x}"));
    }
    let text = std::str::from_utf8(rest).map_err(|_| "non-UTF-8 payload".to_string())?;
    serde_json::from_str(text).map_err(|e| format!("undecodable payload: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dn_ingest_journal_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fp(crc: u32) -> Fingerprint {
        Fingerprint {
            len: 1,
            mtime_s: 2,
            mtime_ns: 3,
            crc,
        }
    }

    #[test]
    fn round_trips_state() {
        let dir = scratch();
        let journal = Journal::new(dir.join("ingest.journal"));
        assert!(journal.load().unwrap().is_none(), "fresh journal is absent");
        let mut state = JournalState {
            seq: 7,
            ..JournalState::default()
        };
        state.files.push(FileEntry {
            name: "zoo.csv".to_string(),
            fingerprint: fp(0xabcd),
        });
        state.pending = Some(PendingBatch {
            seq: 8,
            deltas: vec![LakeDelta::new().remove_table("zoo")],
            files: vec![FileChange {
                name: "zoo.csv".to_string(),
                after: None,
            }],
        });
        journal.save(&state).unwrap();
        let loaded = journal.load().unwrap().expect("journal exists");
        assert_eq!(loaded.seq, 7);
        assert_eq!(loaded.files, state.files);
        let pending = loaded.pending.expect("pending survives");
        assert_eq!(pending.seq, 8);
        assert_eq!(pending.deltas.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_a_typed_fatal_error() {
        let dir = scratch();
        let journal = Journal::new(dir.join("ingest.journal"));
        journal.save(&JournalState::default()).unwrap();
        let mut bytes = fs::read(journal.path()).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x42;
        fs::write(journal.path(), &bytes).unwrap();
        match journal.load() {
            Err(IngestError::Journal { .. }) => {}
            other => panic!("expected Journal error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_journal_is_rejected() {
        let dir = scratch();
        let journal = Journal::new(dir.join("ingest.journal"));
        journal.save(&JournalState::default()).unwrap();
        let bytes = fs::read(journal.path()).unwrap();
        fs::write(journal.path(), &bytes[..bytes.len() - 2]).unwrap();
        assert!(matches!(journal.load(), Err(IngestError::Journal { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn apply_changes_upserts_and_deletes() {
        let mut state = JournalState::default();
        state.apply_changes(&[
            FileChange {
                name: "b.csv".into(),
                after: Some(fp(1)),
            },
            FileChange {
                name: "a.csv".into(),
                after: Some(fp(2)),
            },
        ]);
        assert_eq!(state.files.len(), 2);
        assert_eq!(state.files[0].name, "a.csv", "entries stay sorted");
        state.apply_changes(&[
            FileChange {
                name: "a.csv".into(),
                after: Some(fp(3)),
            },
            FileChange {
                name: "b.csv".into(),
                after: None,
            },
        ]);
        assert_eq!(state.files.len(), 1);
        assert_eq!(state.files[0].fingerprint.crc, 3);
    }
}
