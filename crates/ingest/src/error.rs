//! Typed errors for the ingest subsystem.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors surfaced by the ingester.
///
/// The variants split along the axis that matters operationally: which
/// failures are retried on the next poll (`Io`, `SinkExhausted`), and which
/// are fatal until an operator intervenes (`Journal` corruption, a batch the
/// engine `Rejected` on its very first delivery attempt).
#[derive(Debug)]
pub enum IngestError {
    /// Filesystem error while scanning, reading, or journalling.
    Io {
        path: Option<PathBuf>,
        source: io::Error,
    },
    /// The resume journal exists but is unreadable: framing damage, checksum
    /// mismatch, or undecodable payload. Recovering automatically would risk
    /// double-applying a batch, so this is fatal.
    Journal { path: PathBuf, message: String },
    /// The sink rejected a batch on its first-ever delivery attempt. The
    /// batch is invalid for the current engine state; it is dropped from the
    /// journal and re-synthesized (and re-rejected, visibly) on later polls
    /// until the conflict is resolved.
    Rejected { seq: u64, message: String },
    /// Every retry of a transiently failing delivery was exhausted. The
    /// batch stays pending in the journal and redelivery resumes on the next
    /// poll.
    SinkExhausted {
        seq: u64,
        attempts: u32,
        message: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io { path, source } => match path {
                Some(path) => write!(f, "ingest io error at {}: {source}", path.display()),
                None => write!(f, "ingest io error: {source}"),
            },
            IngestError::Journal { path, message } => {
                write!(f, "corrupt ingest journal {}: {message}", path.display())
            }
            IngestError::Rejected { seq, message } => {
                write!(f, "batch seq={seq} rejected by sink: {message}")
            }
            IngestError::SinkExhausted {
                seq,
                attempts,
                message,
            } => write!(
                f,
                "batch seq={seq} still failing after {attempts} attempts: {message}"
            ),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl IngestError {
    pub(crate) fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        IngestError::Io {
            path: Some(path.into()),
            source,
        }
    }

    /// Whether the error clears on its own (retry next poll) rather than
    /// requiring operator attention.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            IngestError::Io { .. } | IngestError::SinkExhausted { .. }
        )
    }
}
