//! dn-ingest — CDC-style streaming ingest for DomainNet.
//!
//! Tails a drop-folder of CSV files and turns file adds, updates, deletes,
//! and renames into minimal [`lake::LakeDelta`] batches against a live
//! serving engine — in-process through a shared
//! [`dn_service::Coordinator`] (`dn-serve --ingest-dir`), or over HTTP via
//! `POST /v1/mutations` (the standalone `dn-ingest` CLI). Std-only like the
//! rest of the workspace: the watcher polls (no inotify), HTTP rides the
//! hand-rolled dn-server client, and durability is tmp+rename+fsync.
//!
//! The pipeline is watch → diff → deliver → journal:
//!
//! - **watch** ([`fingerprint`]): each poll fingerprints every `*.csv` file
//!   as size + mtime + content CRC-32; a file is eligible only once its
//!   fingerprint holds across two consecutive polls, so half-written files
//!   are never read.
//! - **diff** ([`diff`]): a changed table is diffed against its last
//!   ingested generation into value-granularity `ReplaceValue` ops when the
//!   change is a consistent substitution, falling back to a remove+add
//!   rewrite otherwise. Files that fail to parse are skipped with a typed
//!   error and retried next poll.
//! - **deliver** ([`sink`]): bounded batches flow through a [`DeltaSink`]
//!   with exponential retry/backoff on transient failures.
//! - **journal** ([`journal`]): a checksummed, atomically-rewritten resume
//!   journal records per-file applied fingerprints plus the one in-flight
//!   batch, giving a killed-and-restarted ingester exactly-once delivery.
//!
//! ## The exactly-once argument
//!
//! Every batch is journalled as a pending intent (fsynced) *before* its
//! first delivery attempt and committed (seq advanced, fingerprints folded,
//! pending cleared) only after delivery resolves. A crash therefore leaves
//! at most one ambiguous batch, and it is redelivered on restart. Ambiguity
//! is resolved by construction and by inference:
//!
//! - Deltas are idempotent-by-construction where possible: redelivering a
//!   `ReplaceValue` whose target was already rewritten touches zero cells,
//!   and a remove+add rewrite reconverges to the same end state.
//! - Where redelivery is *not* silent (`AddTable` → `DuplicateTable`,
//!   `RemoveTable` → `NotFound`), a rejection during recovery is read as
//!   evidence the original delivery applied, and the batch commits without
//!   reapplying. A rejection on a batch's first-ever attempt is instead a
//!   genuine rejection: the intent is dropped and the error surfaces.
//!
//! The inference is sound under a single-writer assumption: the ingester is
//! the only writer of the tables it manages. Operators who mutate
//! ingester-owned tables concurrently void it (a `DuplicateTable` could then
//! mean an operator collision rather than a prior delivery).

pub mod diff;
pub mod error;
pub mod fingerprint;
pub mod ingester;
pub mod journal;
pub mod sink;
pub mod stats;

pub use diff::{diff_tables, rewrite_delta, TableDiff};
pub use error::IngestError;
pub use fingerprint::{fingerprint_file, Fingerprint};
pub use ingester::{IngestConfig, Ingester, PollReport};
pub use journal::{FileChange, FileEntry, Journal, JournalState, PendingBatch};
pub use sink::{CoordinatorSink, DeltaSink, SinkError};
pub use stats::{IngestSnapshot, IngestStats};
