//! The ingest loop: watch → diff → deliver → journal.
//!
//! Each [`Ingester::poll_once`] cycle:
//!
//! 1. **Recover** — if the journal holds a pending batch from an interrupted
//!    run, redeliver it first (see the exactly-once rules below).
//! 2. **Scan** — list `*.csv` files in the drop-folder and fingerprint them
//!    (stat prefix first; content CRC only when the stat changed).
//! 3. **Stabilize** — a changed file becomes eligible only once its
//!    fingerprint is identical across two consecutive polls, so half-written
//!    files are never parsed.
//! 4. **Diff** — parse eligible files (strict CSV) and diff against the
//!    last-applied generation to synthesize minimal deltas; files that fail
//!    to parse are counted as torn, skipped, and retried next poll.
//! 5. **Deliver** — pack deltas into bounded batches; for each batch, write
//!    the journal intent (pending batch, fsynced), deliver through the sink
//!    with retry/backoff on transient failures, then commit the journal
//!    (advance `seq`, fold fingerprints, clear pending).
//!
//! ## Exactly-once rules
//!
//! A transient delivery failure leaves the batch *maybe applied* (a timed-out
//! HTTP POST may have committed server-side). The journal pins the batch as
//! pending until resolved, and redelivery resolves it:
//!
//! - `Ok` on redelivery → applied now (deltas are synthesized to be
//!   idempotent-by-construction: `ReplaceValue` ops whose target is gone
//!   rewrite zero cells; remove+add rewrites reconverge to the same state).
//! - `Rejected` during restart recovery, or after a transient attempt on a
//!   sink where transient failures can still have applied, is read as
//!   evidence the earlier delivery landed (e.g. redelivering an `AddTable`
//!   trips `DuplicateTable`): the batch is committed without reapplying.
//! - `Rejected` on the first-ever attempt means the batch is genuinely
//!   invalid for the engine's state: it is dropped from the journal and the
//!   error surfaces; the next poll re-synthesizes (and re-surfaces) it until
//!   the conflict is fixed.
//!
//! These rules are sound under the subsystem's single-writer assumption: the
//! ingester is the only writer of the tables it manages. An operator
//! mutating ingester-owned tables through `/v1/mutations` voids the
//! redelivery inference (a `DuplicateTable` might then mean an operator
//! collision, not a prior delivery).

use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lake::loader::{load_table, LoadOptions};
use lake::{LakeDelta, Table};

use crate::diff::{diff_tables, rewrite_delta};
use crate::error::IngestError;
use crate::fingerprint::{fingerprint_file, stat_prefix, Fingerprint};
use crate::journal::{FileChange, Journal, JournalState, PendingBatch};
use crate::sink::{DeltaSink, SinkError};
use crate::stats::IngestStats;

/// Tunables for one ingester.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// The drop-folder to watch for `*.csv` files.
    pub watch_dir: PathBuf,
    /// Where the resume journal lives. Defaults to
    /// `<watch_dir>/.dn-ingest.journal` (hidden, non-`.csv`, so the scanner
    /// ignores it); dn-serve overrides this to sit next to its data dir.
    pub journal_path: PathBuf,
    /// Delay between poll cycles in [`Ingester::run`].
    pub poll_interval: Duration,
    /// Max file-level deltas packed into one delivered batch.
    pub max_deltas_per_batch: usize,
    /// Max total ops packed into one delivered batch (soft: a single
    /// oversized file delta still ships alone rather than splitting).
    pub max_ops_per_batch: usize,
    /// Delivery attempts per batch before giving up until the next poll.
    pub max_attempts: u32,
    /// Initial backoff after a transient delivery failure (doubles per
    /// retry up to `max_backoff`).
    pub backoff: Duration,
    pub max_backoff: Duration,
}

impl IngestConfig {
    pub fn new(watch_dir: impl Into<PathBuf>) -> Self {
        let watch_dir = watch_dir.into();
        let journal_path = watch_dir.join(".dn-ingest.journal");
        Self {
            watch_dir,
            journal_path,
            poll_interval: Duration::from_millis(500),
            max_deltas_per_batch: 8,
            max_ops_per_batch: 256,
            max_attempts: 5,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// What one poll cycle did — returned for tests, logging, and smoke gates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollReport {
    /// `*.csv` files present in the drop-folder this poll.
    pub files_scanned: usize,
    /// Files whose stable fingerprint differed from the journal.
    pub changed_files: usize,
    /// Journaled files found deleted from the folder.
    pub deletions: usize,
    /// Batches delivered and committed this poll.
    pub batches_delivered: usize,
    /// Total ops across the delivered batches.
    pub ops_delivered: usize,
    /// Files skipped because they failed to parse (retried next poll).
    pub torn_skipped: usize,
    /// Fingerprint-only journal updates (content unchanged or value-equal).
    pub silent_updates: usize,
    /// Whether a pending batch from an earlier run was redelivered.
    pub redelivered: bool,
    /// Whether the folder and the journal fully agree after this poll.
    pub caught_up: bool,
}

#[derive(Debug, Clone, Copy)]
struct Observation {
    fp: Fingerprint,
    stable: bool,
}

struct FileAction {
    name: String,
    delta: LakeDelta,
    after: Option<Fingerprint>,
    table: Option<Table>,
}

/// The drop-folder ingester. Generic over its delivery [`DeltaSink`].
pub struct Ingester<S: DeltaSink> {
    config: IngestConfig,
    sink: S,
    stats: Arc<IngestStats>,
    journal: Journal,
    state: JournalState,
    /// Last-applied parse per live table (keyed by table name / file stem);
    /// the diff base. Absent entries force the remove+add rewrite fallback.
    tables: HashMap<String, Table>,
    /// Last poll's fingerprints, for the two-poll stability guard.
    observed: HashMap<String, Observation>,
    /// Fingerprints already counted as torn, so a persistently broken file
    /// increments the counter once per new content, not once per poll.
    torn_seen: HashMap<String, Fingerprint>,
    /// First time each unapplied change was observed (drives the lag gauge).
    change_seen: HashMap<String, Instant>,
}

fn strict_load() -> LoadOptions {
    LoadOptions {
        strict: true,
        ..LoadOptions::default()
    }
}

fn table_stem(name: &str) -> String {
    Path::new(name)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| name.to_string())
}

impl<S: DeltaSink> Ingester<S> {
    /// Open (or create) the journal, rebuild the diff base from files whose
    /// content still matches their journaled fingerprint, and return an
    /// ingester ready to poll. A pending batch in the journal is *not*
    /// resolved here — the first `poll_once` redelivers it.
    pub fn new(
        config: IngestConfig,
        sink: S,
        stats: Arc<IngestStats>,
    ) -> Result<Self, IngestError> {
        fs::create_dir_all(&config.watch_dir).map_err(|e| IngestError::io(&config.watch_dir, e))?;
        let journal = Journal::new(&config.journal_path);
        let state = journal.load()?.unwrap_or_default();
        let mut tables = HashMap::new();
        for entry in &state.files {
            let path = config.watch_dir.join(&entry.name);
            if let Ok(fp) = fingerprint_file(&path) {
                if fp.same_content(&entry.fingerprint) {
                    if let Ok(table) = load_table(&path, strict_load()) {
                        tables.insert(table_stem(&entry.name), table);
                    }
                }
            }
        }
        Ok(Self {
            config,
            sink,
            stats,
            journal,
            state,
            tables,
            observed: HashMap::new(),
            torn_seen: HashMap::new(),
            change_seen: HashMap::new(),
        })
    }

    /// Sequence number of the last batch confirmed applied.
    pub fn last_seq(&self) -> u64 {
        self.state.seq
    }

    /// Whether a batch is pending resolution in the journal.
    pub fn has_pending(&self) -> bool {
        self.state.pending.is_some()
    }

    /// Mutable access to the delivery sink (fault-injection harnesses arm
    /// their failure points through this).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Run one watch → diff → deliver → journal cycle.
    pub fn poll_once(&mut self) -> Result<PollReport, IngestError> {
        // One trace per poll cycle (subject to the sampling draw). While
        // active, the sink's HTTP deliveries forward the trace ID, so the
        // server's ring shows this cycle's mutations under the same ID.
        let _trace = dn_trace::start_trace("ingest_poll", None);
        self.stats.add_polls(1);
        let mut report = PollReport::default();
        self.recover_pending(&mut report)?;

        let scan_span = dn_trace::span(dn_trace::Phase::IngestScan);
        let names = self.scan()?;
        report.files_scanned = names.len();
        self.stats.add_files_seen(names.len() as u64);
        let present: HashSet<&String> = names.iter().collect();
        self.observed.retain(|name, _| present.contains(name));
        self.torn_seen.retain(|name, _| present.contains(name));

        // Fingerprint and apply the two-poll stability guard.
        for name in &names {
            let path = self.config.watch_dir.join(name);
            let fp = match self.fingerprint_cached(&path, name) {
                Ok(fp) => fp,
                // The file vanished or became unreadable mid-poll; it will
                // show up as a deletion or fresh change next poll.
                Err(_) => {
                    self.observed.remove(name);
                    continue;
                }
            };
            let stable = self.observed.get(name).map(|o| o.fp == fp).unwrap_or(false);
            self.observed
                .insert(name.clone(), Observation { fp, stable });
        }
        drop(scan_span);

        let diff_span = dn_trace::span(dn_trace::Phase::IngestDiff);
        let mut actions: Vec<FileAction> = Vec::new();

        // Deletions: journaled files no longer on disk.
        let deleted: Vec<String> = self
            .state
            .files
            .iter()
            .map(|e| e.name.clone())
            .filter(|name| !present.contains(name))
            .collect();
        for name in deleted {
            report.deletions += 1;
            actions.push(FileAction {
                delta: LakeDelta::new().remove_table(table_stem(&name)),
                after: None,
                table: None,
                name,
            });
        }

        // Adds and updates: stable files whose fingerprint moved past the
        // journal's last-applied generation.
        let mut silent: Vec<FileChange> = Vec::new();
        for name in &names {
            let obs = match self.observed.get(name) {
                Some(obs) => *obs,
                None => continue,
            };
            let journaled = self.state.fingerprint_of(name).copied();
            if journaled.as_ref() == Some(&obs.fp) {
                continue;
            }
            if !obs.stable {
                continue; // wait for the fingerprint to settle
            }
            report.changed_files += 1;
            if let Some(prev) = &journaled {
                if prev.same_content(&obs.fp) {
                    // Rewritten byte-identically (mtime churn): refresh the
                    // journal without delivering anything.
                    silent.push(FileChange {
                        name: name.clone(),
                        after: Some(obs.fp),
                    });
                    continue;
                }
            }
            let path = self.config.watch_dir.join(name);
            let table = match load_table(&path, strict_load()) {
                Ok(table) => table,
                Err(_) => {
                    report.torn_skipped += 1;
                    let counted = self
                        .torn_seen
                        .get(name)
                        .map(|fp| *fp == obs.fp)
                        .unwrap_or(false);
                    if !counted {
                        self.stats.add_torn_files(1);
                        self.torn_seen.insert(name.clone(), obs.fp);
                    }
                    continue;
                }
            };
            self.torn_seen.remove(name);
            let stem = table_stem(name);
            let (delta, rows) = if journaled.is_none() {
                let rows = table.row_count() as u64;
                (LakeDelta::new().add_table(table.clone()), rows)
            } else if let Some(base) = self.tables.get(&stem) {
                let diff = diff_tables(base, &table);
                (diff.delta, diff.rows_diffed)
            } else {
                // The applied generation is unreconstructable (file changed
                // while the ingester was down): full rewrite.
                let rows = table.row_count() as u64;
                (rewrite_delta(&stem, &table), rows)
            };
            self.stats.add_rows_diffed(rows);
            if delta.is_empty() {
                // Value-identical content under a new fingerprint.
                self.tables.insert(stem, table);
                silent.push(FileChange {
                    name: name.clone(),
                    after: Some(obs.fp),
                });
                continue;
            }
            actions.push(FileAction {
                name: name.clone(),
                delta,
                after: Some(obs.fp),
                table: Some(table),
            });
        }

        drop(diff_span);

        // Deliver in bounded batches; deletions lead so renames
        // (delete old + add new) always remove before re-adding.
        report.silent_updates = silent.len();
        let mut batch: Vec<FileAction> = Vec::new();
        let mut batch_ops = 0usize;
        for action in actions {
            let ops = action.delta.len();
            let full = !batch.is_empty()
                && (batch.len() >= self.config.max_deltas_per_batch
                    || batch_ops + ops > self.config.max_ops_per_batch);
            if full {
                self.deliver_fresh_batch(std::mem::take(&mut batch), &mut report)?;
                batch_ops = 0;
            }
            batch_ops += ops;
            batch.push(action);
        }
        if !batch.is_empty() {
            self.deliver_fresh_batch(batch, &mut report)?;
        }

        if !silent.is_empty() {
            self.state.apply_changes(&silent);
            self.journal.save(&self.state)?;
        }

        self.refresh_lag();
        report.caught_up =
            !self.has_pending() && self.change_seen.is_empty() && self.torn_seen.is_empty();
        Ok(report)
    }

    /// Poll until `stop` is set, sleeping `poll_interval` between cycles.
    ///
    /// Transient errors and fresh-batch rejections are reported through
    /// `on_error` and retried on later polls; journal corruption aborts.
    pub fn run<F: FnMut(&IngestError)>(
        &mut self,
        stop: &AtomicBool,
        mut on_error: F,
    ) -> Result<(), IngestError> {
        while !stop.load(Ordering::Relaxed) {
            match self.poll_once() {
                Ok(_) => {}
                Err(e @ IngestError::Journal { .. }) => return Err(e),
                Err(e) => on_error(&e),
            }
            let mut remaining = self.config.poll_interval;
            while !stop.load(Ordering::Relaxed) && !remaining.is_zero() {
                let slice = remaining.min(Duration::from_millis(50));
                std::thread::sleep(slice);
                remaining = remaining.saturating_sub(slice);
            }
        }
        Ok(())
    }

    fn scan(&self) -> Result<Vec<String>, IngestError> {
        let mut names: Vec<String> = fs::read_dir(&self.config.watch_dir)
            .map_err(|e| IngestError::io(&self.config.watch_dir, e))?
            .filter_map(|entry| entry.ok())
            .filter(|entry| entry.file_type().map(|t| t.is_file()).unwrap_or(false))
            .filter_map(|entry| entry.file_name().into_string().ok())
            .filter(|name| {
                Path::new(name)
                    .extension()
                    .map(|ext| ext.eq_ignore_ascii_case("csv"))
                    .unwrap_or(false)
            })
            .collect();
        names.sort();
        Ok(names)
    }

    /// Fingerprint `path`, reusing the cached CRC when the stat prefix is
    /// unchanged since the last poll — steady-state polls read no content.
    fn fingerprint_cached(&self, path: &Path, name: &str) -> Result<Fingerprint, IngestError> {
        if let Some(obs) = self.observed.get(name) {
            let (len, mtime_s, mtime_ns) =
                stat_prefix(path).map_err(|e| IngestError::io(path, e))?;
            let prev = obs.fp;
            if prev.len == len && prev.mtime_s == mtime_s && prev.mtime_ns == mtime_ns {
                return Ok(prev);
            }
        }
        fingerprint_file(path).map_err(|e| IngestError::io(path, e))
    }

    fn recover_pending(&mut self, report: &mut PollReport) -> Result<(), IngestError> {
        let pending = match &self.state.pending {
            Some(pending) => pending.clone(),
            None => return Ok(()),
        };
        report.redelivered = true;
        match self.deliver_with_retry(pending.seq, &pending.deltas, false) {
            Ok(()) => self.commit_pending(HashMap::new()),
            Err(e) => Err(e),
        }
    }

    fn deliver_fresh_batch(
        &mut self,
        actions: Vec<FileAction>,
        report: &mut PollReport,
    ) -> Result<(), IngestError> {
        let seq = self.state.seq + 1;
        let deltas: Vec<LakeDelta> = actions.iter().map(|a| a.delta.clone()).collect();
        let ops: usize = deltas.iter().map(LakeDelta::len).sum();
        let changes: Vec<FileChange> = actions
            .iter()
            .map(|a| FileChange {
                name: a.name.clone(),
                after: a.after,
            })
            .collect();
        let parsed: HashMap<String, Table> = actions
            .into_iter()
            .filter_map(|a| a.table.map(|t| (table_stem(&a.name), t)))
            .collect();

        // Phase 1: write-ahead intent, durable before the first attempt.
        self.state.pending = Some(PendingBatch {
            seq,
            deltas: deltas.clone(),
            files: changes,
        });
        self.journal.save(&self.state)?;

        match self.deliver_with_retry(seq, &deltas, true) {
            Ok(()) => {
                // Phase 2: confirmed applied.
                self.commit_pending(parsed)?;
                report.batches_delivered += 1;
                report.ops_delivered += ops;
                Ok(())
            }
            Err(e @ IngestError::Rejected { .. }) => {
                // Genuinely invalid batch: drop the intent so the journal
                // does not claim it was applied, surface the error, and let
                // later polls re-synthesize it.
                self.state.pending = None;
                self.journal.save(&self.state)?;
                Err(e)
            }
            Err(e) => Err(e), // transient exhaustion: pending stays for redelivery
        }
    }

    fn deliver_with_retry(
        &mut self,
        seq: u64,
        deltas: &[LakeDelta],
        fresh: bool,
    ) -> Result<(), IngestError> {
        let _deliver = dn_trace::span(dn_trace::Phase::IngestDeliver);
        let mut backoff = self.config.backoff;
        let attempts = self.config.max_attempts.max(1);
        for attempt in 1..=attempts {
            match self.sink.deliver(seq, deltas) {
                Ok(()) => return Ok(()),
                Err(SinkError::Rejected(message)) => {
                    let genuinely_rejected =
                        fresh && (attempt == 1 || self.sink.transient_means_unapplied());
                    if genuinely_rejected {
                        return Err(IngestError::Rejected { seq, message });
                    }
                    // Redelivery of a maybe-applied batch tripped over its
                    // own effects: evidence the original delivery landed.
                    return Ok(());
                }
                Err(SinkError::Transient(message)) => {
                    if attempt == attempts {
                        return Err(IngestError::SinkExhausted {
                            seq,
                            attempts,
                            message,
                        });
                    }
                    self.stats.add_retries(1);
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.config.max_backoff);
                }
            }
        }
        unreachable!("retry loop returns on every arm")
    }

    /// Phase 2 of delivery: fold the pending batch into the committed state.
    /// `parsed` carries the freshly parsed tables for the diff base; during
    /// restart recovery it is empty and the base is rebuilt from disk where
    /// the content still matches.
    fn commit_pending(&mut self, mut parsed: HashMap<String, Table>) -> Result<(), IngestError> {
        let pending = self
            .state
            .pending
            .take()
            .expect("commit_pending requires a pending batch");
        self.state.seq = pending.seq;
        self.state.apply_changes(&pending.files);
        self.journal.save(&self.state)?;
        self.stats.add_batches_applied(1);
        for change in &pending.files {
            let stem = table_stem(&change.name);
            match &change.after {
                None => {
                    self.tables.remove(&stem);
                }
                Some(fp) => {
                    if let Some(table) = parsed.remove(&stem) {
                        self.tables.insert(stem, table);
                    } else {
                        // Recovery path: re-parse from disk when the file
                        // still holds the applied generation; otherwise the
                        // base stays absent and the next change of this file
                        // takes the rewrite fallback.
                        let path = self.config.watch_dir.join(&change.name);
                        let matches = fingerprint_file(&path)
                            .map(|cur| cur.same_content(fp))
                            .unwrap_or(false);
                        let reparsed = matches
                            .then(|| load_table(&path, strict_load()).ok())
                            .flatten();
                        match reparsed {
                            Some(table) => {
                                self.tables.insert(stem, table);
                            }
                            None => {
                                self.tables.remove(&stem);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Update the lag gauge: age of the oldest observed change that the
    /// journal has not yet recorded as applied.
    fn refresh_lag(&mut self) {
        let now = Instant::now();
        let mut mismatched: HashSet<String> = HashSet::new();
        for (name, obs) in &self.observed {
            if self.state.fingerprint_of(name) != Some(&obs.fp) {
                mismatched.insert(name.clone());
            }
        }
        for entry in &self.state.files {
            if !self.observed.contains_key(&entry.name) {
                mismatched.insert(entry.name.clone());
            }
        }
        self.change_seen.retain(|name, _| mismatched.contains(name));
        for name in mismatched {
            self.change_seen.entry(name).or_insert(now);
        }
        let lag_millis = self
            .change_seen
            .values()
            .map(|t| t.elapsed().as_millis() as u64)
            .max()
            .unwrap_or(0);
        self.stats.set_lag_millis(lag_millis);
    }
}
