//! Table differ: turn (old generation, new generation) of one table into a
//! minimal [`LakeDelta`].
//!
//! The differ prefers value-granularity [`lake::delta::LakeOp::ReplaceValue`] ops because
//! they are cheap for the engine (dictionary rewrite + component-scoped
//! repair instead of a full table rebuild) and — crucially for exactly-once
//! delivery — idempotent: redelivering a `ReplaceValue` whose target is
//! already gone rewrites zero cells. A positional cell diff is only
//! expressible as `ReplaceValue` ops when it behaves like a consistent
//! value-level substitution; anything more structural falls back to a
//! `RemoveTable` + `AddTable` rewrite (state-equivalent on redelivery).
//!
//! Expressibility conditions, checked per column:
//! - same column names in the same order, and the same row count;
//! - the changed positions form a function `old value → new value`
//!   (no old value maps to two different new values);
//! - every occurrence of a replaced value changes (a `ReplaceValue` rewrites
//!   *all* cells holding the target, so a half-changed value is structural);
//! - targets and replacements are disjoint sets (no chains or swaps, whose
//!   sequential application would cascade);
//! - no change involves a missing (empty-normalized) cell on either side.

use std::collections::BTreeSet;

use lake::{normalize, LakeDelta, Table};

/// Outcome of diffing one table across two generations.
#[derive(Debug)]
pub struct TableDiff {
    /// Ops that transform the old table into the new one. Empty when the
    /// tables are value-identical (e.g. an mtime-only rewrite).
    pub delta: LakeDelta,
    /// Rows examined to synthesize the delta (metrics fuel).
    pub rows_diffed: u64,
    /// Whether the differ fell back to a remove+add rewrite.
    pub full_rewrite: bool,
}

/// Diff `old` → `new`, preferring minimal `ReplaceValue` ops.
///
/// Both tables must carry the same name (they come from the same file); the
/// delta is expressed against that name.
pub fn diff_tables(old: &Table, new: &Table) -> TableDiff {
    let rows_diffed = old.row_count().max(new.row_count()) as u64;
    if let Some(delta) = try_replace_diff(old, new) {
        let full_rewrite = false;
        return TableDiff {
            delta,
            rows_diffed,
            full_rewrite,
        };
    }
    TableDiff {
        delta: rewrite_delta(old.name(), new),
        rows_diffed,
        full_rewrite: true,
    }
}

/// The structural fallback: drop the old table and add the new content.
pub fn rewrite_delta(old_name: &str, new: &Table) -> LakeDelta {
    let remove = LakeDelta::new().remove_table(old_name);
    let add = LakeDelta::new().add_table(new.clone());
    remove.merge(add)
}

fn try_replace_diff(old: &Table, new: &Table) -> Option<LakeDelta> {
    if old.row_count() != new.row_count() || old.column_count() != new.column_count() {
        return None;
    }
    for (oc, nc) in old.columns().iter().zip(new.columns()) {
        if oc.name() != nc.name() {
            return None;
        }
    }
    let mut delta = LakeDelta::new();
    for (oc, nc) in old.columns().iter().zip(new.columns()) {
        let old_cells = oc.cells();
        let new_cells = nc.cells();
        // First-seen-order mapping of normalized target → raw replacement.
        let mut mapping: Vec<(String, String)> = Vec::new();
        for (old_raw, new_raw) in old_cells.iter().zip(new_cells) {
            let old_norm = normalize(old_raw);
            let new_norm = normalize(new_raw);
            if old_norm == new_norm {
                continue;
            }
            if old_norm.is_empty() || new_norm.is_empty() {
                // Transitions to/from missing cells have no value-level op.
                return None;
            }
            match mapping.iter().find(|(t, _)| *t == old_norm) {
                Some((_, repl)) if normalize(repl) == new_norm => {}
                Some(_) => return None, // inconsistent: one old value, two new ones
                None => mapping.push((old_norm, new_raw.clone())),
            }
        }
        if mapping.is_empty() {
            continue;
        }
        let targets: BTreeSet<&str> = mapping.iter().map(|(t, _)| t.as_str()).collect();
        // No chains/swaps: a replacement that is itself a target would make
        // sequential application cascade through both rewrites.
        if mapping
            .iter()
            .any(|(_, r)| targets.contains(normalize(r).as_str()))
        {
            return None;
        }
        // Completeness: every surviving occurrence of a target must have
        // changed, because ReplaceValue rewrites all of them.
        for (old_raw, new_raw) in old_cells.iter().zip(new_cells) {
            let old_norm = normalize(old_raw);
            if let Some((_, repl)) = mapping.iter().find(|(t, _)| *t == old_norm) {
                if normalize(new_raw) != normalize(repl) {
                    return None;
                }
            }
        }
        for (target, replacement) in mapping {
            delta = delta.replace_value(old.name(), oc.name(), &target, replacement);
        }
    }
    Some(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake::{LakeOp, TableBuilder};

    fn table(name: &str, col: &str, cells: &[&str]) -> Table {
        TableBuilder::new(name)
            .column(col, cells.iter().map(|c| c.to_string()).collect::<Vec<_>>())
            .build()
            .unwrap()
    }

    #[test]
    fn identical_tables_yield_empty_delta() {
        let a = table("t", "c", &["x", "y", "x"]);
        let b = table("t", "c", &["x", "y", "x"]);
        let diff = diff_tables(&a, &b);
        assert!(diff.delta.is_empty());
        assert!(!diff.full_rewrite);
        assert_eq!(diff.rows_diffed, 3);
    }

    #[test]
    fn consistent_substitution_becomes_replace_ops() {
        let a = table("t", "c", &["Jaguar", "Okapi", "Jaguar"]);
        let b = table("t", "c", &["Panther", "Okapi", "Panther"]);
        let diff = diff_tables(&a, &b);
        assert!(!diff.full_rewrite);
        assert_eq!(diff.delta.len(), 1);
        match &diff.delta.ops()[0] {
            LakeOp::ReplaceValue {
                table,
                column,
                target,
                replacement,
            } => {
                assert_eq!(table, "t");
                assert_eq!(column, "c");
                assert_eq!(target, "JAGUAR");
                assert_eq!(replacement, "Panther");
            }
            other => panic!("expected ReplaceValue, got {other:?}"),
        }
    }

    #[test]
    fn partial_change_of_a_value_falls_back_to_rewrite() {
        // Only one of the two Jaguar cells changes: not expressible as
        // ReplaceValue (which rewrites every occurrence).
        let a = table("t", "c", &["Jaguar", "Okapi", "Jaguar"]);
        let b = table("t", "c", &["Panther", "Okapi", "Jaguar"]);
        let diff = diff_tables(&a, &b);
        assert!(diff.full_rewrite);
        assert!(matches!(diff.delta.ops()[0], LakeOp::RemoveTable(_)));
        assert!(matches!(diff.delta.ops()[1], LakeOp::AddTable(_)));
    }

    #[test]
    fn swap_falls_back_to_rewrite() {
        let a = table("t", "c", &["a", "b"]);
        let b = table("t", "c", &["b", "a"]);
        assert!(diff_tables(&a, &b).full_rewrite);
    }

    #[test]
    fn inconsistent_mapping_falls_back_to_rewrite() {
        let a = table("t", "c", &["x", "x", "y"]);
        let b = table("t", "c", &["p", "q", "y"]);
        assert!(diff_tables(&a, &b).full_rewrite);
    }

    #[test]
    fn chain_falls_back_to_rewrite() {
        // a → b while b → c: applying "replace a with b" first would sweep
        // the new b cells into c.
        let a = table("t", "c", &["a", "b"]);
        let b = table("t", "c", &["b", "c"]);
        assert!(diff_tables(&a, &b).full_rewrite);
    }

    #[test]
    fn missing_cell_transitions_fall_back_to_rewrite() {
        let a = table("t", "c", &["x", ""]);
        let b = table("t", "c", &["x", "y"]);
        assert!(diff_tables(&a, &b).full_rewrite);
    }

    #[test]
    fn row_count_change_falls_back_to_rewrite() {
        let a = table("t", "c", &["x", "y"]);
        let b = table("t", "c", &["x", "y", "z"]);
        assert!(diff_tables(&a, &b).full_rewrite);
    }

    #[test]
    fn multi_column_substitutions_scope_per_column() {
        let a = TableBuilder::new("t")
            .column("c1", ["x", "y"])
            .column("c2", ["x", "z"])
            .build()
            .unwrap();
        let b = TableBuilder::new("t")
            .column("c1", ["w", "y"])
            .column("c2", ["x", "z"])
            .build()
            .unwrap();
        let diff = diff_tables(&a, &b);
        assert!(!diff.full_rewrite);
        assert_eq!(diff.delta.len(), 1, "only c1 changed");
    }

    #[test]
    fn replace_diff_applies_to_equivalence() {
        // Property-style check: applying the synthesized delta to a lake
        // holding the old table yields the new table's distinct values.
        let a = table("t", "c", &["Jaguar", "Okapi", "Jaguar", "Kudu"]);
        let b = table("t", "c", &["Panther", "Okapi", "Panther", "Zebu"]);
        let diff = diff_tables(&a, &b);
        assert!(!diff.full_rewrite);
        let mut lake = lake::MutableLake::new();
        lake.apply(&LakeDelta::new().add_table(a)).unwrap();
        lake.apply(&diff.delta).unwrap();
        let got: Vec<String> = lake.table("t").unwrap().columns()[0]
            .distinct_values()
            .map(str::to_string)
            .collect();
        let want: Vec<String> = b.columns()[0]
            .distinct_values()
            .map(str::to_string)
            .collect();
        assert_eq!(got, want);
    }
}
