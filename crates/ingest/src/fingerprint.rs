//! Content fingerprints for drop-folder files.
//!
//! A [`Fingerprint`] identifies one file's content as `(len, mtime, crc32)`.
//! The stat-level prefix (`len` + `mtime`) is cheap and checked every poll;
//! the CRC is only recomputed when the prefix changes, so steady-state polls
//! over an unchanged folder do no content reads at all. Equality of the full
//! fingerprint across two consecutive polls is the ingester's stability
//! guard: a file is only eligible for ingest once it has stopped moving,
//! which keeps half-written files out of the pipeline without any writer
//! cooperation beyond "eventually stop writing".

use std::fs;
use std::io;
use std::path::Path;
use std::time::UNIX_EPOCH;

use serde::{Deserialize, Serialize};

/// Identity of a file's content: size, mtime, and a CRC-32 of the bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// File length in bytes at stat time.
    pub len: u64,
    /// Modification time, seconds since the Unix epoch.
    pub mtime_s: u64,
    /// Sub-second component of the modification time.
    pub mtime_ns: u32,
    /// CRC-32 (IEEE) of the full file content.
    pub crc: u32,
}

impl Fingerprint {
    /// Whether the cheap stat-level prefix matches `other` — used to decide
    /// if the CRC must be recomputed.
    pub fn same_stat(&self, other: &Fingerprint) -> bool {
        self.len == other.len && self.mtime_s == other.mtime_s && self.mtime_ns == other.mtime_ns
    }

    /// Whether the content (length + CRC) matches, ignoring mtime. A file
    /// rewritten byte-for-byte identically has the same content fingerprint
    /// and needs no re-parse.
    pub fn same_content(&self, other: &Fingerprint) -> bool {
        self.len == other.len && self.crc == other.crc
    }
}

/// Stat `path` and checksum its content.
///
/// The stat happens before the read, so a file mutated between the two may
/// yield a fingerprint that matches neither the old nor the new content —
/// harmless, because such a fingerprint cannot stay stable across two polls.
pub fn fingerprint_file(path: &Path) -> io::Result<Fingerprint> {
    let meta = fs::metadata(path)?;
    let (mtime_s, mtime_ns) = mtime_parts(&meta);
    let bytes = fs::read(path)?;
    Ok(Fingerprint {
        len: meta.len(),
        mtime_s,
        mtime_ns,
        crc: dn_store::codec::crc32(&bytes),
    })
}

/// Stat-only view used to skip CRC recomputation on unchanged files.
pub fn stat_prefix(path: &Path) -> io::Result<(u64, u64, u32)> {
    let meta = fs::metadata(path)?;
    let (mtime_s, mtime_ns) = mtime_parts(&meta);
    Ok((meta.len(), mtime_s, mtime_ns))
}

fn mtime_parts(meta: &fs::Metadata) -> (u64, u32) {
    match meta.modified() {
        Ok(time) => match time.duration_since(UNIX_EPOCH) {
            Ok(d) => (d.as_secs(), d.subsec_nanos()),
            Err(_) => (0, 0),
        },
        Err(_) => (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dn_ingest_fp_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fingerprint_tracks_content() {
        let dir = scratch();
        let path = dir.join("a.csv");
        fs::write(&path, b"x,y\n1,2\n").unwrap();
        let fp1 = fingerprint_file(&path).unwrap();
        let fp2 = fingerprint_file(&path).unwrap();
        assert_eq!(fp1, fp2);
        fs::write(&path, b"x,y\n1,3\n").unwrap();
        let fp3 = fingerprint_file(&path).unwrap();
        assert_eq!(fp3.len, fp1.len);
        assert_ne!(fp3.crc, fp1.crc, "different bytes must change the crc");
        assert!(!fp3.same_content(&fp1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_content_ignores_mtime() {
        let a = Fingerprint {
            len: 10,
            mtime_s: 1,
            mtime_ns: 2,
            crc: 0xdead,
        };
        let b = Fingerprint {
            len: 10,
            mtime_s: 9,
            mtime_ns: 9,
            crc: 0xdead,
        };
        assert!(a.same_content(&b));
        assert!(!a.same_stat(&b));
    }
}
