//! Shared ingest counters and gauges.
//!
//! An [`IngestStats`] lives behind an `Arc` so the ingest loop (which owns
//! the increments) and the metrics endpoint (which samples) share it without
//! locking. Everything is a relaxed atomic: these are observability numbers,
//! not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters/gauges for one ingester, exported as `dn_ingest_*` through
/// the server's /metrics endpoint.
#[derive(Debug, Default)]
pub struct IngestStats {
    files_seen: AtomicU64,
    batches_applied: AtomicU64,
    rows_diffed: AtomicU64,
    retries: AtomicU64,
    torn_files: AtomicU64,
    polls: AtomicU64,
    lag_millis: AtomicU64,
}

/// Point-in-time copy of [`IngestStats`], safe to hold across a render.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestSnapshot {
    /// Cumulative count of drop-folder files scanned across all polls.
    pub files_seen: u64,
    /// Batches durably applied (journal committed after delivery).
    pub batches_applied: u64,
    /// Rows compared or loaded while synthesizing deltas.
    pub rows_diffed: u64,
    /// Transient delivery failures that were retried.
    pub retries: u64,
    /// Files skipped because they failed to parse (retried next poll).
    pub torn_files: u64,
    /// Completed poll cycles.
    pub polls: u64,
    /// Age in seconds of the oldest observed-but-unapplied change
    /// (0.0 when fully caught up).
    pub lag_seconds: f64,
}

impl IngestStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_files_seen(&self, n: u64) {
        self.files_seen.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_batches_applied(&self, n: u64) {
        self.batches_applied.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_rows_diffed(&self, n: u64) {
        self.rows_diffed.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_retries(&self, n: u64) {
        self.retries.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_torn_files(&self, n: u64) {
        self.torn_files.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_polls(&self, n: u64) {
        self.polls.fetch_add(n, Ordering::Relaxed);
    }

    pub fn set_lag_millis(&self, millis: u64) {
        self.lag_millis.store(millis, Ordering::Relaxed);
    }

    pub fn batches_applied(&self) -> u64 {
        self.batches_applied.load(Ordering::Relaxed)
    }

    /// Sample every counter at once.
    pub fn snapshot(&self) -> IngestSnapshot {
        IngestSnapshot {
            files_seen: self.files_seen.load(Ordering::Relaxed),
            batches_applied: self.batches_applied.load(Ordering::Relaxed),
            rows_diffed: self.rows_diffed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            torn_files: self.torn_files.load(Ordering::Relaxed),
            polls: self.polls.load(Ordering::Relaxed),
            lag_seconds: self.lag_millis.load(Ordering::Relaxed) as f64 / 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let stats = IngestStats::new();
        stats.add_files_seen(3);
        stats.add_batches_applied(2);
        stats.add_rows_diffed(40);
        stats.add_retries(1);
        stats.add_torn_files(1);
        stats.add_polls(5);
        stats.set_lag_millis(1500);
        let snap = stats.snapshot();
        assert_eq!(snap.files_seen, 3);
        assert_eq!(snap.batches_applied, 2);
        assert_eq!(snap.rows_diffed, 40);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.torn_files, 1);
        assert_eq!(snap.polls, 5);
        assert!((snap.lag_seconds - 1.5).abs() < 1e-12);
    }
}
