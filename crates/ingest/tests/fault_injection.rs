//! Fault injection for the exactly-once pipeline: a killed-and-restarted
//! ingester must resume from its journal to a final state bit-identical to
//! an uninterrupted run, and a redelivered batch must be a no-op.
//!
//! The kill is simulated at the worst seeded point — *mid-delivery*, after
//! the sink applied a batch but before the ingester could commit it (the
//! window between the journal's pending-intent save and the commit save).
//! [`CrashAfterApply`] injects exactly that: it lets the inner
//! [`CoordinatorSink`] apply the batch, then reports a transient failure
//! and, crucially, does *not* claim `transient_means_unapplied`, so the
//! ingester must treat the batch as possibly applied. Dropping the
//! `Ingester` then plays the part of `kill -9`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dn_ingest::{CoordinatorSink, DeltaSink, IngestConfig, IngestStats, Ingester, SinkError};
use dn_service::{serve_sharded, Coordinator, CoordinatorHandle, ServiceConfig};
use domainnet::Measure;
use lake::delta::MutableLake;
use lake::LakeDelta;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        measures: vec![Measure::lcc(), Measure::exact_bc()],
        cache_capacity: 8,
        prune_single_attribute_values: true,
        threads: 1,
    }
}

fn fresh_engine() -> (CoordinatorHandle, Arc<Mutex<Coordinator>>) {
    let (handle, coordinator) = serve_sharded(MutableLake::new(), service_config(), 1);
    (handle, Arc::new(Mutex::new(coordinator)))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dn_ingest_fault_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ingest_config(dir: &Path) -> IngestConfig {
    let mut config = IngestConfig::new(dir);
    // Keep the journal out of the drop-folder so cold rebuilds via
    // load_dir see exactly the CSV generation and nothing else.
    config.journal_path = dir.with_extension("journal");
    config.poll_interval = Duration::from_millis(1);
    config.max_attempts = 1; // injected transients surface immediately
    config.backoff = Duration::from_millis(1);
    config
}

/// Poll until a cycle reports fully caught up (two polls minimum: the
/// stability guard withholds a fresh file for one cycle).
fn drain<S: DeltaSink>(ingester: &mut Ingester<S>) {
    for _ in 0..20 {
        let report = ingester.poll_once().expect("drain poll");
        if report.caught_up && !ingester.has_pending() {
            return;
        }
    }
    panic!("ingester did not catch up within 20 polls");
}

/// Full ranking as value -> score bits; large k so ties can't truncate
/// differently between runs.
fn ranking(handle: &CoordinatorHandle) -> BTreeMap<String, u64> {
    let reader = handle.reader();
    let top = reader
        .top_k(Measure::exact_bc(), 10_000)
        .expect("bc ranking");
    top.iter()
        .map(|s| (s.value.clone(), s.score.to_bits()))
        .collect()
}

/// Applies through the inner sink, then fails "transiently" on chosen
/// delivery sequence numbers — exactly once each — without admitting the
/// batch went through. This is the HTTP ambiguity (timed-out POST that
/// landed) reproduced in-process.
struct CrashAfterApply<S> {
    inner: S,
    crash_on: Vec<u64>,
}

impl<S: DeltaSink> DeltaSink for CrashAfterApply<S> {
    fn deliver(&mut self, seq: u64, deltas: &[LakeDelta]) -> Result<(), SinkError> {
        self.inner.deliver(seq, deltas)?;
        if let Some(at) = self.crash_on.iter().position(|&s| s == seq) {
            self.crash_on.remove(at);
            return Err(SinkError::Transient("injected crash after apply".into()));
        }
        Ok(())
    }

    fn transient_means_unapplied(&self) -> bool {
        false
    }
}

fn drift_stream() -> datagen::DriftStream {
    datagen::DriftStream::new(datagen::DriftConfig {
        seed: 7,
        tables: 4,
        rows_per_table: 20,
        drifters: 2,
        churn_per_generation: 2,
    })
}

/// Run the full six-generation drift sequence uninterrupted and return the
/// final ranking.
fn uninterrupted_run(dir: &Path) -> BTreeMap<String, u64> {
    let (handle, coordinator) = fresh_engine();
    let mut stream = drift_stream();
    let mut ingester = Ingester::new(
        ingest_config(dir),
        CoordinatorSink::new(coordinator),
        Arc::new(IngestStats::default()),
    )
    .expect("uninterrupted ingester");
    for _ in 0..6 {
        stream.write_next_generation(dir).expect("write generation");
        drain(&mut ingester);
    }
    ranking(&handle)
}

/// Assert every value matches within `1e-9` and the value sets are equal.
fn assert_rankings_close(a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>, what: &str) {
    let keys_a: Vec<&String> = a.keys().collect();
    let keys_b: Vec<&String> = b.keys().collect();
    assert_eq!(keys_a, keys_b, "{what}: ranked value sets differ");
    for (value, bits) in a {
        let x = f64::from_bits(*bits);
        let y = f64::from_bits(b[value]);
        assert!((x - y).abs() <= 1e-9, "{what}: {value}: {x} vs {y}");
    }
}

/// Cold-build the folder's final contents into a fresh engine and return
/// its ranking.
fn cold_ranking(dir: &Path) -> BTreeMap<String, u64> {
    let catalog = lake::loader::load_dir(
        dir,
        lake::loader::LoadOptions {
            strict: true,
            ..lake::loader::LoadOptions::default()
        },
    )
    .expect("cold load");
    let (handle, _coordinator) =
        serve_sharded(MutableLake::from_catalog(&catalog), service_config(), 1);
    ranking(&handle)
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_file(dir.with_extension("journal"));
}

/// Kill the running ingester mid-delivery of the folder's next batch:
/// installs a [`CrashAfterApply`] ingester, polls until the injected crash
/// fires, and "kills" it by dropping it with the pending intent journaled.
fn kill_mid_delivery(dir: &Path, coordinator: &Arc<Mutex<Coordinator>>, seq: u64) {
    let mut victim = Ingester::new(
        ingest_config(dir),
        CrashAfterApply {
            inner: CoordinatorSink::new(Arc::clone(coordinator)),
            crash_on: vec![seq],
        },
        Arc::new(IngestStats::default()),
    )
    .expect("victim ingester");
    let err = loop {
        match victim.poll_once() {
            Ok(report) => assert!(!report.caught_up, "crash never fired"),
            Err(e) => break e,
        }
    };
    assert!(err.is_transient(), "injected crash is transient: {err}");
    assert!(victim.has_pending(), "the batch intent survives the kill");
    // Dropping with a journaled pending batch == kill -9 mid-delivery.
}

#[test]
fn killed_and_restarted_ingester_matches_uninterrupted_run() {
    let dir_a = scratch("uninterrupted");
    let dir_b = scratch("killed");
    let ranking_a = uninterrupted_run(&dir_a);
    assert!(!ranking_a.is_empty(), "run A ranked something");

    // Run B: the identical generation sequence, but the ingester is killed
    // mid-delivery at generations 2 and 4 — after the sink applied the
    // batch, before the commit reached the journal — and restarted from
    // the journal each time. Because the journal-driven resume redelivers
    // the same pending batch (a no-op against the already-applied state)
    // and then diffs from the same re-parsed base, the delta sequence is
    // identical and the final state must match run A bit for bit.
    let (handle_b, coordinator_b) = fresh_engine();
    let mut stream_b = drift_stream();
    let mut seq = 0;
    for generation in 0..6 {
        stream_b.write_next_generation(&dir_b).expect("write gen B");
        if generation == 2 || generation == 4 {
            kill_mid_delivery(&dir_b, &coordinator_b, seq + 1);
        }
        let mut ingester = Ingester::new(
            ingest_config(&dir_b),
            CoordinatorSink::new(Arc::clone(&coordinator_b)),
            Arc::new(IngestStats::default()),
        )
        .expect("ingester B");
        drain(&mut ingester);
        seq = ingester.last_seq();
    }

    let ranking_b = ranking(&handle_b);
    assert_eq!(
        ranking_a, ranking_b,
        "killed-and-restarted run diverged from the uninterrupted run"
    );

    // And the end state matches a cold build of the final folder to 1e-9.
    assert_rankings_close(&cold_ranking(&dir_b), &ranking_b, "cold vs incremental");

    cleanup(&dir_a);
    cleanup(&dir_b);
}

#[test]
fn backlog_written_during_downtime_converges() {
    let dir_a = scratch("backlog_reference");
    let dir_b = scratch("backlog");
    let ranking_a = uninterrupted_run(&dir_a);

    // Run B: killed mid-delivery of generation 2, and generation 3 lands
    // while the ingester is down. On restart the journal resolves the
    // pending generation-2 batch, but the downtime overwrite cost the
    // differ its base for generation 3, so those files are re-ingested by
    // rewrite (remove + add). That changes the floating-point accumulation
    // path in the engine's incremental maintenance — the states agree to
    // 1e-9 (the golden-measure gate), not necessarily bit for bit.
    let (handle_b, coordinator_b) = fresh_engine();
    let mut stream_b = drift_stream();
    let mut seq = 0;
    let mut written = 0;
    while written < 6 {
        stream_b.write_next_generation(&dir_b).expect("write gen B");
        written += 1;
        if written == 3 {
            // Kill mid-delivery of generation 2, then generation 3 arrives
            // while nobody is watching.
            kill_mid_delivery(&dir_b, &coordinator_b, seq + 1);
            stream_b.write_next_generation(&dir_b).expect("write gen 3");
            written += 1;
        }
        let mut ingester = Ingester::new(
            ingest_config(&dir_b),
            CoordinatorSink::new(Arc::clone(&coordinator_b)),
            Arc::new(IngestStats::default()),
        )
        .expect("ingester B");
        drain(&mut ingester);
        seq = ingester.last_seq();
    }

    let ranking_b = ranking(&handle_b);
    assert_rankings_close(&ranking_a, &ranking_b, "uninterrupted vs backlog");
    assert_rankings_close(&cold_ranking(&dir_b), &ranking_b, "cold vs backlog");

    cleanup(&dir_a);
    cleanup(&dir_b);
}

#[test]
fn redelivered_batch_is_a_noop() {
    let dir = scratch("redelivery");

    // Reference: one clean application of generation 0.
    let (ref_handle, ref_coordinator) = fresh_engine();
    let mut ref_stream = drift_stream();
    ref_stream.write_next_generation(&dir).expect("write gen 0");
    let mut reference = Ingester::new(
        ingest_config(&dir),
        CoordinatorSink::new(ref_coordinator),
        Arc::new(IngestStats::default()),
    )
    .expect("reference ingester");
    drain(&mut reference);
    let expected = ranking(&ref_handle);
    drop(reference);
    let _ = std::fs::remove_file(dir.with_extension("journal"));

    // Victim: the first delivery applies but reports a transient failure,
    // so the same batch is redelivered on the next poll.
    let (handle, coordinator) = fresh_engine();
    let stats = Arc::new(IngestStats::default());
    let mut ingester = Ingester::new(
        ingest_config(&dir),
        CrashAfterApply {
            inner: CoordinatorSink::new(coordinator),
            crash_on: vec![1],
        },
        Arc::clone(&stats),
    )
    .expect("victim ingester");
    let err = loop {
        match ingester.poll_once() {
            Ok(_) => {}
            Err(e) => break e,
        }
    };
    assert!(err.is_transient(), "{err}");
    assert!(ingester.has_pending());
    assert_eq!(stats.batches_applied(), 0, "not yet journaled as applied");

    // Redelivery: the duplicate must change nothing and the journal must
    // count the batch exactly once.
    let report = ingester.poll_once().expect("redelivery poll");
    assert!(report.redelivered, "the pending batch was redelivered");
    assert!(!ingester.has_pending(), "redelivery resolved the intent");
    drain(&mut ingester);
    assert_eq!(
        stats.batches_applied(),
        1,
        "duplicate delivery must not double-count"
    );
    assert_eq!(
        ranking(&handle),
        expected,
        "duplicate delivery changed the served state"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(dir.with_extension("journal"));
}
