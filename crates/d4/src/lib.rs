//! # `d4` — a from-scratch reimplementation of the D4 domain-discovery baseline
//!
//! The paper compares DomainNet against *D4* (Ota, Müller, Freire,
//! Srivastava — "Data-Driven Domain Discovery for Structured Datasets",
//! PVLDB 2020), the state-of-the-art unsupervised domain-discovery algorithm:
//! D4 clusters the string columns of a data lake into *domains* (sets of
//! values belonging to one semantic type) and assigns columns to the
//! discovered domains. Repurposed as a homograph detector, any value that is
//! a member of more than one discovered domain is declared a homograph
//! (§5, "Comparison to a baseline").
//!
//! This crate reimplements D4 at the granularity the paper's comparison
//! relies on:
//!
//! 1. **String columns only** — D4 does not discover domains over numeric
//!    data ([`D4Config::string_column_min_fraction`]), which is why the paper
//!    cannot run it on the numeric-heavy TUS benchmark.
//! 2. **Robust column signatures** — each column's signature is its distinct
//!    value set minus values whose *context* is heterogeneous (the columns
//!    containing the value barely overlap with one another). This mirrors
//!    D4's robust-signature step, whose purpose is to keep ambiguous values
//!    from gluing unrelated columns together — and it is exactly the step
//!    that degrades as homographs are injected (Figure 10): every excluded
//!    value removes evidence that two unionable columns belong together.
//! 3. **Domain formation** — columns whose robust signatures overlap strongly
//!    (overlap coefficient ≥ [`D4Config::merge_threshold`]) are merged
//!    transitively; a connected group with at least
//!    [`D4Config::min_domain_columns`] columns becomes a discovered domain
//!    whose value set is the union of its member columns' values.
//! 4. **Column assignment** — every string column is assigned to each domain
//!    that covers at least [`D4Config::assignment_threshold`] of its values;
//!    columns can therefore belong to several domains, and the
//!    maximum / average number of domains per column are reported just as in
//!    the paper's Figure 10 discussion.
//!
//! The resulting behaviour matches the baseline's role in the paper: it
//! discovers clean domains on unambiguous data, covers only a subset of the
//! columns (single-column types get no domain), fragments into more domains
//! as homographs are injected, and — used as a homograph detector — reaches
//! far lower precision/recall than DomainNet's centrality ranking.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use lake::catalog::{AttrId, LakeCatalog};
use lake::value::ValueId;
use serde::{Deserialize, Serialize};

/// Configuration of the simplified D4 algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct D4Config {
    /// Minimum fraction of non-numeric distinct values for a column to be
    /// considered a string column (D4 ignores numeric columns).
    pub string_column_min_fraction: f64,
    /// Overlap coefficient (|A∩B| / min(|A|,|B|)) two robust signatures must
    /// reach for their columns to be merged into the same domain.
    pub merge_threshold: f64,
    /// A value appearing in several columns is excluded from robust
    /// signatures when the average pairwise overlap of those columns is below
    /// this threshold (its context is heterogeneous — it looks ambiguous).
    pub ambiguity_context_threshold: f64,
    /// A column is assigned to a domain when the domain covers at least this
    /// fraction of the column's distinct values.
    pub assignment_threshold: f64,
    /// Minimum number of member columns for a merged group to count as a
    /// discovered domain.
    pub min_domain_columns: usize,
    /// Cap on the number of containing columns examined per value when
    /// scoring context heterogeneity (keeps the pre-pass near-linear).
    pub max_context_columns: usize,
}

impl Default for D4Config {
    fn default() -> Self {
        D4Config {
            string_column_min_fraction: 0.5,
            merge_threshold: 0.5,
            ambiguity_context_threshold: 0.25,
            assignment_threshold: 0.5,
            min_domain_columns: 2,
            max_context_columns: 6,
        }
    }
}

/// A discovered domain: a set of values supported by a group of columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Domain {
    /// Dense domain id.
    pub id: usize,
    /// Qualified names (`table.column`) of the member columns.
    pub columns: Vec<String>,
    /// The domain's value set (normalized values).
    pub values: BTreeSet<String>,
}

/// The result of a D4 run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct D4Output {
    /// Discovered domains.
    pub domains: Vec<Domain>,
    /// For every string column (qualified name), the ids of the domains it
    /// was assigned to (possibly empty, possibly several).
    pub assignments: BTreeMap<String, Vec<usize>>,
    /// Number of string columns that participated in discovery.
    pub string_columns: usize,
}

impl D4Output {
    /// Number of discovered domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Number of string columns assigned to at least one domain.
    pub fn covered_columns(&self) -> usize {
        self.assignments.values().filter(|d| !d.is_empty()).count()
    }

    /// Maximum number of domains assigned to any single column.
    pub fn max_domains_per_column(&self) -> usize {
        self.assignments.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Average number of domains assigned per assigned column.
    pub fn avg_domains_per_column(&self) -> f64 {
        let assigned: Vec<usize> = self
            .assignments
            .values()
            .map(Vec::len)
            .filter(|&n| n > 0)
            .collect();
        if assigned.is_empty() {
            return 0.0;
        }
        assigned.iter().sum::<usize>() as f64 / assigned.len() as f64
    }

    /// The homographs implied by the discovery result: values that are
    /// members of more than one discovered domain (the baseline rule used in
    /// the paper's §5.1 comparison).
    pub fn homographs(&self) -> BTreeSet<String> {
        let mut seen: HashMap<&str, usize> = HashMap::new();
        let mut result = BTreeSet::new();
        for domain in &self.domains {
            for value in &domain.values {
                let count = seen.entry(value.as_str()).or_insert(0);
                *count += 1;
                if *count == 2 {
                    result.insert(value.clone());
                }
            }
        }
        result
    }
}

/// Run the (simplified) D4 domain-discovery algorithm over a lake.
pub fn discover(lake: &LakeCatalog, config: D4Config) -> D4Output {
    // ------------------------------------------------------------------
    // 1. Select string columns and materialize their distinct value sets.
    // ------------------------------------------------------------------
    let mut columns: Vec<AttrId> = Vec::new();
    let mut value_sets: Vec<HashSet<ValueId>> = Vec::new();
    for attr in lake.attribute_ids() {
        let column = lake.attribute(attr).expect("attribute ids are dense");
        if column.distinct_count() == 0 {
            continue;
        }
        if 1.0 - column.numeric_fraction() < config.string_column_min_fraction {
            continue;
        }
        columns.push(attr);
        value_sets.push(lake.attribute_values(attr).iter().copied().collect());
    }
    let string_columns = columns.len();
    let column_index: HashMap<AttrId, usize> =
        columns.iter().enumerate().map(|(i, &a)| (a, i)).collect();

    // ------------------------------------------------------------------
    // 2. Robust signatures: drop values whose containing columns barely
    //    overlap with one another (heterogeneous context = looks ambiguous).
    // ------------------------------------------------------------------
    let mut robust: Vec<HashSet<ValueId>> = value_sets.clone();
    for vid in lake.values_in_at_least(2) {
        let holder_cols: Vec<usize> = lake
            .value_attributes(vid)
            .iter()
            .filter_map(|a| column_index.get(a).copied())
            .take(config.max_context_columns)
            .collect();
        if holder_cols.len() < 2 {
            continue;
        }
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..holder_cols.len() {
            for j in i + 1..holder_cols.len() {
                total +=
                    overlap_coefficient(&value_sets[holder_cols[i]], &value_sets[holder_cols[j]]);
                pairs += 1;
            }
        }
        let context_cohesion = if pairs == 0 {
            1.0
        } else {
            total / pairs as f64
        };
        if context_cohesion < config.ambiguity_context_threshold {
            for &c in &holder_cols {
                robust[c].remove(&vid);
            }
        }
    }

    // ------------------------------------------------------------------
    // 3. Merge columns whose robust signatures overlap strongly
    //    (single-linkage via union-find).
    // ------------------------------------------------------------------
    let mut dsu = DisjointSet::new(columns.len());
    for i in 0..columns.len() {
        for j in i + 1..columns.len() {
            if robust[i].is_empty() || robust[j].is_empty() {
                continue;
            }
            if overlap_coefficient(&robust[i], &robust[j]) >= config.merge_threshold {
                dsu.union(i, j);
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..columns.len() {
        groups.entry(dsu.find(i)).or_default().push(i);
    }

    // ------------------------------------------------------------------
    // 4. Groups with enough member columns become domains.
    // ------------------------------------------------------------------
    let mut domains = Vec::new();
    for members in groups.values() {
        if members.len() < config.min_domain_columns {
            continue;
        }
        let mut values = BTreeSet::new();
        let mut names = Vec::new();
        for &m in members {
            names.push(
                lake.attribute_ref(columns[m])
                    .expect("attribute resolves")
                    .qualified(),
            );
            for &vid in &value_sets[m] {
                values.insert(lake.value(vid).expect("value resolves").to_owned());
            }
        }
        names.sort();
        domains.push(Domain {
            id: domains.len(),
            columns: names,
            values,
        });
    }

    // ------------------------------------------------------------------
    // 5. Assign every string column to the domains that cover it.
    // ------------------------------------------------------------------
    let mut assignments: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, &attr) in columns.iter().enumerate() {
        let name = lake
            .attribute_ref(attr)
            .expect("attribute resolves")
            .qualified();
        let column_values: BTreeSet<String> = value_sets[i]
            .iter()
            .map(|&vid| lake.value(vid).expect("value resolves").to_owned())
            .collect();
        let mut assigned = Vec::new();
        for domain in &domains {
            let covered = column_values
                .iter()
                .filter(|v| domain.values.contains(*v))
                .count();
            if !column_values.is_empty()
                && covered as f64 / column_values.len() as f64 >= config.assignment_threshold
            {
                assigned.push(domain.id);
            }
        }
        assignments.insert(name, assigned);
    }

    D4Output {
        domains,
        assignments,
        string_columns,
    }
}

fn overlap_coefficient(a: &HashSet<ValueId>, b: &HashSet<ValueId>) -> f64 {
    let min = a.len().min(b.len());
    if min == 0 {
        return 0.0;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let inter = small.iter().filter(|v| large.contains(v)).count();
    inter as f64 / min as f64
}

/// Minimal union-find used for single-linkage clustering of columns.
#[derive(Debug)]
struct DisjointSet {
    parent: Vec<usize>,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake::table::TableBuilder;

    /// A tiny lake with two obvious domains (animals, cities), each supported
    /// by two columns, plus a numeric column D4 must ignore.
    fn two_domain_lake() -> LakeCatalog {
        let animals = ["Panda", "Lemur", "Jaguar", "Otter", "Badger", "Walrus"];
        let cities = [
            "Boston", "Memphis", "Atlanta", "Denver", "Seattle", "Austin",
        ];
        let t1 = TableBuilder::new("zoo_a")
            .column("animal", animals)
            .column("count", ["1", "2", "3", "4", "5", "6"])
            .build()
            .unwrap();
        let t2 = TableBuilder::new("zoo_b")
            .column("species", animals)
            .column("city", cities)
            .build()
            .unwrap();
        let t3 = TableBuilder::new("travel")
            .column("destination", cities)
            .column("nights", ["7", "8", "9", "10", "11", "12"])
            .build()
            .unwrap();
        LakeCatalog::from_tables([t1, t2, t3]).unwrap()
    }

    #[test]
    fn discovers_clean_domains_and_ignores_numeric_columns() {
        let lake = two_domain_lake();
        let out = discover(&lake, D4Config::default());
        assert_eq!(out.domain_count(), 2, "animals and cities");
        assert_eq!(out.string_columns, 4);
        // Numeric columns never show up in the assignments.
        assert!(!out.assignments.contains_key("zoo_a.count"));
        assert!(!out.assignments.contains_key("travel.nights"));
        // Each string column is assigned to exactly one domain.
        assert_eq!(out.covered_columns(), 4);
        assert_eq!(out.max_domains_per_column(), 1);
        // No homographs in a clean lake.
        assert!(out.homographs().is_empty());
    }

    #[test]
    fn value_in_two_domains_is_a_homograph() {
        // "Jaguar" appears in both animal columns and in a company column
        // that clusters with another company column.
        let animals = ["Panda", "Lemur", "Jaguar", "Otter", "Badger", "Walrus"];
        let companies = ["Google", "Amazon", "Jaguar", "Apple", "Shell", "Nestle"];
        let t1 = TableBuilder::new("zoo_a")
            .column("animal", animals)
            .build()
            .unwrap();
        let t2 = TableBuilder::new("zoo_b")
            .column("species", animals)
            .build()
            .unwrap();
        let t3 = TableBuilder::new("firms_a")
            .column("company", companies)
            .build()
            .unwrap();
        let t4 = TableBuilder::new("firms_b")
            .column("name", companies)
            .build()
            .unwrap();
        let lake = LakeCatalog::from_tables([t1, t2, t3, t4]).unwrap();
        let out = discover(&lake, D4Config::default());
        assert_eq!(out.domain_count(), 2);
        let homographs = out.homographs();
        assert!(homographs.contains("JAGUAR"), "{homographs:?}");
        assert_eq!(homographs.len(), 1);
    }

    #[test]
    fn single_column_types_get_no_domain() {
        // A type supported by only one column is not discovered (this is what
        // limits D4's recall as a homograph detector on SB).
        let t1 = TableBuilder::new("a")
            .column("animal", ["Panda", "Lemur", "Jaguar"])
            .build()
            .unwrap();
        let t2 = TableBuilder::new("b")
            .column("species", ["Panda", "Lemur", "Jaguar"])
            .build()
            .unwrap();
        let t3 = TableBuilder::new("c")
            .column("grocery", ["Apple", "Olive", "Pumpkin"])
            .build()
            .unwrap();
        let lake = LakeCatalog::from_tables([t1, t2, t3]).unwrap();
        let out = discover(&lake, D4Config::default());
        assert_eq!(out.domain_count(), 1);
        assert_eq!(out.assignments["c.grocery"], Vec::<usize>::new());
    }

    #[test]
    fn on_sb_d4_covers_a_subset_and_underperforms_on_homographs() {
        let generated = datagen::sb::SbGenerator::new(7).generate();
        let out = discover(&generated.catalog, D4Config::default());
        // D4 discovers some domains but does not cover all string columns
        // (the paper: 4 domains over 14 of 39 columns).
        assert!(out.domain_count() >= 2);
        assert!(out.covered_columns() < out.string_columns);
        // Its induced homograph set misses a large part of the ground truth.
        let truth = generated.homograph_set();
        let found = out.homographs();
        let hits = found.intersection(&truth).count();
        let recall = hits as f64 / truth.len() as f64;
        assert!(
            recall < 0.8,
            "D4-based recall unexpectedly high: {recall} ({hits}/{})",
            truth.len()
        );
    }

    #[test]
    fn injected_homographs_do_not_reduce_domain_count() {
        // Figure 10's direction: more injected homographs → at least as many
        // (typically more) discovered domains, never a cleaner clustering.
        let generated =
            datagen::tus::TusGenerator::new(datagen::tus::TusConfig::small(31)).generate();
        let clean = datagen::inject::remove_homographs(&generated);
        let base = discover(&clean.catalog, D4Config::default()).domain_count();
        let injected = datagen::inject::inject_homographs(
            &clean,
            datagen::inject::InjectionConfig {
                count: 30,
                meanings: 4,
                min_attr_cardinality: 0,
                seed: 5,
            },
        )
        .expect("injection succeeds");
        let with = discover(&injected.lake.catalog, D4Config::default()).domain_count();
        assert!(
            with >= base,
            "domain count should not shrink when homographs are injected: {base} -> {with}"
        );
    }

    #[test]
    fn empty_lake_yields_empty_output() {
        let lake = LakeCatalog::new();
        let out = discover(&lake, D4Config::default());
        assert_eq!(out.domain_count(), 0);
        assert_eq!(out.string_columns, 0);
        assert!(out.homographs().is_empty());
        assert_eq!(out.avg_domains_per_column(), 0.0);
    }
}
