//! Incremental lake mutation: deltas, effects, and the mutable catalog.
//!
//! [`crate::catalog::LakeCatalog`] treats the lake as a static snapshot —
//! every change means rebuilding the catalog (and everything downstream) from
//! scratch. Real lakes mutate continuously: tables arrive, get deprecated,
//! and have cells rewritten. This module provides the mutation half of the
//! substrate:
//!
//! * [`LakeOp`] / [`LakeDelta`] — a recorded batch of table-level mutations
//!   (add table, remove table, replace a value inside one attribute).
//! * [`MutableLake`] — a catalog that applies deltas **in place** while
//!   keeping [`ValueId`]s and [`AttrId`]s stable across mutations. Removed
//!   tables are tombstoned (their attribute slots stay allocated but empty)
//!   and the value interner is append-only, so downstream consumers — most
//!   importantly the incremental bipartite-graph maintenance in `dn-graph` —
//!   can patch their state instead of rebuilding it.
//! * [`DeltaEffects`] — the exact set of (attribute, value) incidences an
//!   applied delta added and removed. This is the "change list" the
//!   incremental graph maintenance consumes.
//! * [`LakeView`] — the read-only interface shared by [`LakeCatalog`] and
//!   [`MutableLake`], which is all the DomainNet graph builder needs.
//!
//! ## Example
//!
//! ```
//! use lake::delta::{LakeDelta, LakeView, MutableLake};
//! use lake::table::TableBuilder;
//!
//! let mut lake = MutableLake::new();
//! let zoo = TableBuilder::new("zoo")
//!     .column("animal", ["Jaguar", "Panda"])
//!     .build()
//!     .unwrap();
//! let cars = TableBuilder::new("cars")
//!     .column("brand", ["Jaguar", "Fiat"])
//!     .build()
//!     .unwrap();
//!
//! let effects = lake.apply(&LakeDelta::new().add_table(zoo).add_table(cars)).unwrap();
//! assert_eq!(effects.added_incidences.len(), 4);
//! assert_eq!(lake.live_table_count(), 2);
//!
//! // Removing a table tombstones its attributes; value ids stay stable.
//! let jaguar = lake.value_id("JAGUAR").unwrap();
//! lake.apply(&LakeDelta::new().remove_table("cars")).unwrap();
//! assert_eq!(lake.value_id("JAGUAR"), Some(jaguar));
//! assert_eq!(lake.value_attributes(jaguar).len(), 1);
//! ```

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::catalog::{AttrId, AttrRef, LakeCatalog};
use crate::column::Column;
use crate::error::LakeError;
use crate::table::Table;
use crate::value::{normalize, ValueId, ValueInterner};
use crate::Result;

// ---------------------------------------------------------------------------
// The read-only view shared by the static and the mutable catalog
// ---------------------------------------------------------------------------

/// The read-only lake interface consumed by the DomainNet graph builder.
///
/// Both the immutable [`LakeCatalog`] and the incremental [`MutableLake`]
/// implement this, so the pipeline can be built from either without caring
/// whether the lake is a static snapshot or a mutating one. For a
/// [`MutableLake`], all methods describe the **live** state only: tombstoned
/// attributes contribute no incidences, and values that no longer occur
/// anywhere are reported in zero attributes.
pub trait LakeView {
    /// Number of distinct normalized values ever interned (including, for a
    /// mutable lake, values that no longer occur anywhere).
    fn value_count(&self) -> usize;
    /// Number of attribute slots ever allocated (including tombstones).
    fn attribute_count(&self) -> usize;
    /// Total number of live (attribute, distinct value) incidences.
    fn incidence_count(&self) -> usize;
    /// The normalized string behind a value id.
    fn value(&self, id: ValueId) -> Option<&str>;
    /// The `table.column` reference of a live attribute.
    fn attribute_ref(&self, id: AttrId) -> Option<AttrRef>;
    /// Live attributes in which a value occurs (sorted ascending by id).
    fn value_attributes(&self, id: ValueId) -> &[AttrId];
    /// Values occurring in at least `min_attrs` live attributes.
    fn values_in_at_least(&self, min_attrs: usize) -> Vec<ValueId>;
    /// `(AttrId, sorted distinct ValueIds)` for every live attribute.
    fn live_attribute_values(&self) -> Vec<(AttrId, &[ValueId])>;
}

impl LakeView for LakeCatalog {
    fn value_count(&self) -> usize {
        LakeCatalog::value_count(self)
    }
    fn attribute_count(&self) -> usize {
        LakeCatalog::attribute_count(self)
    }
    fn incidence_count(&self) -> usize {
        LakeCatalog::incidence_count(self)
    }
    fn value(&self, id: ValueId) -> Option<&str> {
        LakeCatalog::value(self, id)
    }
    fn attribute_ref(&self, id: AttrId) -> Option<AttrRef> {
        LakeCatalog::attribute_ref(self, id)
    }
    fn value_attributes(&self, id: ValueId) -> &[AttrId] {
        LakeCatalog::value_attributes(self, id)
    }
    fn values_in_at_least(&self, min_attrs: usize) -> Vec<ValueId> {
        LakeCatalog::values_in_at_least(self, min_attrs)
    }
    fn live_attribute_values(&self) -> Vec<(AttrId, &[ValueId])> {
        self.attribute_value_pairs().collect()
    }
}

// ---------------------------------------------------------------------------
// Deltas
// ---------------------------------------------------------------------------

/// One table-level mutation of the lake.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LakeOp {
    /// Add a new table (its name must not collide with a live table).
    AddTable(Table),
    /// Remove a live table by name.
    RemoveTable(String),
    /// Replace every cell of one column whose normalized form equals
    /// `target` (already normalized) with `replacement` (raw).
    ReplaceValue {
        /// Name of the (live) table to mutate.
        table: String,
        /// Name of the column inside that table.
        column: String,
        /// The normalized value to replace.
        target: String,
        /// The raw replacement text.
        replacement: String,
    },
}

/// A recorded batch of lake mutations, applied in order by
/// [`MutableLake::apply`]. Application is **not** atomic across ops — see
/// [`MutableLake::apply`] for the failure semantics.
///
/// ```
/// use lake::delta::LakeDelta;
/// use lake::table::TableBuilder;
///
/// let t = TableBuilder::new("t").column("c", ["x"]).build().unwrap();
/// let delta = LakeDelta::new()
///     .add_table(t)
///     .replace_value("t", "c", "X", "y");
/// assert_eq!(delta.len(), 2);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LakeDelta {
    ops: Vec<LakeOp>,
}

impl LakeDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an [`LakeOp::AddTable`] op.
    pub fn add_table(mut self, table: Table) -> Self {
        self.ops.push(LakeOp::AddTable(table));
        self
    }

    /// Append an [`LakeOp::RemoveTable`] op.
    pub fn remove_table(mut self, name: impl Into<String>) -> Self {
        self.ops.push(LakeOp::RemoveTable(name.into()));
        self
    }

    /// Append an [`LakeOp::ReplaceValue`] op. `target` is normalized here, so
    /// callers may pass the raw form.
    pub fn replace_value(
        mut self,
        table: impl Into<String>,
        column: impl Into<String>,
        target: &str,
        replacement: impl Into<String>,
    ) -> Self {
        self.ops.push(LakeOp::ReplaceValue {
            table: table.into(),
            column: column.into(),
            target: normalize(target),
            replacement: replacement.into(),
        });
        self
    }

    /// Append an already-built op.
    pub fn push(&mut self, op: LakeOp) {
        self.ops.push(op);
    }

    /// Concatenate another delta's ops onto this one — a convenience for
    /// callers composing one delta from several recorded pieces before
    /// applying it. (The serving layer's writer batches differently: it
    /// keeps staged deltas separate and hands them to
    /// [`MutableLake::apply_batch`] in one call.)
    pub fn merge(mut self, other: LakeDelta) -> Self {
        self.ops.extend(other.ops);
        self
    }

    /// The recorded ops in application order.
    pub fn ops(&self) -> &[LakeOp] {
        &self.ops
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta records no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The incidence-level outcome of applying a [`LakeDelta`].
///
/// This is the precise "change list" that incremental consumers need: which
/// values were interned for the first time, which attribute slots were
/// allocated or tombstoned, and exactly which (attribute, value) incidences
/// appeared and disappeared. Incidences are deduplicated: an incidence both
/// removed and re-added inside one delta cancels out.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaEffects {
    /// Values interned for the first time by this delta.
    pub added_values: Vec<ValueId>,
    /// Attribute slots allocated by this delta.
    pub added_attrs: Vec<AttrId>,
    /// Attribute slots tombstoned by this delta.
    pub removed_attrs: Vec<AttrId>,
    /// Live incidences that appeared: `(attribute, value)`.
    pub added_incidences: Vec<(AttrId, ValueId)>,
    /// Live incidences that disappeared: `(attribute, value)`.
    pub removed_incidences: Vec<(AttrId, ValueId)>,
    /// Number of raw cells rewritten by replace ops.
    pub cells_rewritten: usize,
}

impl DeltaEffects {
    /// Whether the delta changed nothing observable.
    pub fn is_empty(&self) -> bool {
        self.added_values.is_empty()
            && self.added_attrs.is_empty()
            && self.removed_attrs.is_empty()
            && self.added_incidences.is_empty()
            && self.removed_incidences.is_empty()
            && self.cells_rewritten == 0
    }

    /// Fold another effects record into this one (ops applied in sequence).
    pub fn merge(&mut self, other: DeltaEffects) {
        self.added_values.extend(other.added_values);
        self.added_attrs.extend(other.added_attrs);
        self.removed_attrs.extend(other.removed_attrs);
        self.added_incidences.extend(other.added_incidences);
        self.removed_incidences.extend(other.removed_incidences);
        self.cells_rewritten += other.cells_rewritten;
    }

    /// Cancel incidences that were both removed and re-added (or vice versa)
    /// within the merged record, and deduplicate everything else.
    fn normalize(&mut self) {
        self.added_values.sort_unstable();
        self.added_values.dedup();
        self.added_attrs.sort_unstable();
        self.added_attrs.dedup();
        self.removed_attrs.sort_unstable();
        self.removed_attrs.dedup();
        // An attribute both added and removed by the same delta stays listed
        // in both: the slot was allocated *and* is now dead.
        self.added_incidences.sort_unstable();
        self.added_incidences.dedup();
        self.removed_incidences.sort_unstable();
        self.removed_incidences.dedup();
        let (mut add, mut rem) = (Vec::new(), Vec::new());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.added_incidences.len() && j < self.removed_incidences.len() {
            match self.added_incidences[i].cmp(&self.removed_incidences[j]) {
                std::cmp::Ordering::Less => {
                    add.push(self.added_incidences[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    rem.push(self.removed_incidences[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    // Net no-op: the incidence ends in the state it started.
                    i += 1;
                    j += 1;
                }
            }
        }
        add.extend_from_slice(&self.added_incidences[i..]);
        rem.extend_from_slice(&self.removed_incidences[j..]);
        self.added_incidences = add;
        self.removed_incidences = rem;
    }
}

// ---------------------------------------------------------------------------
// The mutable lake
// ---------------------------------------------------------------------------

/// A lake catalog that supports in-place mutation with **stable identifiers**.
///
/// The key contract, and the reason this type exists next to
/// [`LakeCatalog`], is identifier stability:
///
/// * [`ValueId`]s are append-only. A value that disappears from every live
///   attribute keeps its id (it simply occurs in zero attributes); if it
///   later reappears, the same id is reused.
/// * [`AttrId`]s are append-only. Removing a table *tombstones* its
///   attribute slots — they stay allocated but hold no incidences. Re-adding
///   a table of the same name allocates fresh slots.
///
/// Stability is what lets the bipartite graph (and the centrality scores on
/// top of it) be *patched* instead of rebuilt: node indices derived from
/// these ids never shift underneath a consumer.
///
/// Use [`MutableLake::snapshot`] to compact the live state back into an
/// ordinary [`LakeCatalog`] (fresh, dense ids).
#[derive(Debug, Default, Clone)]
pub struct MutableLake {
    /// Table slots; `None` marks a tombstoned (removed) table.
    tables: Vec<Option<Table>>,
    /// Live table name -> slot.
    table_index: HashMap<String, usize>,
    /// AttrId -> (table slot, column index). Never shrinks.
    attrs: Vec<(usize, usize)>,
    /// AttrId -> live flag.
    attr_live: Vec<bool>,
    /// AttrId -> sorted distinct live ValueIds (empty for tombstones).
    attr_values: Vec<Vec<ValueId>>,
    /// ValueId -> sorted live AttrIds containing it.
    value_attrs: Vec<Vec<AttrId>>,
    /// Append-only value interner.
    interner: ValueInterner,
}

impl MutableLake {
    /// Create an empty mutable lake.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adopt an existing catalog. Value and attribute ids are preserved
    /// exactly (the construction order matches [`LakeCatalog::add_table`]).
    pub fn from_catalog(catalog: &LakeCatalog) -> Self {
        let mut lake = MutableLake::new();
        for table in catalog.tables() {
            lake.apply_add_table(table.clone())
                .expect("catalog table names are unique");
        }
        lake
    }

    /// Apply a delta, returning the merged, normalized [`DeltaEffects`].
    ///
    /// Ops are applied in order. If an op fails, the error is returned and
    /// **no further ops run**; ops before the failing one remain applied
    /// and their effects are discarded with the error. Incremental
    /// consumers therefore cannot be patched after a failed apply — rebuild
    /// them against the lake's current state (`DomainNet::refresh` in the
    /// core crate) before continuing. Validate deltas upfront (as
    /// `datagen::mutate::MutationStream` does) to keep the fast path.
    ///
    /// # Errors
    /// * [`LakeError::DuplicateTable`] when adding a name that is live.
    /// * [`LakeError::NotFound`] when removing or mutating a missing table
    ///   or column.
    pub fn apply(&mut self, delta: &LakeDelta) -> Result<DeltaEffects> {
        self.apply_batch(std::iter::once(delta))
    }

    /// Apply several deltas as one batch, returning a single merged,
    /// normalized [`DeltaEffects`] record.
    ///
    /// This is the batching hook the serving layer's writer uses: effects
    /// are merged *before* normalization, so an incidence removed by one
    /// delta and re-added by a later one in the same batch cancels out and
    /// the downstream graph patch never sees it. Failure semantics match
    /// [`MutableLake::apply`]: the first failing op stops the batch, ops
    /// before it remain applied, and their effects are discarded with the
    /// error.
    pub fn apply_batch<'a, I>(&mut self, deltas: I) -> Result<DeltaEffects>
    where
        I: IntoIterator<Item = &'a LakeDelta>,
    {
        let mut effects = DeltaEffects::default();
        for delta in deltas {
            for op in delta.ops() {
                effects.merge(self.apply_op(op)?);
            }
        }
        effects.normalize();
        Ok(effects)
    }

    fn apply_op(&mut self, op: &LakeOp) -> Result<DeltaEffects> {
        match op {
            LakeOp::AddTable(table) => self.apply_add_table(table.clone()),
            LakeOp::RemoveTable(name) => self.apply_remove_table(name),
            LakeOp::ReplaceValue {
                table,
                column,
                target,
                replacement,
            } => self.apply_replace_value(table, column, target, replacement),
        }
    }

    fn apply_add_table(&mut self, table: Table) -> Result<DeltaEffects> {
        if self.table_index.contains_key(table.name()) {
            return Err(LakeError::DuplicateTable(table.name().to_owned()));
        }
        let slot = self.tables.len();
        self.table_index.insert(table.name().to_owned(), slot);
        let mut effects = DeltaEffects::default();
        for (col_idx, column) in table.columns().iter().enumerate() {
            let attr = AttrId(self.attrs.len() as u32);
            self.attrs.push((slot, col_idx));
            self.attr_live.push(true);
            effects.added_attrs.push(attr);
            let mut values = Vec::with_capacity(column.distinct_count());
            for v in column.distinct_values() {
                let before = self.interner.len();
                let vid = self.interner.intern(v);
                if vid.index() >= self.value_attrs.len() {
                    self.value_attrs.resize(vid.index() + 1, Vec::new());
                }
                if self.interner.len() > before {
                    effects.added_values.push(vid);
                }
                insert_sorted(&mut self.value_attrs[vid.index()], attr);
                effects.added_incidences.push((attr, vid));
                values.push(vid);
            }
            values.sort_unstable();
            values.dedup();
            self.attr_values.push(values);
        }
        self.tables.push(Some(table));
        Ok(effects)
    }

    fn apply_remove_table(&mut self, name: &str) -> Result<DeltaEffects> {
        let slot = self
            .table_index
            .remove(name)
            .ok_or_else(|| LakeError::NotFound(format!("table '{name}'")))?;
        let mut effects = DeltaEffects::default();
        for (attr_idx, &(t, _)) in self.attrs.iter().enumerate() {
            if t != slot || !self.attr_live[attr_idx] {
                continue;
            }
            let attr = AttrId(attr_idx as u32);
            for &vid in &self.attr_values[attr_idx] {
                remove_sorted(&mut self.value_attrs[vid.index()], attr);
                effects.removed_incidences.push((attr, vid));
            }
            self.attr_values[attr_idx].clear();
            self.attr_live[attr_idx] = false;
            effects.removed_attrs.push(attr);
        }
        self.tables[slot] = None;
        Ok(effects)
    }

    fn apply_replace_value(
        &mut self,
        table: &str,
        column: &str,
        target: &str,
        replacement: &str,
    ) -> Result<DeltaEffects> {
        let &slot = self
            .table_index
            .get(table)
            .ok_or_else(|| LakeError::NotFound(format!("table '{table}'")))?;
        let tab = self.tables[slot].as_mut().expect("indexed table is live");
        let col_idx = tab
            .columns()
            .iter()
            .position(|c| c.name() == column)
            .ok_or_else(|| LakeError::NotFound(format!("column '{table}.{column}'")))?;
        let col: &mut Column = &mut tab.columns_mut()[col_idx];
        let rewritten = col.replace_value(target, replacement);
        let mut effects = DeltaEffects {
            cells_rewritten: rewritten,
            ..DeltaEffects::default()
        };
        if rewritten == 0 {
            return Ok(effects);
        }
        let distinct: Vec<String> = col.distinct_values().map(str::to_owned).collect();
        let attr_idx = self
            .attrs
            .iter()
            .enumerate()
            .position(|(i, &(t, c))| t == slot && c == col_idx && self.attr_live[i])
            .expect("live table columns have live attribute slots");
        // Recompute the attribute's distinct set and diff it against the index.
        let mut new_values: Vec<ValueId> = Vec::with_capacity(distinct.len());
        for v in &distinct {
            let before = self.interner.len();
            let vid = self.interner.intern(v);
            if vid.index() >= self.value_attrs.len() {
                self.value_attrs.resize(vid.index() + 1, Vec::new());
            }
            if self.interner.len() > before {
                effects.added_values.push(vid);
            }
            new_values.push(vid);
        }
        new_values.sort_unstable();
        new_values.dedup();
        let attr = AttrId(attr_idx as u32);
        let old_values = std::mem::take(&mut self.attr_values[attr_idx]);
        let (removed, added) = diff_sorted(&old_values, &new_values);
        for o in removed {
            remove_sorted(&mut self.value_attrs[o.index()], attr);
            effects.removed_incidences.push((attr, o));
        }
        for n in added {
            insert_sorted(&mut self.value_attrs[n.index()], attr);
            effects.added_incidences.push((attr, n));
        }
        self.attr_values[attr_idx] = new_values;
        Ok(effects)
    }

    // ------------------------------------------------------------------
    // Queries (live state)
    // ------------------------------------------------------------------

    /// Number of live (non-tombstoned) tables.
    pub fn live_table_count(&self) -> usize {
        self.table_index.len()
    }

    /// Names of the live tables, in slot order.
    pub fn live_table_names(&self) -> Vec<&str> {
        self.tables.iter().flatten().map(Table::name).collect()
    }

    /// Look up a live table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.table_index
            .get(name)
            .and_then(|&slot| self.tables[slot].as_ref())
    }

    /// Whether an attribute slot is live.
    pub fn is_attr_live(&self, id: AttrId) -> bool {
        self.attr_live.get(id.index()).copied().unwrap_or(false)
    }

    /// Sorted distinct live values of an attribute (empty for tombstones).
    pub fn attribute_values(&self, id: AttrId) -> &[ValueId] {
        self.attr_values
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Look up the id of a normalized value.
    pub fn value_id(&self, normalized: &str) -> Option<ValueId> {
        self.interner.get(normalized)
    }

    /// The shared append-only interner.
    pub fn interner(&self) -> &ValueInterner {
        &self.interner
    }

    // ------------------------------------------------------------------
    // Persistence (consumed by the `dn-store` crate)
    // ------------------------------------------------------------------

    /// All table slots in allocation order, tombstones included (`None`).
    pub fn table_slots(&self) -> &[Option<Table>] {
        &self.tables
    }

    /// `(table slot, column index)` per attribute slot, in [`AttrId`] order.
    /// Tombstoned attributes keep their location for id stability.
    pub fn attr_locations(&self) -> &[(usize, usize)] {
        &self.attrs
    }

    /// Liveness flag per attribute slot, in [`AttrId`] order.
    pub fn attr_live_flags(&self) -> &[bool] {
        &self.attr_live
    }

    /// Reassemble a lake from persisted parts, validating every
    /// cross-reference before any state becomes observable.
    ///
    /// This is the inverse of reading the lake back field-by-field via
    /// [`MutableLake::table_slots`], [`MutableLake::attr_locations`],
    /// [`MutableLake::attr_live_flags`], [`MutableLake::attribute_values`],
    /// and [`MutableLake::interner`]. The checks are deliberately paranoid —
    /// the inputs come from disk, and a half-loaded lake must never escape:
    ///
    /// * the interner values must be distinct (ids are their positions);
    /// * live table names must be unique; the three attribute-slot arrays
    ///   must agree in length;
    /// * every live attribute must point at a live table and a valid column,
    ///   every live `(table, column)` pair must have exactly one live slot,
    ///   and tombstoned attributes must hold no values;
    /// * `attr_values` must be sorted, deduplicated, in interner range, and
    ///   **equal to the re-derived distinct value set of its column** — the
    ///   redundancy is what turns a subtly corrupted index into a load
    ///   error instead of wrong scores.
    ///
    /// The `value_attrs` inverted index and the name index are rebuilt from
    /// the validated parts rather than trusted from disk.
    ///
    /// # Errors
    /// [`LakeError::Serde`] describing the first violated invariant.
    pub fn from_raw_parts(
        tables: Vec<Option<Table>>,
        attr_locations: Vec<(usize, usize)>,
        attr_live: Vec<bool>,
        attr_values: Vec<Vec<ValueId>>,
        interner_values: Vec<String>,
    ) -> Result<Self> {
        let corrupt = |msg: String| LakeError::Serde(msg);

        let interner = ValueInterner::from_values(interner_values).map_err(|(kept, dup)| {
            corrupt(format!("interner value {dup} duplicates value {}", kept.0))
        })?;

        let mut table_index = HashMap::new();
        for (slot, table) in tables.iter().enumerate() {
            if let Some(table) = table {
                if table_index.insert(table.name().to_owned(), slot).is_some() {
                    return Err(corrupt(format!(
                        "live table name '{}' appears in two slots",
                        table.name()
                    )));
                }
            }
        }

        if attr_locations.len() != attr_live.len() || attr_locations.len() != attr_values.len() {
            return Err(corrupt(format!(
                "attribute arrays disagree: {} locations, {} live flags, {} value sets",
                attr_locations.len(),
                attr_live.len(),
                attr_values.len()
            )));
        }

        // Every live (table slot, column) must be claimed by exactly one
        // live attribute slot, and vice versa.
        let mut claimed: HashMap<(usize, usize), usize> = HashMap::new();
        for (idx, &(slot, col)) in attr_locations.iter().enumerate() {
            if !attr_live[idx] {
                if !attr_values[idx].is_empty() {
                    return Err(corrupt(format!(
                        "tombstoned attribute {idx} still holds {} values",
                        attr_values[idx].len()
                    )));
                }
                continue;
            }
            let table = tables.get(slot).and_then(Option::as_ref).ok_or_else(|| {
                corrupt(format!("live attribute {idx} points at dead slot {slot}"))
            })?;
            let column = table.columns().get(col).ok_or_else(|| {
                corrupt(format!(
                    "live attribute {idx} points at missing column {col} of '{}'",
                    table.name()
                ))
            })?;
            if let Some(prev) = claimed.insert((slot, col), idx) {
                return Err(corrupt(format!(
                    "column {col} of slot {slot} is claimed by attributes {prev} and {idx}"
                )));
            }
            // Cross-check the persisted value set against a re-derivation
            // from the column's cells.
            let derived: Vec<ValueId> = column
                .distinct_values()
                .map(|v| {
                    interner.get(v).ok_or_else(|| {
                        corrupt(format!(
                            "column '{}.{}' holds value {v:?} missing from the interner",
                            table.name(),
                            column.name()
                        ))
                    })
                })
                .collect::<Result<_>>()?;
            let mut derived = derived;
            derived.sort_unstable();
            derived.dedup();
            if derived != attr_values[idx] {
                return Err(corrupt(format!(
                    "attribute {idx} ('{}.{}') value set does not match its column",
                    table.name(),
                    column.name()
                )));
            }
        }
        let live_columns: usize = tables.iter().flatten().map(|t| t.column_count()).sum();
        if claimed.len() != live_columns {
            return Err(corrupt(format!(
                "{} live attribute slots cover {live_columns} live columns",
                claimed.len()
            )));
        }

        // Rebuild the inverted index from the validated forward index,
        // sizing each per-value list exactly (one counting pass) so the
        // rebuild does one allocation per value instead of amortized
        // regrowth.
        let mut counts = vec![0u32; interner.len()];
        for (idx, values) in attr_values.iter().enumerate() {
            for &vid in values {
                match counts.get_mut(vid.index()) {
                    Some(count) => *count += 1,
                    None => {
                        return Err(corrupt(format!(
                            "attribute {idx} references value {} outside the interner",
                            vid.0
                        )))
                    }
                }
            }
        }
        let mut value_attrs: Vec<Vec<AttrId>> = counts
            .into_iter()
            .map(|count| Vec::with_capacity(count as usize))
            .collect();
        for (idx, values) in attr_values.iter().enumerate() {
            for &vid in values {
                value_attrs[vid.index()].push(AttrId(idx as u32));
            }
        }
        // AttrIds were pushed in ascending idx order, so each list is sorted.

        Ok(MutableLake {
            tables,
            table_index,
            attrs: attr_locations,
            attr_live,
            attr_values,
            value_attrs,
            interner,
        })
    }

    /// Compact the live state into a fresh [`LakeCatalog`].
    ///
    /// The snapshot re-derives dense ids from scratch, so its [`ValueId`] /
    /// [`AttrId`] spaces generally differ from this lake's; it represents the
    /// same live content. This is the "full rebuild" path the incremental
    /// machinery is benchmarked against.
    pub fn snapshot(&self) -> Result<LakeCatalog> {
        LakeCatalog::from_tables(self.tables.iter().flatten().cloned())
    }
}

impl LakeView for MutableLake {
    fn value_count(&self) -> usize {
        self.interner.len()
    }
    fn attribute_count(&self) -> usize {
        self.attrs.len()
    }
    fn incidence_count(&self) -> usize {
        self.attr_values.iter().map(Vec::len).sum()
    }
    fn value(&self, id: ValueId) -> Option<&str> {
        self.interner.try_resolve(id)
    }
    fn attribute_ref(&self, id: AttrId) -> Option<AttrRef> {
        if !self.is_attr_live(id) {
            return None;
        }
        let (slot, col) = self.attrs[id.index()];
        let table = self.tables[slot].as_ref()?;
        Some(AttrRef::new(table.name(), table.columns()[col].name()))
    }
    fn value_attributes(&self, id: ValueId) -> &[AttrId] {
        self.value_attrs
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
    fn values_in_at_least(&self, min_attrs: usize) -> Vec<ValueId> {
        self.value_attrs
            .iter()
            .enumerate()
            .filter(|(_, attrs)| attrs.len() >= min_attrs)
            .map(|(i, _)| ValueId(i as u32))
            .collect()
    }
    fn live_attribute_values(&self) -> Vec<(AttrId, &[ValueId])> {
        self.attr_values
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.attr_live[i])
            .map(|(i, vs)| (AttrId(i as u32), vs.as_slice()))
            .collect()
    }
}

impl From<&LakeCatalog> for MutableLake {
    fn from(catalog: &LakeCatalog) -> Self {
        MutableLake::from_catalog(catalog)
    }
}

/// Symmetric difference of two sorted, deduplicated slices: returns the
/// items only in `old` (removed) and only in `new` (added).
///
/// Shared by the incidence diffing here and the edge diffing in the core
/// crate's incremental maintenance.
pub fn diff_sorted<T: Ord + Copy>(old: &[T], new: &[T]) -> (Vec<T>, Vec<T>) {
    let mut removed = Vec::new();
    let mut added = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(&o), Some(&n)) if o == n => {
                i += 1;
                j += 1;
            }
            (Some(&o), Some(&n)) if o < n => {
                removed.push(o);
                i += 1;
            }
            (Some(_), Some(&n)) => {
                added.push(n);
                j += 1;
            }
            (Some(&o), None) => {
                removed.push(o);
                i += 1;
            }
            (None, Some(&n)) => {
                added.push(n);
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    (removed, added)
}

fn insert_sorted<T: Ord + Copy>(vec: &mut Vec<T>, item: T) {
    if let Err(pos) = vec.binary_search(&item) {
        vec.insert(pos, item);
    }
}

fn remove_sorted<T: Ord + Copy>(vec: &mut Vec<T>, item: T) {
    if let Ok(pos) = vec.binary_search(&item) {
        vec.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn zoo() -> Table {
        TableBuilder::new("zoo")
            .column("animal", ["Jaguar", "Panda", "Lemur"])
            .build()
            .unwrap()
    }

    fn cars() -> Table {
        TableBuilder::new("cars")
            .column("brand", ["Jaguar", "Fiat", "Toyota"])
            .build()
            .unwrap()
    }

    #[test]
    fn add_tables_tracks_incidences_and_new_values() {
        let mut lake = MutableLake::new();
        let e1 = lake.apply(&LakeDelta::new().add_table(zoo())).unwrap();
        assert_eq!(e1.added_values.len(), 3);
        assert_eq!(e1.added_incidences.len(), 3);
        assert_eq!(e1.added_attrs, vec![AttrId(0)]);

        let e2 = lake.apply(&LakeDelta::new().add_table(cars())).unwrap();
        // Jaguar was already interned.
        assert_eq!(e2.added_values.len(), 2);
        assert_eq!(e2.added_incidences.len(), 3);
        let jaguar = lake.value_id("JAGUAR").unwrap();
        assert_eq!(lake.value_attributes(jaguar), &[AttrId(0), AttrId(1)]);
    }

    #[test]
    fn remove_table_tombstones_but_keeps_ids() {
        let mut lake = MutableLake::new();
        lake.apply(&LakeDelta::new().add_table(zoo()).add_table(cars()))
            .unwrap();
        let jaguar = lake.value_id("JAGUAR").unwrap();
        let fiat = lake.value_id("FIAT").unwrap();

        let e = lake.apply(&LakeDelta::new().remove_table("cars")).unwrap();
        assert_eq!(e.removed_attrs, vec![AttrId(1)]);
        assert_eq!(e.removed_incidences.len(), 3);
        assert!(e.added_incidences.is_empty());

        assert_eq!(lake.live_table_count(), 1);
        assert!(!lake.is_attr_live(AttrId(1)));
        assert_eq!(lake.value_attributes(jaguar), &[AttrId(0)]);
        assert!(lake.value_attributes(fiat).is_empty());
        // Ids are stable: Fiat stays interned at the same id.
        assert_eq!(lake.value_id("FIAT"), Some(fiat));
        assert_eq!(LakeView::value(&lake, fiat), Some("FIAT"));
    }

    #[test]
    fn readd_after_remove_allocates_fresh_attrs_and_reuses_value_ids() {
        let mut lake = MutableLake::new();
        lake.apply(&LakeDelta::new().add_table(zoo()).add_table(cars()))
            .unwrap();
        let fiat = lake.value_id("FIAT").unwrap();
        lake.apply(&LakeDelta::new().remove_table("cars")).unwrap();
        let e = lake.apply(&LakeDelta::new().add_table(cars())).unwrap();
        assert_eq!(e.added_attrs, vec![AttrId(2)]);
        assert!(
            e.added_values.is_empty(),
            "all values were already interned"
        );
        assert_eq!(lake.value_attributes(fiat), &[AttrId(2)]);
        assert_eq!(lake.live_table_count(), 2);
    }

    #[test]
    fn duplicate_live_table_is_rejected() {
        let mut lake = MutableLake::new();
        lake.apply(&LakeDelta::new().add_table(zoo())).unwrap();
        let err = lake.apply(&LakeDelta::new().add_table(zoo())).unwrap_err();
        assert!(matches!(err, LakeError::DuplicateTable(_)));
    }

    #[test]
    fn remove_missing_table_is_not_found() {
        let mut lake = MutableLake::new();
        let err = lake
            .apply(&LakeDelta::new().remove_table("ghost"))
            .unwrap_err();
        assert!(matches!(err, LakeError::NotFound(_)));
    }

    #[test]
    fn replace_value_diffs_incidences() {
        let mut lake = MutableLake::new();
        lake.apply(&LakeDelta::new().add_table(zoo()).add_table(cars()))
            .unwrap();
        let e = lake
            .apply(&LakeDelta::new().replace_value("cars", "brand", "Jaguar", "Rover"))
            .unwrap();
        assert_eq!(e.cells_rewritten, 1);
        assert_eq!(e.added_values.len(), 1, "ROVER is new");
        let jaguar = lake.value_id("JAGUAR").unwrap();
        let rover = lake.value_id("ROVER").unwrap();
        assert_eq!(e.removed_incidences, vec![(AttrId(1), jaguar)]);
        assert_eq!(e.added_incidences, vec![(AttrId(1), rover)]);
        assert_eq!(lake.value_attributes(jaguar), &[AttrId(0)]);
        assert_eq!(lake.value_attributes(rover), &[AttrId(1)]);
    }

    #[test]
    fn replace_missing_target_is_noop() {
        let mut lake = MutableLake::new();
        lake.apply(&LakeDelta::new().add_table(zoo())).unwrap();
        let e = lake
            .apply(&LakeDelta::new().replace_value("zoo", "animal", "Dodo", "Raven"))
            .unwrap();
        assert!(e.is_empty());
    }

    #[test]
    fn remove_then_readd_same_delta_cancels_incidences() {
        let mut lake = MutableLake::new();
        lake.apply(&LakeDelta::new().add_table(cars())).unwrap();
        let e = lake
            .apply(&LakeDelta::new().remove_table("cars").add_table(cars()))
            .unwrap();
        // The value set is back, but under a fresh attribute slot, so the
        // old incidences are removed and new ones added — no cancellation
        // across distinct attrs.
        assert_eq!(e.removed_attrs, vec![AttrId(0)]);
        assert_eq!(e.added_attrs, vec![AttrId(1)]);
        assert_eq!(e.removed_incidences.len(), 3);
        assert_eq!(e.added_incidences.len(), 3);
    }

    #[test]
    fn merge_concatenates_ops_in_order() {
        let merged = LakeDelta::new()
            .add_table(zoo())
            .merge(LakeDelta::new().add_table(cars()).remove_table("zoo"));
        assert_eq!(merged.len(), 3);
        assert!(matches!(merged.ops()[0], LakeOp::AddTable(_)));
        assert!(matches!(merged.ops()[2], LakeOp::RemoveTable(_)));
        let mut lake = MutableLake::new();
        lake.apply(&merged).unwrap();
        assert_eq!(lake.live_table_count(), 1);
    }

    #[test]
    fn apply_batch_matches_sequential_applies() {
        let deltas = [
            LakeDelta::new().add_table(zoo()),
            LakeDelta::new().add_table(cars()),
            LakeDelta::new().replace_value("cars", "brand", "Fiat", "Rover"),
        ];
        let mut batched = MutableLake::new();
        let effects = batched.apply_batch(deltas.iter()).unwrap();
        let mut sequential = MutableLake::new();
        for delta in &deltas {
            sequential.apply(delta).unwrap();
        }
        // Same live state...
        assert_eq!(batched.live_table_names(), sequential.live_table_names());
        assert_eq!(
            LakeView::incidence_count(&batched),
            LakeView::incidence_count(&sequential)
        );
        // ...and the merged effects cover everything the batch did.
        assert_eq!(effects.added_attrs.len(), 2);
        assert_eq!(effects.cells_rewritten, 1);
        assert!(effects
            .added_values
            .iter()
            .any(|&v| { LakeView::value(&batched, v) == Some("ROVER") }));
    }

    #[test]
    fn apply_batch_cancels_incidences_across_deltas() {
        let mut lake = MutableLake::new();
        lake.apply(&LakeDelta::new().add_table(zoo())).unwrap();
        // One batch rewrites Jaguar away and back: the incidence-level
        // effects must cancel so downstream consumers see a no-op.
        let effects = lake
            .apply_batch(
                [
                    LakeDelta::new().replace_value("zoo", "animal", "Jaguar", "Okapi"),
                    LakeDelta::new().replace_value("zoo", "animal", "Okapi", "Jaguar"),
                ]
                .iter(),
            )
            .unwrap();
        let jaguar = lake.value_id("JAGUAR").unwrap();
        assert!(effects.added_incidences.is_empty());
        assert!(effects.removed_incidences.is_empty());
        assert_eq!(effects.cells_rewritten, 2);
        assert_eq!(lake.value_attributes(jaguar), &[AttrId(0)]);
    }

    #[test]
    fn apply_batch_stops_at_the_first_failing_op() {
        let mut lake = MutableLake::new();
        let err = lake
            .apply_batch(
                [
                    LakeDelta::new().add_table(zoo()),
                    LakeDelta::new().remove_table("ghost"),
                    LakeDelta::new().add_table(cars()),
                ]
                .iter(),
            )
            .unwrap_err();
        assert!(matches!(err, LakeError::NotFound(_)));
        // The first delta stuck, the third never ran.
        assert!(lake.table("zoo").is_some());
        assert!(lake.table("cars").is_none());
    }

    #[test]
    fn from_raw_parts_round_trips_a_mutated_lake() {
        let mut lake = MutableLake::new();
        lake.apply(&LakeDelta::new().add_table(zoo()).add_table(cars()))
            .unwrap();
        lake.apply(
            &LakeDelta::new()
                .remove_table("zoo")
                .replace_value("cars", "brand", "Fiat", "Rover"),
        )
        .unwrap();

        let rebuilt = MutableLake::from_raw_parts(
            lake.table_slots().to_vec(),
            lake.attr_locations().to_vec(),
            lake.attr_live_flags().to_vec(),
            (0..lake.attr_locations().len())
                .map(|i| lake.attribute_values(AttrId(i as u32)).to_vec())
                .collect(),
            lake.interner().iter().map(|(_, v)| v.to_owned()).collect(),
        )
        .unwrap();

        assert_eq!(rebuilt.live_table_names(), lake.live_table_names());
        assert_eq!(
            LakeView::incidence_count(&rebuilt),
            LakeView::incidence_count(&lake)
        );
        for vid in (0..lake.interner().len() as u32).map(ValueId) {
            assert_eq!(
                LakeView::value(&rebuilt, vid),
                LakeView::value(&lake, vid),
                "value ids must survive the round trip"
            );
            assert_eq!(
                LakeView::value_attributes(&rebuilt, vid),
                LakeView::value_attributes(&lake, vid)
            );
        }
    }

    #[test]
    fn from_raw_parts_rejects_mismatched_value_sets() {
        let mut lake = MutableLake::new();
        lake.apply(&LakeDelta::new().add_table(zoo())).unwrap();
        let mut attr_values: Vec<Vec<ValueId>> = (0..lake.attr_locations().len())
            .map(|i| lake.attribute_values(AttrId(i as u32)).to_vec())
            .collect();
        attr_values[0].pop(); // drop one incidence: no longer matches the column
        let err = MutableLake::from_raw_parts(
            lake.table_slots().to_vec(),
            lake.attr_locations().to_vec(),
            lake.attr_live_flags().to_vec(),
            attr_values,
            lake.interner().iter().map(|(_, v)| v.to_owned()).collect(),
        )
        .unwrap_err();
        assert!(matches!(err, LakeError::Serde(_)), "{err}");
    }

    #[test]
    fn snapshot_compacts_live_state() {
        let mut lake = MutableLake::new();
        lake.apply(&LakeDelta::new().add_table(zoo()).add_table(cars()))
            .unwrap();
        lake.apply(&LakeDelta::new().remove_table("zoo")).unwrap();
        let snap = lake.snapshot().unwrap();
        assert_eq!(snap.table_count(), 1);
        assert_eq!(snap.value_count(), 3, "only the live values remain");
        assert!(snap.contains_value("FIAT"));
        assert!(!snap.contains_value("PANDA"));
    }

    #[test]
    fn from_catalog_preserves_ids() {
        let catalog = crate::fixtures::running_example();
        let lake = MutableLake::from_catalog(&catalog);
        assert_eq!(LakeView::value_count(&lake), catalog.value_count());
        assert_eq!(LakeView::attribute_count(&lake), catalog.attribute_count());
        assert_eq!(LakeView::incidence_count(&lake), catalog.incidence_count());
        for vid in (0..catalog.value_count() as u32).map(ValueId) {
            assert_eq!(
                LakeView::value(&lake, vid),
                catalog.value(vid),
                "value ids must agree"
            );
            assert_eq!(
                LakeView::value_attributes(&lake, vid),
                catalog.value_attributes(vid)
            );
        }
    }

    #[test]
    fn live_view_matches_snapshot_view() {
        let mut lake = MutableLake::new();
        lake.apply(
            &LakeDelta::new()
                .add_table(zoo())
                .add_table(cars())
                .remove_table("zoo"),
        )
        .unwrap();
        let snap = lake.snapshot().unwrap();
        // Same live incidence structure, possibly different id spaces:
        // compare as (attr label, value string) pairs.
        let live_pairs = |view: &dyn LakeView| -> Vec<(String, String)> {
            let mut out = Vec::new();
            for (attr, values) in view.live_attribute_values() {
                let aref = view.attribute_ref(attr).unwrap().qualified();
                for &v in values {
                    out.push((aref.clone(), view.value(v).unwrap().to_owned()));
                }
            }
            out.sort();
            out
        };
        assert_eq!(live_pairs(&lake), live_pairs(&snap));
    }
}
