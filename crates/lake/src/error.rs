//! Error types for the data-lake substrate.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors produced while building, loading, or querying a data lake.
#[derive(Debug)]
pub enum LakeError {
    /// An I/O error occurred while reading or writing lake content.
    Io {
        /// The path involved, when known.
        path: Option<PathBuf>,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A CSV file was malformed (e.g., unbalanced quotes).
    Csv {
        /// 1-based line number at which the problem was detected.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A table had rows whose cell count did not match the header.
    RaggedRow {
        /// The table name.
        table: String,
        /// 1-based row index (excluding the header).
        row: usize,
        /// Number of columns declared by the header.
        expected: usize,
        /// Number of cells found in the offending row.
        found: usize,
    },
    /// A table with the same name was added to the catalog twice.
    DuplicateTable(String),
    /// A table was constructed with no columns.
    EmptyTable(String),
    /// Two columns in the same table share a name.
    DuplicateColumn {
        /// The table name.
        table: String,
        /// The duplicated column name.
        column: String,
    },
    /// Columns within one table had differing lengths.
    ColumnLengthMismatch {
        /// The table name.
        table: String,
        /// The offending column name.
        column: String,
        /// Length of the first column in the table.
        expected: usize,
        /// Length of the offending column.
        found: usize,
    },
    /// A referenced table or attribute does not exist.
    NotFound(String),
    /// A serialization problem (ground truth, experiment output, …).
    Serde(String),
}

impl fmt::Display for LakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LakeError::Io { path, source } => match path {
                Some(p) => write!(f, "I/O error on {}: {source}", p.display()),
                None => write!(f, "I/O error: {source}"),
            },
            LakeError::Csv { line, message } => {
                write!(f, "malformed CSV at line {line}: {message}")
            }
            LakeError::RaggedRow {
                table,
                row,
                expected,
                found,
            } => write!(
                f,
                "table '{table}' row {row}: expected {expected} cells, found {found}"
            ),
            LakeError::DuplicateTable(name) => {
                write!(f, "a table named '{name}' already exists in the catalog")
            }
            LakeError::EmptyTable(name) => write!(f, "table '{name}' has no columns"),
            LakeError::DuplicateColumn { table, column } => {
                write!(
                    f,
                    "table '{table}' declares column '{column}' more than once"
                )
            }
            LakeError::ColumnLengthMismatch {
                table,
                column,
                expected,
                found,
            } => write!(
                f,
                "table '{table}' column '{column}' has {found} rows but the table has {expected}"
            ),
            LakeError::NotFound(what) => write!(f, "not found: {what}"),
            LakeError::Serde(msg) => write!(f, "serialization error: {msg}"),
        }
    }
}

impl std::error::Error for LakeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LakeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for LakeError {
    fn from(source: io::Error) -> Self {
        LakeError::Io { path: None, source }
    }
}

impl LakeError {
    /// Attach a path to an I/O error for better diagnostics.
    pub fn io_with_path(source: io::Error, path: impl Into<PathBuf>) -> Self {
        LakeError::Io {
            path: Some(path.into()),
            source,
        }
    }

    /// Whether this error is consistent with *torn input*: a file caught
    /// mid-write or truncated, rather than structurally invalid data. Torn
    /// input is transient by nature — the writer finishing (or rewriting)
    /// the file clears it — so streaming consumers like dn-ingest skip the
    /// file and retry on a later poll instead of failing the pipeline.
    ///
    /// Classified as torn: CSV syntax damage (`Csv`, e.g. a quote left
    /// unterminated by truncation), a row cut short (`RaggedRow`), a file
    /// truncated before any header (`EmptyTable`), and I/O errors that
    /// report an unexpected EOF. Catalog-level validity errors
    /// (`DuplicateTable`, `NotFound`, …) are not torn — retrying cannot fix
    /// them.
    pub fn is_torn_input(&self) -> bool {
        match self {
            LakeError::Csv { .. } | LakeError::RaggedRow { .. } | LakeError::EmptyTable(_) => true,
            LakeError::Io { source, .. } => source.kind() == io::ErrorKind::UnexpectedEof,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_table_and_row() {
        let err = LakeError::RaggedRow {
            table: "zoo".into(),
            row: 7,
            expected: 3,
            found: 2,
        };
        let msg = err.to_string();
        assert!(msg.contains("zoo"));
        assert!(msg.contains('7'));
        assert!(msg.contains('3'));
        assert!(msg.contains('2'));
    }

    #[test]
    fn io_error_retains_source() {
        let err: LakeError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn io_with_path_mentions_path() {
        let err = LakeError::io_with_path(
            io::Error::new(io::ErrorKind::PermissionDenied, "denied"),
            "/tmp/lake/table.csv",
        );
        assert!(err.to_string().contains("table.csv"));
    }

    #[test]
    fn torn_input_classification() {
        assert!(LakeError::Csv {
            line: 3,
            message: "unterminated quoted field".into(),
        }
        .is_torn_input());
        assert!(LakeError::RaggedRow {
            table: "zoo".into(),
            row: 9,
            expected: 3,
            found: 1,
        }
        .is_torn_input());
        assert!(LakeError::EmptyTable("zoo".into()).is_torn_input());
        assert!(LakeError::io_with_path(
            io::Error::new(io::ErrorKind::UnexpectedEof, "cut short"),
            "/drop/zoo.csv",
        )
        .is_torn_input());
        assert!(!LakeError::DuplicateTable("zoo".into()).is_torn_input());
        assert!(!LakeError::NotFound("zoo".into()).is_torn_input());
        assert!(
            !LakeError::from(io::Error::new(io::ErrorKind::PermissionDenied, "denied"))
                .is_torn_input()
        );
    }

    #[test]
    fn csv_error_mentions_line() {
        let err = LakeError::Csv {
            line: 42,
            message: "unterminated quote".into(),
        };
        assert!(err.to_string().contains("42"));
        assert!(err.to_string().contains("unterminated quote"));
    }
}
