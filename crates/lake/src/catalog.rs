//! The lake catalog: all tables, plus a global attribute and value index.

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::error::LakeError;
use crate::table::Table;
use crate::value::{ValueId, ValueInterner};
use crate::Result;

/// A dense identifier for an attribute (a column of a specific table).
///
/// Attribute ids are assigned in the order tables are added and, within a
/// table, in column order. They are stable for the lifetime of the catalog
/// and are used directly as attribute-node indices in the DomainNet graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Fully-qualified name of an attribute: `table.column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttrRef {
    /// Name of the table the attribute belongs to.
    pub table: String,
    /// Name of the column inside that table.
    pub column: String,
}

impl AttrRef {
    /// Construct an attribute reference.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        AttrRef {
            table: table.into(),
            column: column.into(),
        }
    }

    /// Render as `table.column`.
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.table, self.column)
    }
}

/// The data lake: an ordered collection of [`Table`]s with global indexes.
///
/// The catalog maintains:
/// * a global [`ValueInterner`] over all distinct normalized values,
/// * a dense [`AttrId`] per column,
/// * for every attribute, the sorted set of distinct [`ValueId`]s it contains,
/// * for every value, the set of attributes it appears in (the inverted
///   index that makes "candidate homographs appear in ≥ 2 attributes"
///   queries cheap).
///
/// The catalog is a **static snapshot**; for a lake that mutates, wrap it in
/// (or build) a [`crate::delta::MutableLake`] instead.
///
/// ```
/// use lake::catalog::LakeCatalog;
/// use lake::table::TableBuilder;
///
/// let mut lake = LakeCatalog::new();
/// lake.add_table(
///     TableBuilder::new("zoo")
///         .column("animal", ["Jaguar", "Panda"])
///         .build()
///         .unwrap(),
/// )
/// .unwrap();
/// lake.add_table(
///     TableBuilder::new("cars")
///         .column("brand", ["Jaguar", "Fiat"])
///         .build()
///         .unwrap(),
/// )
/// .unwrap();
///
/// // "Jaguar" occurs in two attributes — the homograph candidate set.
/// let jaguar = lake.value_id("JAGUAR").unwrap();
/// assert_eq!(lake.value_attribute_count(jaguar), 2);
/// assert_eq!(lake.values_in_at_least(2), vec![jaguar]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct LakeCatalog {
    tables: Vec<Table>,
    table_index: HashMap<String, usize>,
    /// attr id -> (table index, column index)
    attrs: Vec<(usize, usize)>,
    /// attr id -> distinct value ids (sorted)
    attr_values: Vec<Vec<ValueId>>,
    /// value id -> attr ids containing it (sorted)
    value_attrs: Vec<Vec<AttrId>>,
    interner: ValueInterner,
}

impl LakeCatalog {
    /// Create an empty lake.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a table to the lake, indexing all of its columns and values.
    ///
    /// # Errors
    /// [`LakeError::DuplicateTable`] if a table with the same name exists.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        if self.table_index.contains_key(table.name()) {
            return Err(LakeError::DuplicateTable(table.name().to_owned()));
        }
        let table_idx = self.tables.len();
        self.table_index.insert(table.name().to_owned(), table_idx);
        for (col_idx, column) in table.columns().iter().enumerate() {
            let attr_id = AttrId(self.attrs.len() as u32);
            self.attrs.push((table_idx, col_idx));
            let mut values = Vec::with_capacity(column.distinct_count());
            for v in column.distinct_values() {
                let vid = self.interner.intern(v);
                if vid.index() >= self.value_attrs.len() {
                    self.value_attrs.resize(vid.index() + 1, Vec::new());
                }
                self.value_attrs[vid.index()].push(attr_id);
                values.push(vid);
            }
            values.sort_unstable();
            values.dedup();
            self.attr_values.push(values);
        }
        self.tables.push(table);
        Ok(())
    }

    /// Build a catalog from an iterator of tables.
    pub fn from_tables<I>(tables: I) -> Result<Self>
    where
        I: IntoIterator<Item = Table>,
    {
        let mut catalog = LakeCatalog::new();
        for t in tables {
            catalog.add_table(t)?;
        }
        Ok(catalog)
    }

    // ------------------------------------------------------------------
    // Tables
    // ------------------------------------------------------------------

    /// Number of tables in the lake.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// The tables in insertion order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.table_index.get(name).map(|&i| &self.tables[i])
    }

    // ------------------------------------------------------------------
    // Attributes
    // ------------------------------------------------------------------

    /// Number of attributes (columns) across all tables.
    pub fn attribute_count(&self) -> usize {
        self.attrs.len()
    }

    /// Iterate over all attribute ids.
    pub fn attribute_ids(&self) -> impl Iterator<Item = AttrId> {
        (0..self.attrs.len() as u32).map(AttrId)
    }

    /// The column behind an attribute id.
    pub fn attribute(&self, id: AttrId) -> Option<&Column> {
        let &(t, c) = self.attrs.get(id.index())?;
        self.tables[t].columns().get(c)
    }

    /// The fully-qualified `table.column` reference of an attribute.
    pub fn attribute_ref(&self, id: AttrId) -> Option<AttrRef> {
        let &(t, c) = self.attrs.get(id.index())?;
        let table = &self.tables[t];
        Some(AttrRef::new(table.name(), table.columns()[c].name()))
    }

    /// Resolve a `table.column` pair to its attribute id.
    pub fn attribute_id(&self, table: &str, column: &str) -> Option<AttrId> {
        let &t = self.table_index.get(table)?;
        let c = self.tables[t]
            .columns()
            .iter()
            .position(|col| col.name() == column)?;
        self.attrs
            .iter()
            .position(|&(ti, ci)| ti == t && ci == c)
            .map(|i| AttrId(i as u32))
    }

    /// Distinct value ids of an attribute (sorted ascending).
    pub fn attribute_values(&self, id: AttrId) -> &[ValueId] {
        self.attr_values
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The cardinality (number of distinct values) of an attribute.
    pub fn attribute_cardinality(&self, id: AttrId) -> usize {
        self.attribute_values(id).len()
    }

    // ------------------------------------------------------------------
    // Values
    // ------------------------------------------------------------------

    /// Number of distinct normalized values across the whole lake.
    pub fn value_count(&self) -> usize {
        self.interner.len()
    }

    /// The shared value interner.
    pub fn interner(&self) -> &ValueInterner {
        &self.interner
    }

    /// Whether the lake contains the given **normalized** value.
    pub fn contains_value(&self, normalized: &str) -> bool {
        self.interner.get(normalized).is_some()
    }

    /// Look up the id of a normalized value.
    pub fn value_id(&self, normalized: &str) -> Option<ValueId> {
        self.interner.get(normalized)
    }

    /// The normalized string behind a value id.
    pub fn value(&self, id: ValueId) -> Option<&str> {
        self.interner.try_resolve(id)
    }

    /// Attributes in which a value occurs (sorted ascending by id).
    pub fn value_attributes(&self, id: ValueId) -> &[AttrId] {
        self.value_attrs
            .get(id.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of attributes in which a value occurs.
    pub fn value_attribute_count(&self, id: ValueId) -> usize {
        self.value_attributes(id).len()
    }

    /// Values that occur in at least `min_attrs` attributes.
    ///
    /// With `min_attrs == 2` this is exactly the DomainNet candidate set:
    /// a value appearing in a single attribute cannot be a homograph and is
    /// pruned before graph analysis (§5, pre-processing).
    pub fn values_in_at_least(&self, min_attrs: usize) -> Vec<ValueId> {
        self.value_attrs
            .iter()
            .enumerate()
            .filter(|(_, attrs)| attrs.len() >= min_attrs)
            .map(|(i, _)| ValueId(i as u32))
            .collect()
    }

    /// The *cardinality of a value node*: the number of unique other values
    /// it co-occurs with across all attributes containing it (|N(v)| in the
    /// paper).
    pub fn value_cardinality(&self, id: ValueId) -> usize {
        let mut neighbors: HashSet<ValueId> = HashSet::new();
        for &attr in self.value_attributes(id) {
            for &other in self.attribute_values(attr) {
                if other != id {
                    neighbors.insert(other);
                }
            }
        }
        neighbors.len()
    }

    /// Iterate over `(AttrId, &[ValueId])` pairs — the exact input needed to
    /// build the bipartite DomainNet graph.
    pub fn attribute_value_pairs(&self) -> impl Iterator<Item = (AttrId, &[ValueId])> {
        self.attr_values
            .iter()
            .enumerate()
            .map(|(i, vs)| (AttrId(i as u32), vs.as_slice()))
    }

    /// Total number of (attribute, distinct value) incidences, i.e. the edge
    /// count of the bipartite graph before any pruning.
    pub fn incidence_count(&self) -> usize {
        self.attr_values.iter().map(Vec::len).sum()
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Replace a value inside one attribute and rebuild the indexes.
    ///
    /// `target_normalized` must be the normalized form. Returns the number of
    /// cells rewritten. This supports the TUS-I injection procedure; since
    /// injection is rare relative to the lake size the simple strategy of
    /// rebuilding the catalog indexes afterwards (via [`LakeCatalog::rebuilt`])
    /// keeps the bookkeeping straightforward.
    pub fn replace_value_in_attribute(
        &mut self,
        attr: AttrId,
        target_normalized: &str,
        replacement: &str,
    ) -> Result<usize> {
        let &(t, c) = self
            .attrs
            .get(attr.index())
            .ok_or_else(|| LakeError::NotFound(format!("attribute #{}", attr.0)))?;
        let column = &mut self.tables[t].columns_mut()[c];
        Ok(column.replace_value(target_normalized, replacement))
    }

    /// Rebuild the catalog from its (possibly mutated) tables.
    ///
    /// All [`AttrId`]s are preserved (tables and columns keep their order)
    /// but [`ValueId`]s may change because the set of distinct values may
    /// have changed.
    pub fn rebuilt(self) -> Result<Self> {
        LakeCatalog::from_tables(self.tables)
    }

    /// Per-attribute cardinality histogram: map from cardinality to the
    /// number of attributes with that cardinality. Useful for diagnosing
    /// skew, which strongly affects LCC quality (§3.3).
    pub fn cardinality_histogram(&self) -> BTreeMap<usize, usize> {
        let mut hist = BTreeMap::new();
        for vs in &self.attr_values {
            *hist.entry(vs.len()).or_insert(0) += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    use crate::fixtures::running_example;

    #[test]
    fn counts_on_running_example() {
        let lake = running_example();
        assert_eq!(lake.table_count(), 4);
        assert_eq!(lake.attribute_count(), 12);
        assert!(lake.contains_value("JAGUAR"));
        assert!(lake.contains_value("SAN DIEGO"));
        assert!(
            !lake.contains_value("jaguar"),
            "lookups are by normalized form"
        );
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut lake = LakeCatalog::new();
        let t = TableBuilder::new("T").column("a", ["1"]).build().unwrap();
        lake.add_table(t.clone()).unwrap();
        assert!(matches!(
            lake.add_table(t),
            Err(LakeError::DuplicateTable(_))
        ));
    }

    #[test]
    fn value_attribute_index() {
        let lake = running_example();
        let jaguar = lake.value_id("JAGUAR").unwrap();
        // Jaguar appears in T1.At Risk, T2.name, T3.C2, T4.Name
        assert_eq!(lake.value_attribute_count(jaguar), 4);
        let panda = lake.value_id("PANDA").unwrap();
        assert_eq!(lake.value_attribute_count(panda), 2);
        let google = lake.value_id("GOOGLE").unwrap();
        assert_eq!(lake.value_attribute_count(google), 1);
    }

    #[test]
    fn candidate_set_is_values_in_at_least_two_attrs() {
        let lake = running_example();
        let candidates = lake.values_in_at_least(2);
        let names: Vec<&str> = candidates.iter().map(|&v| lake.value(v).unwrap()).collect();
        assert!(names.contains(&"JAGUAR"));
        assert!(names.contains(&"PUMA"));
        assert!(names.contains(&"PANDA"));
        assert!(names.contains(&"TOYOTA"));
        assert!(!names.contains(&"GOOGLE"));
        assert!(!names.contains(&"MEMPHIS"));
    }

    #[test]
    fn attribute_lookup_round_trip() {
        let lake = running_example();
        let id = lake.attribute_id("T2", "name").unwrap();
        let aref = lake.attribute_ref(id).unwrap();
        assert_eq!(aref.table, "T2");
        assert_eq!(aref.column, "name");
        assert_eq!(aref.qualified(), "T2.name");
        assert_eq!(lake.attribute_cardinality(id), 3); // Panda, Lemur, Jaguar
    }

    #[test]
    fn value_cardinality_counts_unique_co_occurring_values() {
        let lake = running_example();
        let panda = lake.value_id("PANDA").unwrap();
        // Panda co-occurs with T1.At Risk = {Puma, Jaguar, Pelican} and
        // T2.name = {Lemur, Jaguar} -> unique neighbors = 4.
        assert_eq!(lake.value_cardinality(panda), 4);
    }

    #[test]
    fn incidence_count_matches_sum_of_cardinalities() {
        let lake = running_example();
        let total: usize = lake
            .attribute_ids()
            .map(|a| lake.attribute_cardinality(a))
            .sum();
        assert_eq!(lake.incidence_count(), total);
    }

    #[test]
    fn replace_and_rebuild_updates_indexes() {
        let mut lake = running_example();
        let attr = lake.attribute_id("T4", "Name").unwrap();
        let n = lake
            .replace_value_in_attribute(attr, "JAGUAR", "InjectedHomograph1")
            .unwrap();
        assert_eq!(n, 1);
        let lake = lake.rebuilt().unwrap();
        let jaguar = lake.value_id("JAGUAR").unwrap();
        assert_eq!(lake.value_attribute_count(jaguar), 3);
        assert!(lake.contains_value("INJECTEDHOMOGRAPH1"));
    }

    #[test]
    fn cardinality_histogram_sums_to_attribute_count() {
        let lake = running_example();
        let hist = lake.cardinality_histogram();
        let total: usize = hist.values().sum();
        assert_eq!(total, lake.attribute_count());
    }

    #[test]
    fn attribute_values_are_sorted_and_deduped() {
        let lake = running_example();
        for (_, values) in lake.attribute_value_pairs() {
            let mut sorted = values.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.as_slice(), values);
        }
    }
}
