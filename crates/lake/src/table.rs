//! Tables: named collections of equally-long columns.

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::error::LakeError;
use crate::Result;

/// A single table in the data lake.
///
/// Tables are stored column-oriented. All columns of a well-formed table have
/// the same number of rows; [`TableBuilder::build`] enforces this. Attribute
/// names are carried along but nothing in DomainNet relies on them — in a
/// lake they may be `"C1"`, `"column 2"`, or simply wrong.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
}

impl Table {
    /// Construct a table from pre-built columns without validation.
    ///
    /// Prefer [`TableBuilder`]; this constructor is for internal use by the
    /// loader and generators that guarantee rectangular data by construction.
    pub fn from_columns(name: impl Into<String>, columns: Vec<Column>) -> Self {
        Table {
            name: name.into(),
            columns,
        }
    }

    /// The table name (file stem for loaded CSVs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of columns (attributes).
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows (0 for a table with no columns).
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Mutable access to the columns (used by homograph injection).
    pub fn columns_mut(&mut self) -> &mut [Column] {
        &mut self.columns
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name() == name)
    }

    /// Look up a column by name, mutably.
    pub fn column_mut(&mut self, name: &str) -> Option<&mut Column> {
        self.columns.iter_mut().find(|c| c.name() == name)
    }

    /// Iterate over the rows as vectors of raw cells.
    ///
    /// Mostly useful for writing tables back out as CSV; DomainNet itself
    /// never looks at rows.
    pub fn rows(&self) -> impl Iterator<Item = Vec<&str>> + '_ {
        (0..self.row_count()).map(move |r| {
            self.columns
                .iter()
                .map(|c| c.cells().get(r).map(String::as_str).unwrap_or(""))
                .collect()
        })
    }

    /// Total number of non-missing distinct values summed over columns.
    pub fn total_distinct(&self) -> usize {
        self.columns.iter().map(Column::distinct_count).sum()
    }

    /// Check the invariants a well-formed table upholds by construction —
    /// rectangular columns, unique column names, and every column's
    /// dictionary encoding ([`Column::validate_encoding`]).
    ///
    /// Tables normally enter the process through [`TableBuilder`] or the
    /// loader, which enforce all of this; a table deserialized from an
    /// untrusted byte stream (a write-ahead-log record) did not, and the
    /// replay path calls this before applying it.
    ///
    /// # Errors
    /// The corresponding [`LakeError`] for the violated invariant.
    pub fn validate_encoding(&self) -> Result<()> {
        let expected = self.row_count();
        for (i, col) in self.columns.iter().enumerate() {
            col.validate_encoding()?;
            if col.len() != expected {
                return Err(LakeError::ColumnLengthMismatch {
                    table: self.name.clone(),
                    column: col.name().to_owned(),
                    expected,
                    found: col.len(),
                });
            }
            if self.columns[..i].iter().any(|c| c.name() == col.name()) {
                return Err(LakeError::DuplicateColumn {
                    table: self.name.clone(),
                    column: col.name().to_owned(),
                });
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Table`] with validation.
///
/// ```
/// use lake::table::TableBuilder;
///
/// let table = TableBuilder::new("zoo")
///     .column("name", ["Panda", "Panda", "Lemur", "Jaguar"])
///     .column("locale", ["Memphis", "Atlanta", "National", "San Diego"])
///     .build()
///     .unwrap();
/// assert_eq!(table.row_count(), 4);
/// assert_eq!(table.column_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Start building a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// Add a column from any iterator of string-like cells.
    pub fn column<I, S>(mut self, name: impl Into<String>, cells: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        self.columns.push(Column::new(name, cells));
        self
    }

    /// Add a pre-built column.
    pub fn push_column(mut self, column: Column) -> Self {
        self.columns.push(column);
        self
    }

    /// Validate and produce the table.
    ///
    /// # Errors
    /// * [`LakeError::EmptyTable`] if no columns were added.
    /// * [`LakeError::DuplicateColumn`] if two columns share a name.
    /// * [`LakeError::ColumnLengthMismatch`] if column lengths differ.
    pub fn build(self) -> Result<Table> {
        if self.columns.is_empty() {
            return Err(LakeError::EmptyTable(self.name));
        }
        let expected = self.columns[0].len();
        for col in &self.columns {
            if col.len() != expected {
                return Err(LakeError::ColumnLengthMismatch {
                    table: self.name,
                    column: col.name().to_owned(),
                    expected,
                    found: col.len(),
                });
            }
        }
        for (i, col) in self.columns.iter().enumerate() {
            if self.columns[..i].iter().any(|c| c.name() == col.name()) {
                return Err(LakeError::DuplicateColumn {
                    table: self.name,
                    column: col.name().to_owned(),
                });
            }
        }
        Ok(Table {
            name: self.name,
            columns: self.columns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_rectangular_table() {
        let t = TableBuilder::new("t")
            .column("a", ["1", "2"])
            .column("b", ["x", "y"])
            .build()
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn builder_rejects_empty_table() {
        let err = TableBuilder::new("t").build().unwrap_err();
        assert!(matches!(err, LakeError::EmptyTable(_)));
    }

    #[test]
    fn builder_rejects_length_mismatch() {
        let err = TableBuilder::new("t")
            .column("a", ["1", "2"])
            .column("b", ["x"])
            .build()
            .unwrap_err();
        assert!(matches!(err, LakeError::ColumnLengthMismatch { .. }));
    }

    #[test]
    fn builder_rejects_duplicate_column_names() {
        let err = TableBuilder::new("t")
            .column("a", ["1"])
            .column("a", ["2"])
            .build()
            .unwrap_err();
        assert!(matches!(err, LakeError::DuplicateColumn { .. }));
    }

    #[test]
    fn column_lookup_by_name() {
        let t = TableBuilder::new("t")
            .column("a", ["1"])
            .column("b", ["x"])
            .build()
            .unwrap();
        assert!(t.column("a").is_some());
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn rows_iteration_round_trips_cells() {
        let t = TableBuilder::new("t")
            .column("a", ["1", "2"])
            .column("b", ["x", "y"])
            .build()
            .unwrap();
        let rows: Vec<Vec<&str>> = t.rows().collect();
        assert_eq!(rows, vec![vec!["1", "x"], vec!["2", "y"]]);
    }

    #[test]
    fn total_distinct_sums_columns() {
        let t = TableBuilder::new("t")
            .column("a", ["1", "1", "2"])
            .column("b", ["x", "y", "y"])
            .build()
            .unwrap();
        assert_eq!(t.total_distinct(), 4);
    }
}
