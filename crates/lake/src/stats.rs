//! Lake-level statistics, mirroring Table 1 of the paper.

use serde::{Deserialize, Serialize};

use crate::catalog::LakeCatalog;

/// Summary statistics for a data lake (one row of the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LakeStats {
    /// Number of tables in the lake.
    pub tables: usize,
    /// Number of attributes (columns) across all tables.
    pub attributes: usize,
    /// Number of distinct normalized values across the lake.
    pub values: usize,
    /// Number of values occurring in at least two attributes (homograph
    /// candidates after the pre-processing step of §5).
    pub candidate_values: usize,
    /// Number of bipartite incidences (edges between values and attributes).
    pub incidences: usize,
    /// Smallest attribute cardinality.
    pub min_attr_cardinality: usize,
    /// Largest attribute cardinality.
    pub max_attr_cardinality: usize,
    /// Mean attribute cardinality.
    pub mean_attr_cardinality: f64,
}

impl LakeStats {
    /// Compute statistics for a catalog.
    pub fn compute(lake: &LakeCatalog) -> Self {
        let cardinalities: Vec<usize> = lake
            .attribute_ids()
            .map(|a| lake.attribute_cardinality(a))
            .collect();
        let (min, max, sum) = cardinalities
            .iter()
            .fold((usize::MAX, 0usize, 0usize), |(min, max, sum), &c| {
                (min.min(c), max.max(c), sum + c)
            });
        let attributes = cardinalities.len();
        LakeStats {
            tables: lake.table_count(),
            attributes,
            values: lake.value_count(),
            candidate_values: lake.values_in_at_least(2).len(),
            incidences: lake.incidence_count(),
            min_attr_cardinality: if attributes == 0 { 0 } else { min },
            max_attr_cardinality: max,
            mean_attr_cardinality: if attributes == 0 {
                0.0
            } else {
                sum as f64 / attributes as f64
            },
        }
    }

    /// Render the statistics as a single human-readable line.
    pub fn summary_line(&self) -> String {
        format!(
            "#Tables={} #Attr={} #Val={} #Candidates={} #Incidences={} Card(attr)=[{}, {}] mean={:.1}",
            self.tables,
            self.attributes,
            self.values,
            self.candidate_values,
            self.incidences,
            self.min_attr_cardinality,
            self.max_attr_cardinality,
            self.mean_attr_cardinality
        )
    }
}

/// Statistics about a set of labeled homographs in a lake, used to fill the
/// `Card(H)` and `#M` columns of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HomographStats {
    /// Number of labeled homographs.
    pub count: usize,
    /// Minimum value-node cardinality |N(v)| over the homographs.
    pub min_cardinality: usize,
    /// Maximum value-node cardinality |N(v)| over the homographs.
    pub max_cardinality: usize,
    /// Minimum number of meanings per homograph.
    pub min_meanings: usize,
    /// Maximum number of meanings per homograph.
    pub max_meanings: usize,
}

impl HomographStats {
    /// Compute homograph statistics given the normalized homograph strings
    /// and, for each, its number of distinct meanings (from ground truth).
    pub fn compute(lake: &LakeCatalog, homographs: &[(String, usize)]) -> Self {
        let mut min_card = usize::MAX;
        let mut max_card = 0usize;
        let mut min_meanings = usize::MAX;
        let mut max_meanings = 0usize;
        let mut count = 0usize;
        for (value, meanings) in homographs {
            if let Some(id) = lake.value_id(value) {
                let card = lake.value_cardinality(id);
                min_card = min_card.min(card);
                max_card = max_card.max(card);
                min_meanings = min_meanings.min(*meanings);
                max_meanings = max_meanings.max(*meanings);
                count += 1;
            }
        }
        if count == 0 {
            return HomographStats {
                count: 0,
                min_cardinality: 0,
                max_cardinality: 0,
                min_meanings: 0,
                max_meanings: 0,
            };
        }
        HomographStats {
            count,
            min_cardinality: min_card,
            max_cardinality: max_card,
            min_meanings,
            max_meanings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::running_example;

    #[test]
    fn stats_on_running_example() {
        let lake = running_example();
        let stats = LakeStats::compute(&lake);
        assert_eq!(stats.tables, 4);
        assert_eq!(stats.attributes, 12);
        assert!(stats.values > 0);
        assert!(stats.candidate_values >= 4); // Jaguar, Puma, Panda, Toyota
        assert!(stats.min_attr_cardinality >= 1);
        assert!(stats.max_attr_cardinality >= stats.min_attr_cardinality);
        assert!(stats.mean_attr_cardinality > 0.0);
        let line = stats.summary_line();
        assert!(line.contains("#Tables=4"));
    }

    #[test]
    fn stats_on_empty_lake() {
        let lake = LakeCatalog::new();
        let stats = LakeStats::compute(&lake);
        assert_eq!(stats.tables, 0);
        assert_eq!(stats.attributes, 0);
        assert_eq!(stats.min_attr_cardinality, 0);
        assert_eq!(stats.mean_attr_cardinality, 0.0);
    }

    #[test]
    fn homograph_stats() {
        let lake = running_example();
        let homographs = vec![("JAGUAR".to_string(), 2), ("PUMA".to_string(), 2)];
        let hs = HomographStats::compute(&lake, &homographs);
        assert_eq!(hs.count, 2);
        assert!(hs.min_cardinality > 0);
        assert!(hs.max_cardinality >= hs.min_cardinality);
        assert_eq!(hs.min_meanings, 2);
        assert_eq!(hs.max_meanings, 2);
    }

    #[test]
    fn homograph_stats_with_unknown_values() {
        let lake = running_example();
        let homographs = vec![("NOT_IN_LAKE".to_string(), 3)];
        let hs = HomographStats::compute(&lake, &homographs);
        assert_eq!(hs.count, 0);
        assert_eq!(hs.max_cardinality, 0);
    }

    #[test]
    fn stats_serialize_round_trip() {
        let lake = running_example();
        let stats = LakeStats::compute(&lake);
        let json = serde_json::to_string(&stats).unwrap();
        let back: LakeStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
