//! A from-scratch RFC 4180 CSV reader and writer.
//!
//! Open-data lakes are distributed as CSV, so the substrate needs robust CSV
//! handling: quoted fields, escaped quotes (`""`), embedded delimiters,
//! embedded line breaks inside quoted fields, and both `\n` and `\r\n` line
//! endings. The implementation is deliberately self-contained (no external
//! crate) and streams from any [`std::io::BufRead`], so multi-gigabyte lakes
//! never need to be materialized as a single string.
//!
//! ```
//! use lake::csv::{parse_str, write_records};
//!
//! let records = parse_str("a,b\n\"x,1\",\"he said \"\"hi\"\"\"\n").unwrap();
//! assert_eq!(records, vec![
//!     vec!["a".to_string(), "b".to_string()],
//!     vec!["x,1".to_string(), "he said \"hi\"".to_string()],
//! ]);
//!
//! let mut out = Vec::new();
//! write_records(&mut out, &records).unwrap();
//! let round_tripped = parse_str(std::str::from_utf8(&out).unwrap()).unwrap();
//! assert_eq!(round_tripped, records);
//! ```

use std::io::{self, BufRead, Read, Write};

use crate::error::LakeError;
use crate::Result;

/// Configuration for the CSV reader.
#[derive(Debug, Clone, Copy)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: u8,
    /// Quote character (default `"`).
    pub quote: u8,
    /// Whether empty lines between records are skipped (default `true`).
    pub skip_empty_lines: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: b',',
            quote: b'"',
            skip_empty_lines: true,
        }
    }
}

/// Streaming CSV reader over any [`BufRead`].
#[derive(Debug)]
pub struct CsvReader<R> {
    input: R,
    options: CsvOptions,
    /// 1-based line number of the line currently being read (for errors).
    line: usize,
    done: bool,
}

impl<R: BufRead> CsvReader<R> {
    /// Create a reader with default options.
    pub fn new(input: R) -> Self {
        Self::with_options(input, CsvOptions::default())
    }

    /// Create a reader with explicit options.
    pub fn with_options(input: R, options: CsvOptions) -> Self {
        CsvReader {
            input,
            options,
            line: 0,
            done: false,
        }
    }

    /// Read the next record, or `Ok(None)` at end of input.
    ///
    /// A record is a vector of unescaped field strings. Quoted fields may
    /// contain the delimiter, the quote (escaped by doubling), and line
    /// breaks.
    pub fn next_record(&mut self) -> Result<Option<Vec<String>>> {
        if self.done {
            return Ok(None);
        }
        loop {
            let mut raw = Vec::new();
            let start_line = self.line + 1;
            // Read physical lines until quotes are balanced (a quoted field
            // may span lines) or EOF.
            loop {
                let mut buf = Vec::new();
                let n = self
                    .input
                    .read_until(b'\n', &mut buf)
                    .map_err(LakeError::from)?;
                if n == 0 {
                    if raw.is_empty() {
                        self.done = true;
                        return Ok(None);
                    }
                    break;
                }
                self.line += 1;
                raw.extend_from_slice(&buf);
                if quotes_balanced(&raw, self.options.quote) {
                    break;
                }
            }
            // Strip one trailing newline (and optional carriage return).
            while raw.last() == Some(&b'\n') || raw.last() == Some(&b'\r') {
                let last = *raw.last().expect("checked non-empty");
                if last == b'\n' {
                    raw.pop();
                    if raw.last() == Some(&b'\r') {
                        raw.pop();
                    }
                    break;
                }
                raw.pop();
            }
            if raw.is_empty() && self.options.skip_empty_lines {
                if self.done {
                    return Ok(None);
                }
                continue;
            }
            let record = parse_record(&raw, start_line, self.options)?;
            return Ok(Some(record));
        }
    }

    /// Collect every remaining record.
    pub fn records(mut self) -> Result<Vec<Vec<String>>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

fn quotes_balanced(bytes: &[u8], quote: u8) -> bool {
    bytes.iter().filter(|&&b| b == quote).count() % 2 == 0
}

/// Parse one logical record (already split on record boundaries).
fn parse_record(raw: &[u8], line: usize, options: CsvOptions) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = Vec::new();
    let mut i = 0;
    let quote = options.quote;
    let delim = options.delimiter;

    #[derive(PartialEq)]
    enum State {
        FieldStart,
        Unquoted,
        Quoted,
        QuoteInQuoted,
    }
    let mut state = State::FieldStart;

    while i < raw.len() {
        let b = raw[i];
        match state {
            State::FieldStart => {
                if b == quote {
                    state = State::Quoted;
                } else if b == delim {
                    fields.push(Vec::new());
                } else {
                    field.push(b);
                    state = State::Unquoted;
                }
            }
            State::Unquoted => {
                if b == delim {
                    fields.push(std::mem::take(&mut field));
                    state = State::FieldStart;
                } else {
                    field.push(b);
                }
            }
            State::Quoted => {
                if b == quote {
                    state = State::QuoteInQuoted;
                } else {
                    field.push(b);
                }
            }
            State::QuoteInQuoted => {
                if b == quote {
                    // Escaped quote.
                    field.push(quote);
                    state = State::Quoted;
                } else if b == delim {
                    fields.push(std::mem::take(&mut field));
                    state = State::FieldStart;
                } else {
                    return Err(LakeError::Csv {
                        line,
                        message: format!("unexpected byte {:?} after closing quote", char::from(b)),
                    });
                }
            }
        }
        i += 1;
    }
    match state {
        State::Quoted => {
            return Err(LakeError::Csv {
                line,
                message: "unterminated quoted field".to_owned(),
            })
        }
        State::FieldStart => fields.push(Vec::new()),
        State::Unquoted | State::QuoteInQuoted => fields.push(field),
    }

    fields
        .into_iter()
        .map(|f| {
            String::from_utf8(f).map_err(|_| LakeError::Csv {
                line,
                message: "field is not valid UTF-8".to_owned(),
            })
        })
        .collect()
}

/// Parse an in-memory CSV string into records.
pub fn parse_str(input: &str) -> Result<Vec<Vec<String>>> {
    CsvReader::new(input.as_bytes()).records()
}

/// Parse CSV from an arbitrary reader (buffered internally).
pub fn parse_reader<R: Read>(reader: R) -> Result<Vec<Vec<String>>> {
    CsvReader::new(io::BufReader::new(reader)).records()
}

/// Render one field, quoting only when necessary.
fn write_field<W: Write>(out: &mut W, field: &str, options: CsvOptions) -> io::Result<()> {
    let needs_quoting = field
        .bytes()
        .any(|b| b == options.delimiter || b == options.quote || b == b'\n' || b == b'\r')
        || field.starts_with(' ')
        || field.ends_with(' ');
    if !needs_quoting {
        return out.write_all(field.as_bytes());
    }
    let quote = char::from(options.quote);
    out.write_all(&[options.quote])?;
    for ch in field.chars() {
        if ch == quote {
            out.write_all(&[options.quote, options.quote])?;
        } else {
            let mut buf = [0u8; 4];
            out.write_all(ch.encode_utf8(&mut buf).as_bytes())?;
        }
    }
    out.write_all(&[options.quote])
}

/// Write records as CSV with default options.
pub fn write_records<W: Write>(out: &mut W, records: &[Vec<String>]) -> Result<()> {
    write_records_with(out, records, CsvOptions::default())
}

/// Write records as CSV with explicit options.
pub fn write_records_with<W: Write>(
    out: &mut W,
    records: &[Vec<String>],
    options: CsvOptions,
) -> Result<()> {
    for record in records {
        for (i, field) in record.iter().enumerate() {
            if i > 0 {
                out.write_all(&[options.delimiter])
                    .map_err(LakeError::from)?;
            }
            write_field(out, field, options).map_err(LakeError::from)?;
        }
        out.write_all(b"\n").map_err(LakeError::from)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_records() {
        let recs = parse_str("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], vec!["a", "b", "c"]);
        assert_eq!(recs[1], vec!["1", "2", "3"]);
    }

    #[test]
    fn missing_trailing_newline() {
        let recs = parse_str("a,b\n1,2").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn crlf_line_endings() {
        let recs = parse_str("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(recs[0], vec!["a", "b"]);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn quoted_fields_with_delimiters_and_quotes() {
        let recs = parse_str("\"a,1\",\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(recs[0], vec!["a,1", "say \"hi\""]);
    }

    #[test]
    fn quoted_field_with_embedded_newline() {
        let recs = parse_str("\"line1\nline2\",x\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0], vec!["line1\nline2", "x"]);
    }

    #[test]
    fn empty_fields_and_lines() {
        let recs = parse_str("a,,c\n\n,,\n").unwrap();
        assert_eq!(recs.len(), 2, "blank line skipped");
        assert_eq!(recs[0], vec!["a", "", "c"]);
        assert_eq!(recs[1], vec!["", "", ""]);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let err = parse_str("\"oops\n").unwrap_err();
        assert!(matches!(err, LakeError::Csv { .. }));
    }

    #[test]
    fn junk_after_closing_quote_is_an_error() {
        let err = parse_str("\"ok\"x,1\n").unwrap_err();
        assert!(matches!(err, LakeError::Csv { .. }));
    }

    #[test]
    fn custom_delimiter() {
        let opts = CsvOptions {
            delimiter: b';',
            ..CsvOptions::default()
        };
        let recs = CsvReader::with_options("a;b\n1;2\n".as_bytes(), opts)
            .records()
            .unwrap();
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn writer_quotes_only_when_needed() {
        let records = vec![vec![
            "plain".to_string(),
            "with,comma".to_string(),
            "with \"quote\"".to_string(),
            "multi\nline".to_string(),
            " padded ".to_string(),
        ]];
        let mut out = Vec::new();
        write_records(&mut out, &records).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("plain,\"with,comma\""));
        let parsed = parse_str(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn round_trip_unicode() {
        let records = vec![vec!["café".to_string(), "naïve, oui".to_string()]];
        let mut out = Vec::new();
        write_records(&mut out, &records).unwrap();
        let parsed = parse_str(std::str::from_utf8(&out).unwrap()).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn reader_is_streaming() {
        let mut reader = CsvReader::new("a,b\n1,2\n3,4\n".as_bytes());
        assert_eq!(reader.next_record().unwrap().unwrap(), vec!["a", "b"]);
        assert_eq!(reader.next_record().unwrap().unwrap(), vec!["1", "2"]);
        assert_eq!(reader.next_record().unwrap().unwrap(), vec!["3", "4"]);
        assert!(reader.next_record().unwrap().is_none());
        assert!(reader.next_record().unwrap().is_none(), "stays at EOF");
    }
}
