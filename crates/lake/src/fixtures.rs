//! Small built-in lakes used in documentation, examples, and tests.

use crate::catalog::LakeCatalog;
use crate::table::TableBuilder;

/// The four-table running example of Figure 1 in the paper.
///
/// * `T1` — corporate donations to protect at-risk species,
/// * `T2` — animal populations in zoos,
/// * `T3` — car imports,
/// * `T4` — corporate revenue.
///
/// `Jaguar` (animal in T1/T2, car maker in T3, company in T4) and `Puma`
/// (animal in T1, company in T4) are homographs; `Panda` and `Toyota` repeat
/// but keep a single meaning.
///
/// ```
/// let lake = lake::fixtures::running_example();
/// assert_eq!(lake.table_count(), 4);
/// assert_eq!(lake.attribute_count(), 12);
/// ```
pub fn running_example() -> LakeCatalog {
    let t1 = TableBuilder::new("T1")
        .column("Donor", ["Google", "Volkswagen", "BMW", "Amazon"])
        .column("At Risk", ["Panda", "Puma", "Jaguar", "Pelican"])
        .column("Donation", ["1M", "2M", "0.9M", "1.5M"])
        .build()
        .expect("running example T1 is rectangular");
    let t2 = TableBuilder::new("T2")
        .column("name", ["Panda", "Panda", "Lemur", "Jaguar"])
        .column("locale", ["Memphis", "Atlanta", "National", "San Diego"])
        .column("num", ["2", "2", "20", "8"])
        .build()
        .expect("running example T2 is rectangular");
    let t3 = TableBuilder::new("T3")
        .column("C1", ["XE", "Prius", "500"])
        .column("C2", ["Jaguar", "Toyota", "Fiat"])
        .column("C3", ["UK", "Japan", "Italy"])
        .build()
        .expect("running example T3 is rectangular");
    let t4 = TableBuilder::new("T4")
        .column("Name", ["Jaguar", "Puma", "Apple", "Toyota"])
        .column("Revenue", ["25.80", "4.64", "456", "123"])
        .column("Total", ["43224", "13000", "370870", "123456"])
        .build()
        .expect("running example T4 is rectangular");
    LakeCatalog::from_tables([t1, t2, t3, t4]).expect("running example tables have unique names")
}

/// The ground-truth homographs of the running example (normalized form).
pub fn running_example_homographs() -> Vec<&'static str> {
    vec!["JAGUAR", "PUMA"]
}

/// Repeated-but-unambiguous values of the running example (normalized form).
pub fn running_example_unambiguous_repeats() -> Vec<&'static str> {
    vec!["PANDA", "TOYOTA"]
}

/// A tiny two-community lake used by unit tests: two disjoint "animal" and
/// "car" attribute groups bridged only by the value `BRIDGE`.
///
/// The bridging value is the archetypal homograph: removing its node
/// disconnects the two communities of the co-occurrence graph.
pub fn two_community_lake(values_per_side: usize) -> LakeCatalog {
    let animals: Vec<String> = (0..values_per_side)
        .map(|i| format!("animal_{i}"))
        .collect();
    let cars: Vec<String> = (0..values_per_side).map(|i| format!("car_{i}")).collect();

    let mut zoo_a = animals.clone();
    zoo_a.push("BRIDGE".to_owned());
    let mut zoo_b = animals.clone();
    zoo_b.push("animal_extra".to_owned());

    let mut dealer_a = cars.clone();
    dealer_a.push("BRIDGE".to_owned());
    let mut dealer_b = cars.clone();
    dealer_b.push("car_extra".to_owned());

    let t1 = TableBuilder::new("zoo_a")
        .column("animal", zoo_a)
        .build()
        .expect("single column");
    let t2 = TableBuilder::new("zoo_b")
        .column("animal", zoo_b)
        .build()
        .expect("single column");
    let t3 = TableBuilder::new("dealer_a")
        .column("car", dealer_a)
        .build()
        .expect("single column");
    let t4 = TableBuilder::new("dealer_b")
        .column("car", dealer_b)
        .build()
        .expect("single column");
    LakeCatalog::from_tables([t1, t2, t3, t4]).expect("unique table names")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_example_has_expected_shape() {
        let lake = running_example();
        assert_eq!(lake.table_count(), 4);
        assert_eq!(lake.attribute_count(), 12);
        for h in running_example_homographs() {
            let id = lake.value_id(h).expect("homograph present");
            assert!(lake.value_attribute_count(id) >= 2);
        }
    }

    #[test]
    fn two_community_lake_bridges_via_single_value() {
        let lake = two_community_lake(5);
        let bridge = lake.value_id("BRIDGE").unwrap();
        assert_eq!(lake.value_attribute_count(bridge), 2);
        // every plain animal/car value appears in exactly two attributes of
        // its own side
        let a0 = lake.value_id("ANIMAL_0").unwrap();
        assert_eq!(lake.value_attribute_count(a0), 2);
    }
}
