//! Loading a data lake from (and saving it to) a directory of CSV files.
//!
//! Each `.csv` file becomes one [`Table`] whose name is the file stem and
//! whose first record is interpreted as the header (attribute names). Ragged
//! rows — rows with fewer or more cells than the header — are either padded /
//! truncated or rejected depending on [`LoadOptions::strict`]; open-data CSV
//! exports are frequently ragged, so lenient loading is the default.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::catalog::LakeCatalog;
use crate::column::Column;
use crate::csv::{CsvOptions, CsvReader};
use crate::error::LakeError;
use crate::table::Table;
use crate::Result;

/// Options controlling how CSV files are turned into tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadOptions {
    /// CSV dialect options.
    pub csv: CsvOptions,
    /// When `true`, ragged rows are an error; when `false` (default) short
    /// rows are padded with empty cells and long rows are truncated.
    pub strict: bool,
    /// Maximum number of rows to read per table (`None` = unlimited).
    pub max_rows: Option<usize>,
}

/// Parse a single CSV file into a [`Table`] named after its file stem.
pub fn load_table(path: &Path, options: LoadOptions) -> Result<Table> {
    let file = File::open(path).map_err(|e| LakeError::io_with_path(e, path))?;
    let mut reader = CsvReader::with_options(BufReader::new(file), options.csv);
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_owned());

    let header = match reader.next_record()? {
        Some(h) => h,
        None => return Err(LakeError::EmptyTable(name)),
    };
    let width = header.len();
    let mut columns: Vec<Vec<String>> = vec![Vec::new(); width];
    let mut row_idx = 0usize;
    while let Some(mut record) = reader.next_record()? {
        row_idx += 1;
        if let Some(max) = options.max_rows {
            if row_idx > max {
                break;
            }
        }
        if record.len() != width {
            if options.strict {
                return Err(LakeError::RaggedRow {
                    table: name,
                    row: row_idx,
                    expected: width,
                    found: record.len(),
                });
            }
            record.resize(width, String::new());
        }
        for (i, cell) in record.into_iter().enumerate().take(width) {
            columns[i].push(cell);
        }
    }

    let columns: Vec<Column> = header
        .into_iter()
        .enumerate()
        .map(|(i, col_name)| {
            let col_name = if col_name.trim().is_empty() {
                format!("column_{i}")
            } else {
                col_name
            };
            Column::new(col_name, std::mem::take(&mut columns[i]))
        })
        .collect();
    Ok(Table::from_columns(name, columns))
}

/// Load every `*.csv` file in a directory (non-recursive) into a catalog.
///
/// Files are loaded in lexicographic order so the resulting [`AttrId`]s
/// (and therefore downstream graph node ids) are deterministic.
///
/// [`AttrId`]: crate::catalog::AttrId
pub fn load_dir(dir: impl AsRef<Path>, options: LoadOptions) -> Result<LakeCatalog> {
    let dir = dir.as_ref();
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| LakeError::io_with_path(e, dir))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension()
                .map(|ext| ext.eq_ignore_ascii_case("csv"))
                .unwrap_or(false)
        })
        .collect();
    paths.sort();

    let mut catalog = LakeCatalog::new();
    for path in paths {
        let table = load_table(&path, options)?;
        catalog.add_table(table)?;
    }
    Ok(catalog)
}

/// Write every table of a catalog as `<dir>/<table_name>.csv`.
///
/// The directory is created if it does not exist. Existing files with the
/// same names are overwritten.
pub fn save_dir(catalog: &LakeCatalog, dir: impl AsRef<Path>) -> Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir).map_err(|e| LakeError::io_with_path(e, dir))?;
    for table in catalog.tables() {
        let path = dir.join(format!("{}.csv", table.name()));
        let file = File::create(&path).map_err(|e| LakeError::io_with_path(e, &path))?;
        let mut writer = BufWriter::new(file);
        write_table(&mut writer, table)?;
        writer
            .flush()
            .map_err(|e| LakeError::io_with_path(e, &path))?;
    }
    Ok(())
}

/// Serialize a single table as CSV (header + rows) to any writer.
pub fn write_table<W: Write>(out: &mut W, table: &Table) -> Result<()> {
    let header: Vec<String> = table
        .columns()
        .iter()
        .map(|c| c.name().to_owned())
        .collect();
    let mut records = Vec::with_capacity(table.row_count() + 1);
    records.push(header);
    for row in table.rows() {
        records.push(row.into_iter().map(str::to_owned).collect());
    }
    crate::csv::write_records(out, &records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lake_loader_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn load_single_table_with_header() {
        let dir = temp_dir("single");
        let path = dir.join("animals.csv");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "name,locale").unwrap();
        writeln!(f, "Panda,Memphis").unwrap();
        writeln!(f, "Jaguar,\"San Diego\"").unwrap();
        drop(f);

        let table = load_table(&path, LoadOptions::default()).unwrap();
        assert_eq!(table.name(), "animals");
        assert_eq!(table.column_count(), 2);
        assert_eq!(table.row_count(), 2);
        assert!(table
            .column("locale")
            .unwrap()
            .contains_normalized("SAN DIEGO"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lenient_loading_pads_and_truncates_ragged_rows() {
        let dir = temp_dir("ragged");
        let path = dir.join("ragged.csv");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "a,b,c").unwrap();
        writeln!(f, "1,2").unwrap();
        writeln!(f, "1,2,3,4").unwrap();
        drop(f);

        let table = load_table(&path, LoadOptions::default()).unwrap();
        assert_eq!(table.column_count(), 3);
        assert_eq!(table.row_count(), 2);

        let strict = LoadOptions {
            strict: true,
            ..LoadOptions::default()
        };
        assert!(matches!(
            load_table(&path, strict),
            Err(LakeError::RaggedRow { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn max_rows_limits_ingestion() {
        let dir = temp_dir("maxrows");
        let path = dir.join("big.csv");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "a").unwrap();
        for i in 0..100 {
            writeln!(f, "{i}").unwrap();
        }
        drop(f);
        let opts = LoadOptions {
            max_rows: Some(10),
            ..LoadOptions::default()
        };
        let table = load_table(&path, opts).unwrap();
        assert_eq!(table.row_count(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_header_names_get_placeholders() {
        let dir = temp_dir("header");
        let path = dir.join("h.csv");
        let mut f = File::create(&path).unwrap();
        writeln!(f, "a,,c").unwrap();
        writeln!(f, "1,2,3").unwrap();
        drop(f);
        let table = load_table(&path, LoadOptions::default()).unwrap();
        assert_eq!(table.columns()[1].name(), "column_1");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_and_reload_round_trips_lake() {
        let dir = temp_dir("roundtrip");
        let lake = crate::fixtures::running_example();
        save_dir(&lake, &dir).unwrap();
        let reloaded = load_dir(&dir, LoadOptions::default()).unwrap();
        assert_eq!(reloaded.table_count(), lake.table_count());
        assert_eq!(reloaded.attribute_count(), lake.attribute_count());
        assert_eq!(reloaded.value_count(), lake.value_count());
        assert!(reloaded.contains_value("JAGUAR"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_ignores_non_csv_files() {
        let dir = temp_dir("mixed");
        fs::write(dir.join("notes.txt"), "not a table").unwrap();
        fs::write(dir.join("t.csv"), "a\n1\n").unwrap();
        let lake = load_dir(&dir, LoadOptions::default()).unwrap();
        assert_eq!(lake.table_count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dir_is_deterministic_order() {
        let dir = temp_dir("order");
        fs::write(dir.join("b.csv"), "x\n1\n").unwrap();
        fs::write(dir.join("a.csv"), "y\n2\n").unwrap();
        let lake = load_dir(&dir, LoadOptions::default()).unwrap();
        assert_eq!(lake.tables()[0].name(), "a");
        assert_eq!(lake.tables()[1].name(), "b");
        fs::remove_dir_all(&dir).unwrap();
    }
}
