//! Column-oriented storage for a single attribute of a table.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::value::{normalize, value_kind, ValueKind};

/// One attribute (column) of a [`crate::table::Table`].
///
/// A column keeps the raw cells in row order plus a cached set of distinct
/// *normalized* values. DomainNet only consumes the distinct set — multiple
/// occurrences of a value inside one column contribute a single edge in the
/// bipartite graph — but the raw cells are preserved so the lake can be
/// written back out (e.g. by the benchmark generators) and so row-oriented
/// baselines remain possible.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    name: String,
    cells: Vec<String>,
    distinct: BTreeSet<String>,
}

impl Column {
    /// Create a column from a name and raw cells.
    pub fn new(name: impl Into<String>, cells: Vec<String>) -> Self {
        let mut distinct = BTreeSet::new();
        for cell in &cells {
            let norm = normalize(cell);
            if !norm.is_empty() {
                distinct.insert(norm);
            }
        }
        Column {
            name: name.into(),
            cells,
            distinct,
        }
    }

    /// Create an empty column with just a name.
    pub fn empty(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            cells: Vec::new(),
            distinct: BTreeSet::new(),
        }
    }

    /// Append a raw cell to the column.
    pub fn push(&mut self, cell: impl Into<String>) {
        let cell = cell.into();
        let norm = normalize(&cell);
        if !norm.is_empty() {
            self.distinct.insert(norm);
        }
        self.cells.push(cell);
    }

    /// The column (attribute) name. May be empty or meaningless in a lake.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the column.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of rows (cells), counting duplicates and missing cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The raw cells in row order.
    pub fn cells(&self) -> &[String] {
        &self.cells
    }

    /// The distinct normalized (non-missing) values, in lexicographic order.
    pub fn distinct_values(&self) -> impl Iterator<Item = &str> {
        self.distinct.iter().map(String::as_str)
    }

    /// Number of distinct normalized non-missing values.
    ///
    /// This is the *cardinality* of the attribute in the paper's terminology.
    pub fn distinct_count(&self) -> usize {
        self.distinct.len()
    }

    /// Whether the normalized form of `value` occurs in this column.
    pub fn contains_normalized(&self, normalized: &str) -> bool {
        self.distinct.contains(normalized)
    }

    /// Fraction of distinct values that look numeric (integer or float).
    ///
    /// Used by the D4 baseline, which only discovers domains over
    /// string-dominated attributes, and by the statistics module.
    pub fn numeric_fraction(&self) -> f64 {
        if self.distinct.is_empty() {
            return 0.0;
        }
        let numeric = self
            .distinct
            .iter()
            .filter(|v| value_kind(v) != ValueKind::Text)
            .count();
        numeric as f64 / self.distinct.len() as f64
    }

    /// Whether the column is predominantly textual (less than half numeric).
    pub fn is_textual(&self) -> bool {
        self.numeric_fraction() < 0.5
    }

    /// Replace every cell whose normalized form equals `target` with
    /// `replacement`, returning the number of cells rewritten.
    ///
    /// This is the primitive behind the TUS-I homograph-injection procedure
    /// (§4.3): a value is picked in a column and globally rewritten to an
    /// artificial token such as `InjectedHomograph1`.
    pub fn replace_value(&mut self, target_normalized: &str, replacement: &str) -> usize {
        let mut replaced = 0;
        for cell in &mut self.cells {
            if normalize(cell) == target_normalized {
                *cell = replacement.to_owned();
                replaced += 1;
            }
        }
        if replaced > 0 {
            self.recompute_distinct();
        }
        replaced
    }

    fn recompute_distinct(&mut self) {
        self.distinct.clear();
        for cell in &self.cells {
            let norm = normalize(cell);
            if !norm.is_empty() {
                self.distinct.insert(norm);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(cells: &[&str]) -> Column {
        Column::new("c", cells.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn distinct_values_are_normalized_and_deduped() {
        let c = col(&["jaguar", " Jaguar ", "PUMA", "puma", ""]);
        let distinct: Vec<&str> = c.distinct_values().collect();
        assert_eq!(distinct, vec!["JAGUAR", "PUMA"]);
        assert_eq!(c.distinct_count(), 2);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn push_updates_distinct() {
        let mut c = Column::empty("animals");
        c.push("Panda");
        c.push("panda");
        c.push("Lemur");
        assert_eq!(c.distinct_count(), 2);
        assert!(c.contains_normalized("LEMUR"));
        assert!(!c.contains_normalized("Lemur"));
    }

    #[test]
    fn missing_cells_do_not_count_as_distinct() {
        let c = col(&["", "  ", "x"]);
        assert_eq!(c.distinct_count(), 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn numeric_fraction_and_textual_flag() {
        let numeric = col(&["1", "2", "3.5"]);
        assert!((numeric.numeric_fraction() - 1.0).abs() < 1e-12);
        assert!(!numeric.is_textual());

        let mixed = col(&["1", "Jaguar", "Puma", "Lemur"]);
        assert!(mixed.is_textual());

        let empty = Column::empty("e");
        assert_eq!(empty.numeric_fraction(), 0.0);
        assert!(empty.is_textual());
    }

    #[test]
    fn replace_value_rewrites_all_matching_cells() {
        let mut c = col(&["Jaguar", "jaguar ", "Puma"]);
        let n = c.replace_value("JAGUAR", "InjectedHomograph1");
        assert_eq!(n, 2);
        assert!(c.contains_normalized("INJECTEDHOMOGRAPH1"));
        assert!(!c.contains_normalized("JAGUAR"));
        assert_eq!(c.distinct_count(), 2);
    }

    #[test]
    fn replace_value_missing_target_is_noop() {
        let mut c = col(&["Puma"]);
        assert_eq!(c.replace_value("JAGUAR", "X"), 0);
        assert_eq!(c.distinct_count(), 1);
    }

    #[test]
    fn rename() {
        let mut c = Column::empty("a");
        c.set_name("b");
        assert_eq!(c.name(), "b");
    }
}
