//! Column-oriented storage for a single attribute of a table.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::value::{normalize, value_kind, FxBuildHasher, FxHashMap, ValueKind};

/// One attribute (column) of a [`crate::table::Table`].
///
/// Cells are stored **dictionary-encoded**: a table of distinct raw cells
/// (in first-occurrence order) plus one index per row. Real-lake columns
/// repeat a small vocabulary across many rows, so this is dramatically
/// smaller than dense row storage, it makes [`Column::replace_value`] an
/// O(dictionary) operation instead of an O(rows) one, and it is the shape
/// the persistence layer (`dn-store`) writes to and restores from disk —
/// normalization on load runs once per distinct raw cell, not once per
/// row. Alongside the dictionary the column caches the set of distinct
/// *normalized* values, which is all DomainNet itself consumes.
///
/// Dense row access ([`Column::cells`]) is still available: the rows are
/// materialized lazily on first use and cached (row-oriented consumers —
/// CSV write-back, baselines — keep working unchanged).
///
/// Invariant: every dictionary entry is referenced by at least one row and
/// entries are pairwise distinct; all constructors and mutators uphold
/// this, and [`Column::from_dictionary`] validates it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    name: String,
    /// Distinct raw cells, in first-occurrence order.
    dictionary: Vec<String>,
    /// Per-row index into `dictionary`.
    indices: Vec<u32>,
    /// Cached distinct normalized (non-missing) values.
    distinct: BTreeSet<String>,
    /// Lazily materialized dense rows for [`Column::cells`].
    #[serde(skip)]
    dense: OnceLock<Vec<String>>,
}

/// The structural dictionary-encoding invariants shared by
/// [`Column::from_dictionary`] and [`Column::validate_encoding`]: every
/// index in range, every entry referenced by some row, entries pairwise
/// distinct.
fn check_encoding(name: &str, dictionary: &[String], indices: &[u32]) -> crate::Result<()> {
    let corrupt = |msg: String| crate::error::LakeError::Serde(msg);
    let mut used = vec![false; dictionary.len()];
    for &ix in indices {
        match used.get_mut(ix as usize) {
            Some(slot) => *slot = true,
            None => {
                return Err(corrupt(format!(
                    "column '{name}': cell index {ix} outside its {}-entry dictionary",
                    dictionary.len()
                )))
            }
        }
    }
    if let Some(unused) = used.iter().position(|&u| !u) {
        return Err(corrupt(format!(
            "column '{name}': dictionary entry {unused} is referenced by no row"
        )));
    }
    let mut seen: FxHashMap<&str, usize> =
        FxHashMap::with_capacity_and_hasher(dictionary.len(), FxBuildHasher::default());
    for (i, entry) in dictionary.iter().enumerate() {
        if let Some(prev) = seen.insert(entry.as_str(), i) {
            return Err(corrupt(format!(
                "column '{name}': dictionary entries {prev} and {i} are identical"
            )));
        }
    }
    Ok(())
}

fn distinct_of(dictionary: &[String]) -> BTreeSet<String> {
    // collect() on a BTreeSet sorts into a Vec and bulk-builds the tree,
    // which beats repeated inserts on the snapshot-recovery hot path.
    dictionary
        .iter()
        .map(|raw| normalize(raw))
        .filter(|norm| !norm.is_empty())
        .collect()
}

impl Column {
    /// Create a column from a name and dense raw cells.
    pub fn new(name: impl Into<String>, cells: Vec<String>) -> Self {
        let mut dictionary: Vec<String> = Vec::new();
        let mut index_of: FxHashMap<&str, u32> = FxHashMap::default();
        let mut indices = Vec::with_capacity(cells.len());
        for cell in &cells {
            match index_of.get(cell.as_str()) {
                Some(&ix) => indices.push(ix),
                None => {
                    let ix = dictionary.len() as u32;
                    dictionary.push(cell.clone());
                    index_of.insert(cell.as_str(), ix);
                    indices.push(ix);
                }
            }
        }
        let distinct = distinct_of(&dictionary);
        drop(index_of);
        // The input rows are deliberately dropped: the dictionary + index
        // encoding reproduces them exactly, and only row-oriented
        // consumers (CSV write-back, baselines) ever materialize the dense
        // form again via `cells()`. Keeping both would double resident
        // memory for every ingested column.
        drop(cells);
        Column {
            name: name.into(),
            dictionary,
            indices,
            distinct,
            dense: OnceLock::new(),
        }
    }

    /// Create an empty column with just a name.
    pub fn empty(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            dictionary: Vec::new(),
            indices: Vec::new(),
            distinct: BTreeSet::new(),
            dense: OnceLock::new(),
        }
    }

    /// Reassemble a column from its dictionary-encoded parts — the shape
    /// the persistence layer stores. The column's invariants are validated
    /// (every index in range, every entry referenced, no duplicate
    /// entries) and the distinct-value cache is re-derived by normalizing
    /// the dictionary, so the result is semantically identical to
    /// [`Column::new`] over the materialized rows at a fraction of the
    /// cost (no per-row allocation, no per-row normalization).
    ///
    /// # Errors
    /// [`crate::error::LakeError::Serde`] describing the violated
    /// invariant.
    pub fn from_dictionary(
        name: impl Into<String>,
        dictionary: Vec<String>,
        indices: Vec<u32>,
    ) -> crate::Result<Self> {
        let name = name.into();
        check_encoding(&name, &dictionary, &indices)?;
        let distinct = distinct_of(&dictionary);
        Ok(Column {
            name,
            dictionary,
            indices,
            distinct,
            dense: OnceLock::new(),
        })
    }

    /// Check this column's dictionary-encoding invariants and the
    /// consistency of its cached distinct set, as if it had gone through
    /// [`Column::from_dictionary`].
    ///
    /// Constructors and mutators uphold the invariants, but a `Column`
    /// can also enter the process through serde (write-ahead-log records
    /// carry whole tables), where a derived `Deserialize` trusts the
    /// fields as written. The WAL replay path calls this on every decoded
    /// table so a checksum-valid but structurally impossible record
    /// surfaces as a typed error instead of an out-of-bounds panic (or a
    /// silently wrong distinct set) later.
    ///
    /// # Errors
    /// [`crate::error::LakeError::Serde`] describing the violated
    /// invariant.
    pub fn validate_encoding(&self) -> crate::Result<()> {
        check_encoding(&self.name, &self.dictionary, &self.indices)?;
        if self.distinct != distinct_of(&self.dictionary) {
            return Err(crate::error::LakeError::Serde(format!(
                "column '{}': cached distinct set does not match its dictionary",
                self.name
            )));
        }
        Ok(())
    }

    /// Append a raw cell to the column.
    pub fn push(&mut self, cell: impl Into<String>) {
        let cell = cell.into();
        let norm = normalize(&cell);
        if !norm.is_empty() {
            self.distinct.insert(norm);
        }
        let ix = match self.dictionary.iter().position(|d| *d == cell) {
            Some(ix) => ix as u32,
            None => {
                let ix = self.dictionary.len() as u32;
                self.dictionary.push(cell);
                ix
            }
        };
        self.indices.push(ix);
        self.dense = OnceLock::new();
    }

    /// The column (attribute) name. May be empty or meaningless in a lake.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the column.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of rows (cells), counting duplicates and missing cells.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The raw cells in row order (materialized lazily and cached).
    pub fn cells(&self) -> &[String] {
        self.dense.get_or_init(|| {
            self.indices
                .iter()
                .map(|&ix| self.dictionary[ix as usize].clone())
                .collect()
        })
    }

    /// The distinct raw cells, in first-occurrence order.
    pub fn dictionary(&self) -> &[String] {
        &self.dictionary
    }

    /// The per-row dictionary indices.
    pub fn cell_indices(&self) -> &[u32] {
        &self.indices
    }

    /// The distinct normalized (non-missing) values, in lexicographic order.
    pub fn distinct_values(&self) -> impl Iterator<Item = &str> {
        self.distinct.iter().map(String::as_str)
    }

    /// Number of distinct normalized non-missing values.
    ///
    /// This is the *cardinality* of the attribute in the paper's terminology.
    pub fn distinct_count(&self) -> usize {
        self.distinct.len()
    }

    /// Whether the normalized form of `value` occurs in this column.
    pub fn contains_normalized(&self, normalized: &str) -> bool {
        self.distinct.contains(normalized)
    }

    /// Fraction of distinct values that look numeric (integer or float).
    ///
    /// Used by the D4 baseline, which only discovers domains over
    /// string-dominated attributes, and by the statistics module.
    pub fn numeric_fraction(&self) -> f64 {
        if self.distinct.is_empty() {
            return 0.0;
        }
        let numeric = self
            .distinct
            .iter()
            .filter(|v| value_kind(v) != ValueKind::Text)
            .count();
        numeric as f64 / self.distinct.len() as f64
    }

    /// Whether the column is predominantly textual (less than half numeric).
    pub fn is_textual(&self) -> bool {
        self.numeric_fraction() < 0.5
    }

    /// Replace every cell whose normalized form equals `target` with
    /// `replacement`, returning the number of cells rewritten.
    ///
    /// This is the primitive behind the TUS-I homograph-injection procedure
    /// (§4.3): a value is picked in a column and globally rewritten to an
    /// artificial token such as `InjectedHomograph1`. With dictionary
    /// encoding the rewrite touches only the dictionary — O(distinct raw
    /// cells) plus one index-remap pass — instead of every row.
    pub fn replace_value(&mut self, target_normalized: &str, replacement: &str) -> usize {
        let mut hit = vec![false; self.dictionary.len()];
        let mut any = false;
        for (i, entry) in self.dictionary.iter().enumerate() {
            if normalize(entry) == target_normalized {
                hit[i] = true;
                any = true;
            }
        }
        if !any {
            return 0;
        }
        let replaced = self.indices.iter().filter(|&&ix| hit[ix as usize]).count();
        for (i, entry) in self.dictionary.iter_mut().enumerate() {
            if hit[i] {
                replacement.clone_into(entry);
            }
        }
        // Rewriting can collide entries (several spellings collapse into
        // one replacement, or the replacement already existed): merge
        // duplicates back into a canonical first-occurrence dictionary and
        // remap the row indices.
        let mut canonical: Vec<String> = Vec::with_capacity(self.dictionary.len());
        let mut new_of_old: Vec<u32> = Vec::with_capacity(self.dictionary.len());
        {
            let mut index_of: FxHashMap<String, u32> = FxHashMap::with_capacity_and_hasher(
                self.dictionary.len(),
                FxBuildHasher::default(),
            );
            for entry in self.dictionary.drain(..) {
                match index_of.get(entry.as_str()) {
                    Some(&ix) => new_of_old.push(ix),
                    None => {
                        let ix = canonical.len() as u32;
                        index_of.insert(entry.clone(), ix);
                        canonical.push(entry);
                        new_of_old.push(ix);
                    }
                }
            }
        }
        self.dictionary = canonical;
        for ix in &mut self.indices {
            *ix = new_of_old[*ix as usize];
        }
        self.recompute_distinct();
        self.dense = OnceLock::new();
        replaced
    }

    fn recompute_distinct(&mut self) {
        self.distinct = distinct_of(&self.dictionary);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(cells: &[&str]) -> Column {
        Column::new("c", cells.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn distinct_values_are_normalized_and_deduped() {
        let c = col(&["jaguar", " Jaguar ", "PUMA", "puma", ""]);
        let distinct: Vec<&str> = c.distinct_values().collect();
        assert_eq!(distinct, vec!["JAGUAR", "PUMA"]);
        assert_eq!(c.distinct_count(), 2);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn push_updates_distinct() {
        let mut c = Column::empty("animals");
        c.push("Panda");
        c.push("panda");
        c.push("Lemur");
        assert_eq!(c.distinct_count(), 2);
        assert!(c.contains_normalized("LEMUR"));
        assert!(!c.contains_normalized("Lemur"));
        assert_eq!(c.cells(), &["Panda", "panda", "Lemur"]);
    }

    #[test]
    fn missing_cells_do_not_count_as_distinct() {
        let c = col(&["", "  ", "x"]);
        assert_eq!(c.distinct_count(), 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn numeric_fraction_and_textual_flag() {
        let numeric = col(&["1", "2", "3.5"]);
        assert!((numeric.numeric_fraction() - 1.0).abs() < 1e-12);
        assert!(!numeric.is_textual());

        let mixed = col(&["1", "Jaguar", "Puma", "Lemur"]);
        assert!(mixed.is_textual());

        let empty = Column::empty("e");
        assert_eq!(empty.numeric_fraction(), 0.0);
        assert!(empty.is_textual());
    }

    #[test]
    fn replace_value_rewrites_all_matching_cells() {
        let mut c = col(&["Jaguar", "jaguar ", "Puma"]);
        let n = c.replace_value("JAGUAR", "InjectedHomograph1");
        assert_eq!(n, 2);
        assert!(c.contains_normalized("INJECTEDHOMOGRAPH1"));
        assert!(!c.contains_normalized("JAGUAR"));
        assert_eq!(c.distinct_count(), 2);
        // Dense rows rematerialize with the rewrite applied.
        assert_eq!(
            c.cells(),
            &["InjectedHomograph1", "InjectedHomograph1", "Puma"]
        );
    }

    #[test]
    fn replace_value_collapsing_onto_an_existing_cell_keeps_invariants() {
        let mut c = col(&["Jaguar", "Rover", "jaguar", "Rover"]);
        let n = c.replace_value("JAGUAR", "Rover");
        assert_eq!(n, 2);
        assert_eq!(c.cells(), &["Rover", "Rover", "Rover", "Rover"]);
        assert_eq!(c.dictionary().len(), 1, "collided entries merged");
        assert_eq!(c.distinct_count(), 1);
        // The merged encoding round-trips through from_dictionary.
        let rebuilt = Column::from_dictionary(
            c.name().to_owned(),
            c.dictionary().to_vec(),
            c.cell_indices().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.cells(), c.cells());
    }

    #[test]
    fn replace_value_missing_target_is_noop() {
        let mut c = col(&["Puma"]);
        assert_eq!(c.replace_value("JAGUAR", "X"), 0);
        assert_eq!(c.distinct_count(), 1);
    }

    #[test]
    fn rename() {
        let mut c = Column::empty("a");
        c.set_name("b");
        assert_eq!(c.name(), "b");
    }

    #[test]
    fn from_dictionary_matches_new_over_materialized_cells() {
        let cells = ["Jaguar", " jaguar", "Puma", "", "Puma"];
        let reference = col(&cells);
        let rebuilt = Column::from_dictionary(
            "c",
            reference.dictionary().to_vec(),
            reference.cell_indices().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.cells(), reference.cells());
        assert_eq!(
            rebuilt.distinct_values().collect::<Vec<_>>(),
            reference.distinct_values().collect::<Vec<_>>()
        );
    }

    #[test]
    fn from_dictionary_rejects_violated_invariants() {
        // Out-of-range index.
        let err = Column::from_dictionary("c", vec!["x".to_owned()], vec![0, 3]).unwrap_err();
        assert!(matches!(err, crate::error::LakeError::Serde(_)));
        // Unreferenced entry.
        let err =
            Column::from_dictionary("c", vec!["x".to_owned(), "ghost".to_owned()], vec![0, 0])
                .unwrap_err();
        assert!(matches!(err, crate::error::LakeError::Serde(_)));
        // Duplicate entries.
        let err = Column::from_dictionary("c", vec!["x".to_owned(), "x".to_owned()], vec![0, 1])
            .unwrap_err();
        assert!(matches!(err, crate::error::LakeError::Serde(_)));
    }

    #[test]
    fn serde_round_trip_preserves_rows() {
        let c = col(&["Jaguar", "Puma", "Jaguar"]);
        let json = serde_json::to_string(&c).unwrap();
        let back: Column = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cells(), c.cells());
        assert_eq!(back.distinct_count(), c.distinct_count());
    }
}
