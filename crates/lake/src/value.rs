//! Data-value normalization and interning.
//!
//! The DomainNet paper treats every cell of every table as a single opaque
//! string: "Every data value is treated as a single string, it is capitalized
//! and has its leading and trailing white-space removed to ensure consistent
//! comparison of data values across the lake" (§3.2). The same normalized
//! string occurring in several attributes is represented by *one* value node
//! in the bipartite graph, so the lake needs a global mapping from normalized
//! strings to dense integer identifiers. That mapping is the
//! [`ValueInterner`].

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize};

/// A fast, non-cryptographic string hasher (the multiply-rotate scheme
/// popularized by Firefox and rustc's `FxHasher`).
///
/// The interner's string→id map — and the per-column maps in
/// [`crate::column`] — sit on the hot path of both CSV ingestion and
/// snapshot recovery, where SipHash's keyed security buys nothing: the
/// keys are data values we already store verbatim, and the maps are
/// rebuilt from scratch on every load. Swapping the hasher measurably
/// shortens cold starts.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let mut tail = 0u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(b) << (8 * i);
        }
        self.add(tail ^ (bytes.len() as u64) << 56);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — the lake's default for hot-path maps.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A dense identifier for a distinct normalized data value in the lake.
///
/// `ValueId`s are assigned in insertion order starting from zero, which makes
/// them directly usable as node indices in the bipartite DomainNet graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ValueId(pub u32);

impl ValueId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ValueId {
    fn from(raw: u32) -> Self {
        ValueId(raw)
    }
}

/// Normalize a raw cell into the lake-wide canonical form.
///
/// Normalization follows the paper: surrounding ASCII whitespace is trimmed
/// and the value is upper-cased (Unicode-aware). Interior whitespace is
/// collapsed to single spaces so that `"San  Diego"` and `"San Diego"`
/// compare equal — open-data tables are full of such formatting noise and
/// treating them as distinct values would split what is semantically one
/// value node into several.
///
/// ```
/// assert_eq!(lake::normalize("  jaguar "), "JAGUAR");
/// assert_eq!(lake::normalize("San  Diego"), "SAN DIEGO");
/// assert_eq!(lake::normalize(""), "");
/// ```
pub fn normalize(raw: &str) -> String {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return String::new();
    }
    if trimmed.is_ascii() {
        // Bytewise fast path for the overwhelmingly common case: skips the
        // per-char decode and the `char::to_uppercase` iterator machinery.
        // Semantics match the general path exactly — for ASCII input,
        // `char::is_whitespace` accepts `\t \n \x0B \x0C \r ' '` and
        // uppercasing is the ASCII table. Normalization is on the critical
        // path of both CSV ingestion and snapshot recovery, so this is a
        // measured cold-start win, not speculation.
        let mut out = Vec::with_capacity(trimmed.len());
        let mut last_was_space = false;
        for &b in trimmed.as_bytes() {
            if b.is_ascii_whitespace() || b == 0x0B {
                if !last_was_space {
                    out.push(b' ');
                    last_was_space = true;
                }
            } else {
                out.push(b.to_ascii_uppercase());
                last_was_space = false;
            }
        }
        return String::from_utf8(out).expect("ASCII in, ASCII out");
    }
    let mut out = String::with_capacity(trimmed.len());
    let mut last_was_space = false;
    for ch in trimmed.chars() {
        if ch.is_whitespace() {
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else {
            for up in ch.to_uppercase() {
                out.push(up);
            }
            last_was_space = false;
        }
    }
    out
}

/// Returns `true` when a normalized value should be treated as missing.
///
/// Empty strings are never interned: an empty cell carries no co-occurrence
/// signal and would otherwise become an enormous artificial homograph hub.
/// Note that *textual* null markers such as `"."`, `"NA"`, or
/// `"NOT AVAILABLE"` are deliberately **kept** — the paper highlights that
/// these behave as genuine homographs in a lake and DomainNet should surface
/// them (§5.3 finds `"."` in the top-10).
#[inline]
pub fn is_missing(normalized: &str) -> bool {
    normalized.is_empty()
}

/// A global mapping between normalized data values and dense [`ValueId`]s.
///
/// The interner owns one copy of every distinct normalized string in the lake
/// and hands out stable ids. Lookups by string and by id are both O(1).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct ValueInterner {
    values: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, ValueId>,
}

impl ValueInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty interner with space for `capacity` distinct values.
    pub fn with_capacity(capacity: usize) -> Self {
        ValueInterner {
            values: Vec::with_capacity(capacity),
            index: FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
        }
    }

    /// Rebuild an interner from its value table (ids are the positions),
    /// e.g. when loading persisted state. Cheaper than re-interning one by
    /// one — the table is adopted as-is and each value is cloned once for
    /// the index instead of twice.
    ///
    /// # Errors
    /// The first duplicated value, as `(kept id, duplicate position)` —
    /// duplicates would silently alias two ids onto one string.
    pub fn from_values(values: Vec<String>) -> std::result::Result<Self, (ValueId, usize)> {
        let mut index = FxHashMap::with_capacity_and_hasher(values.len(), FxBuildHasher::default());
        for (i, v) in values.iter().enumerate() {
            if let Some(&prev) = index.get(v) {
                return Err((prev, i));
            }
            index.insert(v.clone(), ValueId(i as u32));
        }
        Ok(ValueInterner { values, index })
    }

    /// Intern an **already normalized** value, returning its id.
    ///
    /// Calling this with a non-normalized string would create a distinct
    /// entry; use [`ValueInterner::intern_raw`] when starting from raw cells.
    pub fn intern(&mut self, normalized: &str) -> ValueId {
        if let Some(&id) = self.index.get(normalized) {
            return id;
        }
        let id = ValueId(self.values.len() as u32);
        self.values.push(normalized.to_owned());
        self.index.insert(normalized.to_owned(), id);
        id
    }

    /// Normalize a raw cell and intern the result.
    ///
    /// Returns `None` when the cell is missing (empty after normalization).
    pub fn intern_raw(&mut self, raw: &str) -> Option<ValueId> {
        let normalized = normalize(raw);
        if is_missing(&normalized) {
            None
        } else {
            Some(self.intern(&normalized))
        }
    }

    /// Look up the id of a normalized value without inserting it.
    pub fn get(&self, normalized: &str) -> Option<ValueId> {
        self.index.get(normalized).copied()
    }

    /// Look up the id of a raw (un-normalized) value without inserting it.
    pub fn get_raw(&self, raw: &str) -> Option<ValueId> {
        self.get(&normalize(raw))
    }

    /// The normalized string behind an id.
    ///
    /// # Panics
    /// Panics if the id was not produced by this interner.
    pub fn resolve(&self, id: ValueId) -> &str {
        &self.values[id.index()]
    }

    /// The normalized string behind an id, if it exists.
    pub fn try_resolve(&self, id: ValueId) -> Option<&str> {
        self.values.get(id.index()).map(String::as_str)
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over `(ValueId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ValueId(i as u32), v.as_str()))
    }

    /// Rebuild the string→id index, e.g. after deserializing.
    ///
    /// The index is skipped during serialization to keep artifacts small; a
    /// deserialized interner must be re-indexed before lookups by string.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), ValueId(i as u32)))
            .collect();
    }
}

/// Classification of a value's lexical shape.
///
/// DomainNet itself is type-agnostic, but the D4 baseline only operates on
/// string attributes and the benchmark generators need to distinguish numeric
/// columns, so the substrate offers a lightweight sniffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueKind {
    /// Parses as an integer (optionally signed).
    Integer,
    /// Parses as a floating-point number (and not as an integer).
    Float,
    /// Anything else.
    Text,
}

/// Sniff the lexical kind of a (raw or normalized) value.
///
/// ```
/// use lake::value::{value_kind, ValueKind};
/// assert_eq!(value_kind("42"), ValueKind::Integer);
/// assert_eq!(value_kind("-3.25"), ValueKind::Float);
/// assert_eq!(value_kind("1.5M"), ValueKind::Text);
/// assert_eq!(value_kind("Jaguar"), ValueKind::Text);
/// ```
pub fn value_kind(value: &str) -> ValueKind {
    let v = value.trim();
    if v.is_empty() {
        return ValueKind::Text;
    }
    if v.parse::<i64>().is_ok() {
        ValueKind::Integer
    } else if v.parse::<f64>().is_ok() {
        ValueKind::Float
    } else {
        ValueKind::Text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_trims_and_uppercases() {
        assert_eq!(normalize("  jaguar "), "JAGUAR");
        assert_eq!(normalize("Puma"), "PUMA");
        assert_eq!(normalize("tOYOTA"), "TOYOTA");
    }

    #[test]
    fn normalize_collapses_interior_whitespace() {
        assert_eq!(normalize("San  Diego"), "SAN DIEGO");
        assert_eq!(normalize("a\tb\nc"), "A B C");
    }

    #[test]
    fn normalize_handles_unicode() {
        assert_eq!(normalize("café"), "CAFÉ");
        assert_eq!(normalize("straße"), "STRASSE");
    }

    #[test]
    fn normalize_empty_is_missing() {
        assert!(is_missing(&normalize("   ")));
        assert!(is_missing(&normalize("")));
        assert!(!is_missing(&normalize(".")));
        assert!(!is_missing(&normalize("NA")));
    }

    #[test]
    fn intern_is_idempotent() {
        let mut interner = ValueInterner::new();
        let a = interner.intern("JAGUAR");
        let b = interner.intern("JAGUAR");
        assert_eq!(a, b);
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn intern_raw_normalizes_before_interning() {
        let mut interner = ValueInterner::new();
        let a = interner.intern_raw(" jaguar ").unwrap();
        let b = interner.intern_raw("JAGUAR").unwrap();
        assert_eq!(a, b);
        assert_eq!(interner.resolve(a), "JAGUAR");
    }

    #[test]
    fn intern_raw_skips_missing() {
        let mut interner = ValueInterner::new();
        assert!(interner.intern_raw("   ").is_none());
        assert!(interner.intern_raw("").is_none());
        assert_eq!(interner.len(), 0);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut interner = ValueInterner::new();
        let ids: Vec<ValueId> = ["A", "B", "C"].iter().map(|v| interner.intern(v)).collect();
        assert_eq!(ids, vec![ValueId(0), ValueId(1), ValueId(2)]);
        assert_eq!(interner.resolve(ValueId(1)), "B");
    }

    #[test]
    fn get_does_not_insert() {
        let mut interner = ValueInterner::new();
        interner.intern("A");
        assert!(interner.get("B").is_none());
        assert_eq!(interner.len(), 1);
        assert!(interner.get_raw(" a ").is_some());
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut interner = ValueInterner::new();
        interner.intern("X");
        interner.intern("Y");
        let collected: Vec<(ValueId, &str)> = interner.iter().collect();
        assert_eq!(collected, vec![(ValueId(0), "X"), (ValueId(1), "Y")]);
    }

    #[test]
    fn rebuild_index_restores_lookups() {
        let mut interner = ValueInterner::new();
        interner.intern("A");
        interner.intern("B");
        let json = serde_json::to_string(&interner).unwrap();
        let mut restored: ValueInterner = serde_json::from_str(&json).unwrap();
        assert!(restored.get("A").is_none(), "index is skipped in serde");
        restored.rebuild_index();
        assert_eq!(restored.get("A"), Some(ValueId(0)));
        assert_eq!(restored.get("B"), Some(ValueId(1)));
    }

    #[test]
    fn value_kind_sniffing() {
        assert_eq!(value_kind("42"), ValueKind::Integer);
        assert_eq!(value_kind("-17"), ValueKind::Integer);
        assert_eq!(value_kind("3.25"), ValueKind::Float);
        assert_eq!(value_kind("-0.5"), ValueKind::Float);
        assert_eq!(value_kind("1e6"), ValueKind::Float);
        assert_eq!(value_kind("0.9M"), ValueKind::Text);
        assert_eq!(value_kind("Jaguar"), ValueKind::Text);
        assert_eq!(value_kind(""), ValueKind::Text);
    }
}
