//! # `lake` — data-lake substrate
//!
//! This crate provides the data-lake substrate underneath the DomainNet
//! homograph-detection pipeline (Leventidis et al., EDBT 2021). A *data lake*
//! here is a loosely-governed collection of tables whose metadata (table
//! names, attribute names) may be missing, ambiguous, or misleading. The
//! DomainNet method deliberately ignores metadata and works purely from the
//! co-occurrence of *data values* inside *attributes* (columns); this crate
//! is responsible for representing that content faithfully and efficiently.
//!
//! ## What lives here
//!
//! * [`value`] — value normalization (the paper treats every cell as a single
//!   string, trims surrounding whitespace, and upper-cases it so the same
//!   token compares equal across tables) and a compact [`value::ValueInterner`]
//!   mapping each distinct normalized value to a dense [`value::ValueId`].
//! * [`mod@column`] / [`mod@table`] — column-oriented table storage with per-column
//!   distinct-value sets and lightweight type sniffing.
//! * [`catalog`] — the [`catalog::LakeCatalog`]: the whole lake, with a global
//!   attribute index ([`catalog::AttrId`]) and iteration over
//!   (attribute, distinct values) pairs, which is exactly the shape the
//!   bipartite DomainNet graph is built from.
//! * [`delta`] — the mutation layer: [`delta::LakeDelta`] records
//!   table-level changes and [`delta::MutableLake`] applies them in place
//!   with stable value/attribute ids, reporting exact incidence-level
//!   [`delta::DeltaEffects`] for incremental downstream maintenance.
//! * [`csv`] — a from-scratch RFC-4180 CSV reader/writer (no external crate),
//!   used by [`loader`] to ingest a directory of `.csv` files as a lake.
//! * [`stats`] — per-lake statistics matching Table 1 of the paper.
//! * [`error`] — the crate error type.
//!
//! ## Quick example
//!
//! ```
//! use lake::catalog::LakeCatalog;
//! use lake::table::TableBuilder;
//!
//! let mut catalog = LakeCatalog::new();
//! let table = TableBuilder::new("donations")
//!     .column("donor", ["Google", "Volkswagen", "BMW"])
//!     .column("at_risk", ["Panda", "Puma", "Jaguar"])
//!     .build()
//!     .unwrap();
//! catalog.add_table(table).unwrap();
//!
//! assert_eq!(catalog.table_count(), 1);
//! assert_eq!(catalog.attribute_count(), 2);
//! // Values are normalized (upper-cased, trimmed) when interned.
//! assert!(catalog.contains_value("JAGUAR"));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod catalog;
pub mod column;
pub mod csv;
pub mod delta;
pub mod error;
pub mod fixtures;
pub mod loader;
pub mod stats;
pub mod table;
pub mod value;

pub use catalog::{AttrId, LakeCatalog};
pub use column::Column;
pub use delta::{DeltaEffects, LakeDelta, LakeOp, LakeView, MutableLake};
pub use error::LakeError;
pub use table::{Table, TableBuilder};
pub use value::{normalize, ValueId, ValueInterner};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LakeError>;
