//! JSON round-trip coverage for every service-layer response type.
//!
//! These types cross the process boundary now (the `dn-server` crate
//! serves them over HTTP), so their serde derives are load-bearing: each
//! test serializes a *real* value produced by the engine, deserializes it
//! back, and asserts full equality — scores compared bit-exactly, since
//! both the vendored writer and Rust's float parsing use
//! shortest-round-trip formatting.

use dn_service::{
    serve, AttributeNeighborhood, CacheStats, ScoreCard, ServiceConfig, SnapshotStats,
    TableSummary, ValueExplanation,
};
use domainnet::Measure;
use lake::delta::MutableLake;

fn service() -> dn_service::ServiceHandle {
    let lake = MutableLake::from_catalog(&lake::fixtures::running_example());
    let (service, _writer) = serve(
        lake,
        ServiceConfig {
            measures: vec![Measure::lcc(), Measure::exact_bc()],
            cache_capacity: 8,
            prune_single_attribute_values: false,
            threads: 1,
        },
    );
    service
}

#[test]
fn score_card_round_trips() {
    let snapshot = service().current();
    for measure in [Measure::lcc(), Measure::exact_bc()] {
        let card = snapshot.score_card(measure, "Jaguar").expect("live value");
        let json = serde_json::to_string(&card).unwrap();
        let back: ScoreCard = serde_json::from_str(&json).unwrap();
        assert_eq!(back.value, card.value);
        assert_eq!(back.measure, card.measure);
        assert_eq!(
            back.score.to_bits(),
            card.score.to_bits(),
            "bit-exact score"
        );
        assert_eq!(back.rank, card.rank);
        assert_eq!(back.of, card.of);
        assert_eq!(
            back.percentile.to_bits(),
            card.percentile.to_bits(),
            "bit-exact percentile"
        );
        assert_eq!(back.attribute_count, card.attribute_count);
        assert_eq!(back.cardinality, card.cardinality);
        assert_eq!(back, card, "PartialEq agrees field-by-field");
    }
}

#[test]
fn value_explanation_round_trips() {
    let snapshot = service().current();
    let explanation = snapshot.explain("Jaguar").expect("live value");
    assert!(
        explanation.attributes.len() >= 2,
        "the homograph spans attributes"
    );
    let json = serde_json::to_string(&explanation).unwrap();
    let back: ValueExplanation = serde_json::from_str(&json).unwrap();
    assert_eq!(back, explanation);
    // Nested AttributeNeighborhood entries round-trip standalone too.
    let attr = explanation.attributes[0].clone();
    let json = serde_json::to_string(&attr).unwrap();
    let back: AttributeNeighborhood = serde_json::from_str(&json).unwrap();
    assert_eq!(back, attr);
}

#[test]
fn table_summary_round_trips() {
    let snapshot = service().current();
    let summary = snapshot
        .table_summary("T1", Measure::exact_bc(), 3)
        .expect("table T1 exists");
    assert!(!summary.top.is_empty());
    let json = serde_json::to_string(&summary).unwrap();
    let back: TableSummary = serde_json::from_str(&json).unwrap();
    assert_eq!(back.table, summary.table);
    assert_eq!(back.attribute_count, summary.attribute_count);
    assert_eq!(back.candidate_values, summary.candidate_values);
    assert_eq!(back.incidence_count, summary.incidence_count);
    assert_eq!(back.top.len(), summary.top.len());
    for (a, b) in back.top.iter().zip(summary.top.iter()) {
        assert_eq!(a.value, b.value);
        assert_eq!(a.score.to_bits(), b.score.to_bits());
    }
}

#[test]
fn snapshot_stats_round_trip() {
    let stats = service().current().stats();
    let json = serde_json::to_string(&stats).unwrap();
    let back: SnapshotStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
}

#[test]
fn cache_stats_round_trip() {
    let service = service();
    let reader = service.reader();
    let _ = reader.top_k(Measure::lcc(), 5);
    let _ = reader.top_k(Measure::lcc(), 5);
    let stats = service.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    let json = serde_json::to_string(&stats).unwrap();
    let back: CacheStats = serde_json::from_str(&json).unwrap();
    assert_eq!(back, stats);
}
