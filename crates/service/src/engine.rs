//! The single-writer / many-reader serving engine.
//!
//! ## Epoch lifecycle
//!
//! ```text
//!   Writer thread                       Reader threads (N)
//!   ─────────────                       ──────────────────
//!   stage(Δ1) stage(Δ2) ...             reader.pin()  ──┐ clones Arc<Snapshot>
//!   commit():                                           │ (read-lock, ns-scale)
//!     lake.apply_batch([Δ1, Δ2, ...])                   ▼
//!     net.apply_delta(effects)          queries run lock-free against the
//!     net.warm_rankings(measures)       pinned snapshot until the next pin
//!   publish():
//!     Snapshot::extract  ──►  swap current, bump epoch, invalidate cache
//! ```
//!
//! Readers never block the writer and the writer never blocks readers: the
//! only shared mutable state is the `RwLock` around the *pointer* to the
//! current snapshot (held for a clone) and the `Mutex` around the top-k
//! cache (held for a hash lookup). A reader pinned to epoch `e` keeps
//! answering from `e` — with full internal consistency — until it re-pins,
//! which is the database-style snapshot-isolation contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use domainnet::{DeltaStats, DomainNet, DomainNetBuilder, Measure, ScoredValue};
use lake::delta::{LakeDelta, MutableLake};
use lake::LakeError;

use crate::cache::{CacheKey, CacheStats, TopKCache};
use crate::snapshot::{ScoreCard, Snapshot, TableSummary, ValueExplanation};

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The measures the service answers queries for. Every publish warms
    /// and snapshots each of them.
    pub measures: Vec<Measure>,
    /// Top-k cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Whether single-attribute values are pruned from the graph (the
    /// paper's default; see `DomainNetConfig`).
    pub prune_single_attribute_values: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            measures: vec![Measure::lcc(), Measure::exact_bc()],
            cache_capacity: 64,
            prune_single_attribute_values: true,
        }
    }
}

/// Errors surfaced by the writer path.
#[derive(Debug)]
pub enum ServiceError {
    /// A delta failed to apply to the lake (e.g. a duplicate table name).
    Lake(LakeError),
    /// Incremental maintenance rejected the applied effects.
    Maintenance(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Lake(e) => write!(f, "lake mutation failed: {e}"),
            ServiceError::Maintenance(msg) => write!(f, "incremental maintenance failed: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<LakeError> for ServiceError {
    fn from(e: LakeError) -> Self {
        ServiceError::Lake(e)
    }
}

struct Shared {
    current: RwLock<Arc<Snapshot>>,
    cache: Mutex<TopKCache>,
    epochs_published: AtomicU64,
}

impl Shared {
    fn current(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot pointer lock"))
    }
}

/// Start serving a lake: build the net, warm the configured measures, and
/// publish epoch 0. Returns the cloneable read handle and the unique
/// [`Writer`] (single-writer discipline is enforced by ownership — there is
/// exactly one `Writer` and it is not `Clone`).
pub fn serve(lake: MutableLake, config: ServiceConfig) -> (ServiceHandle, Writer) {
    let net = DomainNetBuilder::new()
        .prune_single_attribute_values(config.prune_single_attribute_values)
        .build(&lake);
    net.warm_rankings(&config.measures);
    let snapshot = Arc::new(Snapshot::extract(&net, &lake, &config.measures, 0));
    let shared = Arc::new(Shared {
        current: RwLock::new(snapshot),
        cache: Mutex::new(TopKCache::new(config.cache_capacity)),
        epochs_published: AtomicU64::new(1),
    });
    let handle = ServiceHandle {
        shared: Arc::clone(&shared),
    };
    let writer = Writer {
        shared,
        lake,
        net,
        measures: config.measures,
        staged: Vec::new(),
        epoch: 0,
    };
    (handle, writer)
}

/// Cloneable read-side handle: mints [`Reader`]s and reports service stats.
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl ServiceHandle {
    /// A new reader, pinned to the current snapshot.
    pub fn reader(&self) -> Reader {
        Reader {
            pinned: self.shared.current(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// The current snapshot (for one-off queries; readers that issue many
    /// queries should hold a [`Reader`] and pin explicitly).
    pub fn current(&self) -> Arc<Snapshot> {
        self.shared.current()
    }

    /// The epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.current().epoch()
    }

    /// Number of snapshots published so far (epoch 0 included).
    pub fn epochs_published(&self) -> u64 {
        self.shared.epochs_published.load(Ordering::Relaxed)
    }

    /// Counters of the shared top-k cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.lock().expect("cache lock").stats()
    }
}

/// A reader pinned to one epoch. Queries are answered entirely from the
/// pinned snapshot; call [`Reader::pin`] to move to the latest epoch.
pub struct Reader {
    shared: Arc<Shared>,
    pinned: Arc<Snapshot>,
}

impl Reader {
    /// Re-pin to the current snapshot, returning its epoch. The pinned
    /// epoch never moves backwards.
    pub fn pin(&mut self) -> u64 {
        self.pinned = self.shared.current();
        self.pinned.epoch()
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.pinned
    }

    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.pinned.epoch()
    }

    /// The top-`k` most homograph-like values under a measure, served from
    /// the shared LRU cache when a reader of the same epoch asked before.
    pub fn top_k(&self, measure: Measure, k: usize) -> Option<Arc<Vec<ScoredValue>>> {
        let key = CacheKey {
            epoch: self.pinned.epoch(),
            measure,
            k,
        };
        if let Some(hit) = self.shared.cache.lock().expect("cache lock").get(&key) {
            return Some(hit);
        }
        let fresh = Arc::new(self.pinned.top_k(measure, k)?);
        self.shared
            .cache
            .lock()
            .expect("cache lock")
            .insert(key, Arc::clone(&fresh));
        Some(fresh)
    }

    /// Score/rank/percentile lookup for one value. See
    /// [`Snapshot::score_card`].
    pub fn score_card(&self, measure: Measure, value: &str) -> Option<ScoreCard> {
        self.pinned.score_card(measure, value)
    }

    /// Attribute-neighborhood explanation for one value. See
    /// [`Snapshot::explain`].
    pub fn explain(&self, value: &str) -> Option<ValueExplanation> {
        self.pinned.explain(value)
    }

    /// Per-table summary. See [`Snapshot::table_summary`].
    pub fn table_summary(&self, table: &str, measure: Measure, k: usize) -> Option<TableSummary> {
        self.pinned.table_summary(table, measure, k)
    }
}

/// The unique writer: stages delta batches, folds them into the net via the
/// incremental path, and publishes epochs.
pub struct Writer {
    shared: Arc<Shared>,
    lake: MutableLake,
    net: DomainNet,
    measures: Vec<Measure>,
    staged: Vec<LakeDelta>,
    epoch: u64,
}

impl Writer {
    /// Stage a delta for the next [`Writer::commit`].
    pub fn stage(&mut self, delta: LakeDelta) {
        self.staged.push(delta);
    }

    /// Number of staged, uncommitted deltas.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Apply every staged delta as one batch through the incremental path
    /// and warm the served measures. Does **not** publish — readers keep
    /// seeing the previous epoch until [`Writer::publish`].
    ///
    /// # Errors
    /// On a lake-level failure the batch stops at the failing op (earlier
    /// ops remain applied, see [`MutableLake::apply_batch`]); the net is
    /// then rebuilt from the lake's live state so writer-side state stays
    /// coherent, and the error is returned. The staged queue is cleared
    /// either way.
    pub fn commit(&mut self) -> Result<DeltaStats, ServiceError> {
        let staged = std::mem::take(&mut self.staged);
        if staged.is_empty() {
            return Ok(DeltaStats::default());
        }
        let effects = match self.lake.apply_batch(staged.iter()) {
            Ok(effects) => effects,
            Err(e) => {
                self.resync();
                return Err(e.into());
            }
        };
        let stats = match self.net.apply_delta(&self.lake, &effects) {
            Ok(stats) => stats,
            Err(msg) => {
                self.resync();
                return Err(ServiceError::Maintenance(msg));
            }
        };
        self.net.warm_rankings(&self.measures);
        Ok(stats)
    }

    /// Extract a snapshot of the net's current state and swap it in as the
    /// new epoch, invalidating the top-k cache. Returns the new epoch.
    pub fn publish(&mut self) -> u64 {
        self.epoch += 1;
        let snapshot = Arc::new(Snapshot::extract(
            &self.net,
            &self.lake,
            &self.measures,
            self.epoch,
        ));
        *self.shared.current.write().expect("snapshot pointer lock") = snapshot;
        self.shared.cache.lock().expect("cache lock").invalidate();
        self.shared.epochs_published.fetch_add(1, Ordering::Relaxed);
        self.epoch
    }

    /// Convenience: stage one delta, commit, and publish.
    pub fn apply_and_publish(
        &mut self,
        delta: LakeDelta,
    ) -> Result<(DeltaStats, u64), ServiceError> {
        self.stage(delta);
        let stats = self.commit()?;
        Ok((stats, self.publish()))
    }

    /// Rebuild the net from the lake's live state (the escape hatch after a
    /// failed batch) and re-warm the served measures.
    fn resync(&mut self) {
        self.net.refresh(&self.lake);
        self.net.warm_rankings(&self.measures);
    }

    /// The maintained lake (the writer's live state, possibly ahead of the
    /// published epoch).
    pub fn lake(&self) -> &MutableLake {
        &self.lake
    }

    /// The maintained net.
    pub fn net(&self) -> &DomainNet {
        &self.net
    }

    /// The last published epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A read handle onto the service this writer publishes to.
    pub fn service(&self) -> ServiceHandle {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domainnet::DomainNetBuilder;
    use lake::table::TableBuilder;

    fn running_lake() -> MutableLake {
        MutableLake::from_catalog(&lake::fixtures::running_example())
    }

    fn config() -> ServiceConfig {
        ServiceConfig {
            measures: vec![Measure::lcc(), Measure::exact_bc()],
            cache_capacity: 8,
            prune_single_attribute_values: false,
        }
    }

    fn zebra_table() -> LakeDelta {
        LakeDelta::new().add_table(
            TableBuilder::new("T9")
                .column("animal", ["Jaguar", "Zebra", "Okapi"])
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn epoch_zero_serves_the_initial_lake() {
        let (service, writer) = serve(running_lake(), config());
        assert_eq!(service.epoch(), 0);
        assert_eq!(writer.epoch(), 0);
        let reader = service.reader();
        let top = reader.top_k(Measure::exact_bc(), 1).unwrap();
        assert_eq!(top[0].value, "JAGUAR");
        reader.snapshot().verify_consistency().unwrap();
    }

    #[test]
    fn pinned_readers_keep_their_epoch_until_they_re_pin() {
        let (service, mut writer) = serve(running_lake(), config());
        let mut reader = service.reader();
        let before = reader.snapshot().stats();

        writer.apply_and_publish(zebra_table()).unwrap();

        // Unpinned: still epoch 0, same counts, fully consistent.
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.snapshot().stats(), before);
        reader.snapshot().verify_consistency().unwrap();

        // Re-pin: epoch 1 with the new table visible.
        assert_eq!(reader.pin(), 1);
        let after = reader.snapshot().stats();
        assert!(after.live_candidates > before.live_candidates);
        assert!(reader.snapshot().explain("Zebra").is_some());
        reader.snapshot().verify_consistency().unwrap();
    }

    #[test]
    fn commit_without_publish_is_invisible_to_readers() {
        let (service, mut writer) = serve(running_lake(), config());
        writer.stage(zebra_table());
        let stats = writer.commit().unwrap();
        assert!(stats.edges_added > 0);
        assert_eq!(service.epoch(), 0, "not yet published");
        assert!(service.current().explain("Zebra").is_none());
        writer.publish();
        assert_eq!(service.epoch(), 1);
        assert!(service.current().explain("Zebra").is_some());
    }

    #[test]
    fn batched_commit_matches_a_fresh_build() {
        let (_service, mut writer) = serve(running_lake(), config());
        writer.stage(zebra_table());
        writer.stage(LakeDelta::new().remove_table("T3"));
        writer.stage(LakeDelta::new().replace_value("T4", "Name", "Puma", "Lynx"));
        writer.commit().unwrap();
        writer.publish();

        let fresh = DomainNetBuilder::new()
            .prune_single_attribute_values(false)
            .build(writer.lake());
        let snap = writer.service().current();
        for measure in [Measure::lcc(), Measure::exact_bc()] {
            let a = snap.ranking(measure).unwrap();
            let b = fresh.rank_shared(measure);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.value, y.value, "{measure:?}");
                assert!((x.score - y.score).abs() < 1e-9, "{measure:?} {}", x.value);
            }
        }
    }

    #[test]
    fn top_k_cache_is_shared_and_invalidated_on_publish() {
        let (service, mut writer) = serve(running_lake(), config());
        let reader_a = service.reader();
        let reader_b = service.reader();
        let first = reader_a.top_k(Measure::exact_bc(), 3).unwrap();
        let second = reader_b.top_k(Measure::exact_bc(), 3).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "same epoch + same k must share one cached prefix"
        );
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        writer.apply_and_publish(zebra_table()).unwrap();
        assert_eq!(service.cache_stats().entries, 0, "publish invalidates");
        // A still-pinned reader recomputes under its old epoch key.
        let again = reader_a.top_k(Measure::exact_bc(), 3).unwrap();
        assert_eq!(again.len(), 3);
        assert_eq!(
            again.iter().map(|s| &s.value).collect::<Vec<_>>(),
            first.iter().map(|s| &s.value).collect::<Vec<_>>()
        );
    }

    #[test]
    fn failed_batches_resync_the_writer() {
        let (service, mut writer) = serve(running_lake(), config());
        writer.stage(zebra_table());
        writer.stage(LakeDelta::new().remove_table("no-such-table"));
        let err = writer.commit().unwrap_err();
        assert!(matches!(err, ServiceError::Lake(LakeError::NotFound(_))));
        assert_eq!(writer.staged_len(), 0, "failed batch is dropped");

        // The first op stuck (documented batch semantics); the writer
        // resynced its net, so continuing to mutate and publish works and
        // matches a fresh build of the final lake.
        writer
            .apply_and_publish(LakeDelta::new().remove_table("T1"))
            .unwrap();
        let snap = service.current();
        snap.verify_consistency().unwrap();
        assert!(snap.explain("Zebra").is_some(), "partial batch is visible");
        let fresh = DomainNetBuilder::new()
            .prune_single_attribute_values(false)
            .build(writer.lake());
        let a = snap.ranking(Measure::lcc()).unwrap();
        let b = fresh.rank_shared(Measure::lcc());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x.score - y.score).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_commit_is_a_cheap_no_op() {
        let (_service, mut writer) = serve(running_lake(), config());
        let stats = writer.commit().unwrap();
        assert_eq!(stats, DeltaStats::default());
        assert_eq!(writer.epoch(), 0, "no publish happened");
    }
}
