//! The single-writer / many-reader serving engine.
//!
//! ## Epoch lifecycle
//!
//! ```text
//!   Writer thread                       Reader threads (N)
//!   ─────────────                       ──────────────────
//!   stage(Δ1) stage(Δ2) ...             reader.pin()  ──┐ clones Arc<Snapshot>
//!   commit():                                           │ (read-lock, ns-scale)
//!     lake.apply_batch([Δ1, Δ2, ...])                   ▼
//!     net.apply_delta(effects)          queries run lock-free against the
//!     net.warm_rankings(measures)       pinned snapshot until the next pin
//!   publish():
//!     Snapshot::extract  ──►  swap current, bump epoch, invalidate cache
//! ```
//!
//! Readers never block the writer and the writer never blocks readers: the
//! only shared mutable state is the `RwLock` around the *pointer* to the
//! current snapshot (held for a clone) and the `Mutex` around the top-k
//! cache (held for a hash lookup). A reader pinned to epoch `e` keeps
//! answering from `e` — with full internal consistency — until it re-pins,
//! which is the database-style snapshot-isolation contract.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use dn_store::{Store, StoreError};
use domainnet::{DeltaStats, DomainNet, DomainNetBuilder, Measure, ScoredValue};
use lake::delta::{LakeDelta, MutableLake};
use lake::LakeError;

use crate::cache::{CacheKey, CacheStats, TopKCache};
use crate::snapshot::{ScoreCard, Snapshot, TableSummary, ValueExplanation};

/// Configuration for [`serve`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The measures the service answers queries for. Every publish warms
    /// and snapshots each of them.
    pub measures: Vec<Measure>,
    /// Top-k cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Whether single-attribute values are pruned from the graph (the
    /// paper's default; see `DomainNetConfig`).
    pub prune_single_attribute_values: bool,
    /// Worker threads for score computation, snapshot encoding, and
    /// recovery (clamped to at least 1). Purely a runtime knob: every width
    /// produces bit-identical scores and snapshots, so it is safe to change
    /// between restarts of the same store.
    pub threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            measures: vec![Measure::lcc(), Measure::exact_bc()],
            cache_capacity: 64,
            prune_single_attribute_values: true,
            threads: 1,
        }
    }
}

/// Errors surfaced by the writer path.
#[derive(Debug)]
pub enum ServiceError {
    /// A delta failed to apply to the lake (e.g. a duplicate table name).
    Lake(LakeError),
    /// Incremental maintenance rejected the applied effects.
    Maintenance(String),
    /// The durability layer failed (WAL append, checkpoint, or recovery).
    Store(StoreError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Lake(e) => write!(f, "lake mutation failed: {e}"),
            ServiceError::Maintenance(msg) => write!(f, "incremental maintenance failed: {msg}"),
            ServiceError::Store(e) => write!(f, "durability layer failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<LakeError> for ServiceError {
    fn from(e: LakeError) -> Self {
        ServiceError::Lake(e)
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

/// When the durable writer checkpoints (writes a snapshot and trims the
/// WAL). Both triggers are optional and OR-ed; the check runs at the start
/// of every [`Writer::commit`], so "every N epochs" means "at the first
/// commit after N epochs have been published since the last checkpoint".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once this many epochs were published since the last one.
    pub every_epochs: Option<u64>,
    /// Checkpoint once the WAL holds at least this many bytes of records.
    pub max_wal_bytes: Option<u64>,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_epochs: Some(8),
            max_wal_bytes: Some(4 << 20),
        }
    }
}

impl CheckpointPolicy {
    /// Checkpoint every `n` published epochs only.
    pub fn every_epochs(n: u64) -> Self {
        CheckpointPolicy {
            every_epochs: Some(n),
            max_wal_bytes: None,
        }
    }

    /// Checkpoint when the WAL exceeds `bytes` of records only.
    pub fn max_wal_bytes(bytes: u64) -> Self {
        CheckpointPolicy {
            every_epochs: None,
            max_wal_bytes: Some(bytes),
        }
    }

    /// Never checkpoint automatically (use [`Writer::checkpoint_now`]).
    pub fn manual() -> Self {
        CheckpointPolicy {
            every_epochs: None,
            max_wal_bytes: None,
        }
    }

    fn is_due(&self, epochs_since_checkpoint: u64, wal_record_bytes: u64) -> bool {
        self.every_epochs
            .is_some_and(|n| epochs_since_checkpoint >= n)
            || self.max_wal_bytes.is_some_and(|m| wal_record_bytes >= m)
    }
}

/// The writer's attachment to a [`Store`]: the open store, the checkpoint
/// policy, and the epoch the last checkpoint was taken at.
#[derive(Debug)]
struct Persistence {
    store: Store,
    policy: CheckpointPolicy,
    last_checkpoint_epoch: u64,
}

struct Shared {
    current: RwLock<Arc<Snapshot>>,
    cache: Mutex<TopKCache>,
    epochs_published: AtomicU64,
}

impl Shared {
    fn current(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().expect("snapshot pointer lock"))
    }
}

/// Start serving a lake: build the net, warm the configured measures, and
/// publish epoch 0. Returns the cloneable read handle and the unique
/// [`Writer`] (single-writer discipline is enforced by ownership — there is
/// exactly one `Writer` and it is not `Clone`).
pub fn serve(lake: MutableLake, config: ServiceConfig) -> (ServiceHandle, Writer) {
    let mut net = DomainNetBuilder::new()
        .prune_single_attribute_values(config.prune_single_attribute_values)
        .build(&lake);
    net.set_compute_threads(config.threads);
    net.warm_rankings(&config.measures);
    build_service(lake, net, config, 0, None)
}

/// Like [`serve`], but durable: every committed batch is appended to a
/// write-ahead log in `dir` before it is applied, and the
/// [`CheckpointPolicy`] periodically snapshots the engine and trims the
/// log. `dir` must not already hold a store — reopening one after a crash
/// (or a clean exit; the two are handled identically) goes through
/// [`serve_from_dir`].
///
/// An initial checkpoint of the freshly built engine is written before the
/// service comes up, so recovery always has a snapshot to start from.
///
/// # Errors
/// [`ServiceError::Store`] if the directory holds a store already or the
/// initial checkpoint cannot be written.
pub fn serve_durable(
    lake: MutableLake,
    config: ServiceConfig,
    dir: impl Into<PathBuf>,
    policy: CheckpointPolicy,
) -> Result<(ServiceHandle, Writer), ServiceError> {
    let mut store = Store::create(dir)?;
    store.set_threads(config.threads);
    let mut net = DomainNetBuilder::new()
        .prune_single_attribute_values(config.prune_single_attribute_values)
        .build(&lake);
    net.set_compute_threads(config.threads);
    net.warm_rankings(&config.measures);
    store.checkpoint(&lake, &net, 0, &config.measures)?;
    let persistence = Persistence {
        store,
        policy,
        last_checkpoint_epoch: 0,
    };
    Ok(build_service(lake, net, config, 0, Some(persistence)))
}

/// Restore a serving engine from a store directory: load the newest valid
/// snapshot, replay the WAL suffix through the incremental path, and
/// publish the recovered state as the current epoch (numbering resumes
/// where the crashed engine left off).
///
/// The recovered net keeps the graph configuration it was persisted with
/// (`config.prune_single_attribute_values` does not re-prune an existing
/// graph). `config.measures` should match the measures the crashed engine
/// served — recovery replays and re-warms the *persisted* measure list so
/// incremental approximate-BC estimates continue their exact sequence;
/// any additional measures requested here are computed fresh on the
/// recovered graph, which is deterministic for the exact measures.
///
/// # Errors
/// [`ServiceError::Store`] when the directory holds no usable snapshot or
/// its contents fail validation.
pub fn serve_from_dir(
    dir: impl Into<PathBuf>,
    config: ServiceConfig,
    policy: CheckpointPolicy,
) -> Result<(ServiceHandle, Writer), ServiceError> {
    let (store, recovered) = Store::recover_threaded(dir, config.threads)?;
    let epoch = recovered.epoch;
    let (lake, mut net) = (recovered.lake, recovered.net);
    net.set_compute_threads(config.threads);
    net.warm_rankings(&config.measures);
    let persistence = Persistence {
        store,
        policy,
        // Measure checkpoint age from the last *on-disk* checkpoint, not
        // from the recovered epoch: epochs that only live in the WAL must
        // keep counting toward the policy, or a service that crashes more
        // often than it checkpoints would replay an ever-growing log.
        last_checkpoint_epoch: recovered.snapshot_epoch,
    };
    Ok(build_service(lake, net, config, epoch, Some(persistence)))
}

/// Shared tail of the three entry points: publish `net` (already warmed)
/// as the current snapshot at `epoch` and hand out the handle + writer.
fn build_service(
    lake: MutableLake,
    net: DomainNet,
    config: ServiceConfig,
    epoch: u64,
    persistence: Option<Persistence>,
) -> (ServiceHandle, Writer) {
    let snapshot = Arc::new(Snapshot::extract(&net, &lake, &config.measures, epoch));
    let shared = Arc::new(Shared {
        current: RwLock::new(snapshot),
        cache: Mutex::new(TopKCache::new(config.cache_capacity)),
        epochs_published: AtomicU64::new(1),
    });
    let handle = ServiceHandle {
        shared: Arc::clone(&shared),
    };
    let writer = Writer {
        shared,
        lake,
        net,
        measures: config.measures,
        staged: Vec::new(),
        epoch,
        persistence,
    };
    (handle, writer)
}

/// Cloneable read-side handle: mints [`Reader`]s and reports service stats.
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl ServiceHandle {
    /// A new reader, pinned to the current snapshot.
    pub fn reader(&self) -> Reader {
        Reader {
            pinned: self.shared.current(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// The current snapshot (for one-off queries; readers that issue many
    /// queries should hold a [`Reader`] and pin explicitly).
    pub fn current(&self) -> Arc<Snapshot> {
        self.shared.current()
    }

    /// The epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.current().epoch()
    }

    /// Number of snapshots published so far (epoch 0 included).
    pub fn epochs_published(&self) -> u64 {
        self.shared.epochs_published.load(Ordering::Relaxed)
    }

    /// Counters of the shared top-k cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.lock().expect("cache lock").stats()
    }
}

/// A reader pinned to one epoch. Queries are answered entirely from the
/// pinned snapshot; call [`Reader::pin`] to move to the latest epoch.
pub struct Reader {
    shared: Arc<Shared>,
    pinned: Arc<Snapshot>,
}

impl Reader {
    /// Re-pin to the current snapshot, returning its epoch. The pinned
    /// epoch never moves backwards.
    pub fn pin(&mut self) -> u64 {
        self.pinned = self.shared.current();
        self.pinned.epoch()
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.pinned
    }

    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.pinned.epoch()
    }

    /// The top-`k` most homograph-like values under a measure, served from
    /// the shared LRU cache when a reader of the same epoch asked before.
    pub fn top_k(&self, measure: Measure, k: usize) -> Option<Arc<Vec<ScoredValue>>> {
        let key = CacheKey {
            epoch: self.pinned.epoch(),
            measure,
            k,
        };
        if let Some(hit) = self.shared.cache.lock().expect("cache lock").get(&key) {
            return Some(hit);
        }
        let fresh = Arc::new(self.pinned.top_k(measure, k)?);
        self.shared
            .cache
            .lock()
            .expect("cache lock")
            .insert(key, Arc::clone(&fresh));
        Some(fresh)
    }

    /// Score/rank/percentile lookup for one value. See
    /// [`Snapshot::score_card`].
    pub fn score_card(&self, measure: Measure, value: &str) -> Option<ScoreCard> {
        self.pinned.score_card(measure, value)
    }

    /// Attribute-neighborhood explanation for one value. See
    /// [`Snapshot::explain`].
    pub fn explain(&self, value: &str) -> Option<ValueExplanation> {
        self.pinned.explain(value)
    }

    /// Per-table summary. See [`Snapshot::table_summary`].
    pub fn table_summary(&self, table: &str, measure: Measure, k: usize) -> Option<TableSummary> {
        self.pinned.table_summary(table, measure, k)
    }

    /// Dump the top-`k` ranking under `measure` as CSV (header +
    /// `rank,value,score,attribute_count,cardinality` rows) — the export
    /// the golden-corpus workflow and external diffing tools consume.
    /// Scores are rendered with Rust's shortest-round-trip float
    /// formatting, so re-parsing the CSV recovers them exactly. Returns
    /// the number of data rows written.
    ///
    /// # Errors
    /// [`lake::LakeError::NotFound`] when the pinned snapshot does not
    /// serve `measure`; I/O errors from the underlying writer.
    pub fn export_top_k_csv<W: std::io::Write>(
        &self,
        measure: Measure,
        k: usize,
        out: &mut W,
    ) -> lake::Result<usize> {
        let ranking = self.top_k(measure, k).ok_or_else(|| {
            LakeError::NotFound(format!(
                "measure {measure:?} in the snapshot of epoch {}",
                self.epoch()
            ))
        })?;
        let mut records = Vec::with_capacity(ranking.len() + 1);
        records.push(
            ["rank", "value", "score", "attribute_count", "cardinality"]
                .map(str::to_owned)
                .to_vec(),
        );
        for (i, scored) in ranking.iter().enumerate() {
            records.push(vec![
                (i + 1).to_string(),
                scored.value.clone(),
                scored.score.to_string(),
                scored.attribute_count.to_string(),
                scored.cardinality.to_string(),
            ]);
        }
        lake::csv::write_records(out, &records)?;
        Ok(ranking.len())
    }
}

/// The unique writer: stages delta batches, folds them into the net via the
/// incremental path, and publishes epochs.
pub struct Writer {
    shared: Arc<Shared>,
    lake: MutableLake,
    net: DomainNet,
    measures: Vec<Measure>,
    staged: Vec<LakeDelta>,
    epoch: u64,
    /// `Some` for writers created by [`serve_durable`] / [`serve_from_dir`].
    persistence: Option<Persistence>,
}

impl Writer {
    /// Stage a delta for the next [`Writer::commit`].
    pub fn stage(&mut self, delta: LakeDelta) {
        self.staged.push(delta);
    }

    /// Number of staged, uncommitted deltas.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Apply every staged delta as one batch through the incremental path
    /// and warm the served measures. Does **not** publish — readers keep
    /// seeing the previous epoch until [`Writer::publish`].
    ///
    /// For a durable writer the batch is appended to the write-ahead log
    /// (flushed and synced) **before** it is applied, so an acknowledged
    /// commit survives a crash at any later instant; the checkpoint policy
    /// is also evaluated here, snapshotting the pre-batch state and
    /// trimming the log when due.
    ///
    /// # Errors
    /// On a lake-level failure the batch stops at the failing op (earlier
    /// ops remain applied, see [`MutableLake::apply_batch`]); the net is
    /// then rebuilt from the lake's live state so writer-side state stays
    /// coherent, and the error is returned. The staged queue is cleared
    /// either way. (The WAL keeps the failed batch: replay reproduces the
    /// same partial application and the same rebuild, so recovery lands on
    /// the same state.) A [`ServiceError::Store`] failure, by contrast,
    /// leaves the lake untouched — nothing was applied that was not first
    /// made durable.
    pub fn commit(&mut self) -> Result<DeltaStats, ServiceError> {
        let _apply = dn_trace::span(dn_trace::Phase::ShardApply);
        let staged = std::mem::take(&mut self.staged);
        if staged.is_empty() {
            return Ok(DeltaStats::default());
        }
        if let Some(persistence) = self.persistence.as_mut() {
            let epochs_since = self.epoch.saturating_sub(persistence.last_checkpoint_epoch);
            if persistence
                .policy
                .is_due(epochs_since, persistence.store.wal_record_bytes())
            {
                persistence
                    .store
                    .checkpoint(&self.lake, &self.net, self.epoch, &self.measures)?;
                persistence.last_checkpoint_epoch = self.epoch;
            }
            persistence.store.append_batch(self.epoch, &staged)?;
        }
        let effects = match self.lake.apply_batch(staged.iter()) {
            Ok(effects) => effects,
            Err(e) => {
                self.resync();
                return Err(e.into());
            }
        };
        let stats = match self.net.apply_delta(&self.lake, &effects) {
            Ok(stats) => stats,
            Err(msg) => {
                self.resync();
                return Err(ServiceError::Maintenance(msg));
            }
        };
        self.net.warm_rankings(&self.measures);
        Ok(stats)
    }

    /// Extract a snapshot of the net's current state and swap it in as the
    /// new epoch, invalidating the top-k cache. Returns the new epoch.
    pub fn publish(&mut self) -> u64 {
        let _publish = dn_trace::span(dn_trace::Phase::ShardPublish);
        self.epoch += 1;
        let snapshot = Arc::new(Snapshot::extract(
            &self.net,
            &self.lake,
            &self.measures,
            self.epoch,
        ));
        *self.shared.current.write().expect("snapshot pointer lock") = snapshot;
        self.shared.cache.lock().expect("cache lock").invalidate();
        self.shared.epochs_published.fetch_add(1, Ordering::Relaxed);
        self.epoch
    }

    /// Convenience: stage one delta, commit, and publish.
    pub fn apply_and_publish(
        &mut self,
        delta: LakeDelta,
    ) -> Result<(DeltaStats, u64), ServiceError> {
        self.stage(delta);
        let stats = self.commit()?;
        Ok((stats, self.publish()))
    }

    /// Write a checkpoint immediately, regardless of policy. Returns
    /// `true` when a snapshot was written (`false` for a non-durable
    /// writer, for which this is a no-op).
    ///
    /// # Errors
    /// [`ServiceError::Store`] if the snapshot cannot be written.
    pub fn checkpoint_now(&mut self) -> Result<bool, ServiceError> {
        match self.persistence.as_mut() {
            None => Ok(false),
            Some(persistence) => {
                persistence
                    .store
                    .checkpoint(&self.lake, &self.net, self.epoch, &self.measures)?;
                persistence.last_checkpoint_epoch = self.epoch;
                Ok(true)
            }
        }
    }

    /// Whether this writer persists commits to a store directory.
    pub fn is_durable(&self) -> bool {
        self.persistence.is_some()
    }

    /// The measures this writer warms and publishes with every epoch.
    pub fn measures(&self) -> &[Measure] {
        &self.measures
    }

    /// Size/progress counters of the backing store: `None` for a
    /// non-durable writer, `Err` when the store directory cannot be
    /// listed. Exposed for observability surfaces (`/metrics`).
    pub fn store_stats(&self) -> Result<Option<dn_store::StoreStats>, ServiceError> {
        match self.persistence.as_ref() {
            None => Ok(None),
            Some(p) => Ok(Some(p.store.stats()?)),
        }
    }

    /// Bytes of batch records currently in the write-ahead log (0 for a
    /// non-durable writer).
    pub fn wal_record_bytes(&self) -> u64 {
        self.persistence
            .as_ref()
            .map_or(0, |p| p.store.wal_record_bytes())
    }

    /// Apply one batch received from a replication stream: log it under the
    /// primary's `seq`/`epoch` tags, run it through the same incremental
    /// path [`Writer::commit`] uses, and publish the result inline.
    ///
    /// This is the follower-side mirror of `commit` + `publish`, with two
    /// deliberate differences. First, the epoch is *adopted*, not minted:
    /// after applying a record the writer publishes at
    /// `max(self.epoch, record_epoch + 1)`, which is exactly where the
    /// primary landed after committing that batch — so digests can be
    /// compared at equal epochs. Second, a lake/net-level failure is **not**
    /// an error here: the primary's WAL keeps failed batches and its
    /// recovery path resyncs past them, so the follower does the same and
    /// converges to the identical state (mirroring
    /// [`Store::recover`](dn_store::Store::recover)'s replay semantics).
    ///
    /// # Errors
    /// [`ServiceError::Maintenance`] when the writer is not durable (a
    /// follower must have a log to resume from), [`ServiceError::Store`]
    /// when the record cannot be made durable — including an out-of-order
    /// `seq`, which means the stream is corrupt.
    pub fn apply_replicated(
        &mut self,
        seq: u64,
        epoch: u64,
        batch: &[LakeDelta],
    ) -> Result<(), ServiceError> {
        let persistence = self.persistence.as_mut().ok_or_else(|| {
            ServiceError::Maintenance("replication requires a durable writer".to_string())
        })?;
        let epochs_since = self.epoch.saturating_sub(persistence.last_checkpoint_epoch);
        if persistence
            .policy
            .is_due(epochs_since, persistence.store.wal_record_bytes())
        {
            persistence
                .store
                .checkpoint(&self.lake, &self.net, self.epoch, &self.measures)?;
            persistence.last_checkpoint_epoch = self.epoch;
        }
        persistence.store.append_replicated(seq, epoch, batch)?;
        match self.lake.apply_batch(batch.iter()) {
            Ok(effects) => {
                if self.net.apply_delta(&self.lake, &effects).is_err() {
                    self.resync();
                }
            }
            Err(_) => self.resync(),
        }
        self.net.warm_rankings(&self.measures);
        // Adopt the primary's post-batch epoch. `publish()` would mint
        // `self.epoch + 1`, which drifts whenever the primary's history
        // contains epochs this follower never saw (pre-snapshot commits).
        self.epoch = self.epoch.max(epoch + 1);
        let snapshot = Arc::new(Snapshot::extract(
            &self.net,
            &self.lake,
            &self.measures,
            self.epoch,
        ));
        *self.shared.current.write().expect("snapshot pointer lock") = snapshot;
        self.shared.cache.lock().expect("cache lock").invalidate();
        self.shared.epochs_published.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Sequence number of the last batch in this writer's store (0 when no
    /// batch was ever logged, or for a non-durable writer).
    pub fn last_seq(&self) -> u64 {
        self.persistence.as_ref().map_or(0, |p| p.store.last_seq())
    }

    /// The WAL suffix after `from_seq`, for shipping to a replica. See
    /// [`Store::wal_after`](dn_store::Store::wal_after).
    ///
    /// # Errors
    /// [`ServiceError::Maintenance`] for a non-durable writer;
    /// [`ServiceError::Store`] on log-read failures or a `from_seq` ahead
    /// of the log.
    pub fn wal_after(&self, from_seq: u64) -> Result<dn_store::WalTail, ServiceError> {
        match self.persistence.as_ref() {
            None => Err(ServiceError::Maintenance(
                "WAL shipping requires a durable writer".to_string(),
            )),
            Some(p) => Ok(p.store.wal_after(from_seq)?),
        }
    }

    /// The raw bytes of the newest on-disk snapshot, for replica bootstrap.
    ///
    /// # Errors
    /// [`ServiceError::Maintenance`] for a non-durable writer;
    /// [`ServiceError::Store`] when no snapshot exists or it cannot be read.
    pub fn newest_snapshot_bytes(&self) -> Result<(u64, Vec<u8>), ServiceError> {
        match self.persistence.as_ref() {
            None => Err(ServiceError::Maintenance(
                "snapshot shipping requires a durable writer".to_string(),
            )),
            Some(p) => Ok(p.store.newest_snapshot_bytes()?),
        }
    }

    /// Rebuild the net from the lake's live state (the escape hatch after a
    /// failed batch) and re-warm the served measures.
    fn resync(&mut self) {
        self.net.refresh(&self.lake);
        self.net.warm_rankings(&self.measures);
    }

    /// The maintained lake (the writer's live state, possibly ahead of the
    /// published epoch).
    pub fn lake(&self) -> &MutableLake {
        &self.lake
    }

    /// The maintained net.
    pub fn net(&self) -> &DomainNet {
        &self.net
    }

    /// The last published epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A read handle onto the service this writer publishes to.
    pub fn service(&self) -> ServiceHandle {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domainnet::DomainNetBuilder;
    use lake::table::TableBuilder;

    fn running_lake() -> MutableLake {
        MutableLake::from_catalog(&lake::fixtures::running_example())
    }

    fn config() -> ServiceConfig {
        ServiceConfig {
            measures: vec![Measure::lcc(), Measure::exact_bc()],
            cache_capacity: 8,
            prune_single_attribute_values: false,
            threads: 1,
        }
    }

    fn zebra_table() -> LakeDelta {
        LakeDelta::new().add_table(
            TableBuilder::new("T9")
                .column("animal", ["Jaguar", "Zebra", "Okapi"])
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn epoch_zero_serves_the_initial_lake() {
        let (service, writer) = serve(running_lake(), config());
        assert_eq!(service.epoch(), 0);
        assert_eq!(writer.epoch(), 0);
        let reader = service.reader();
        let top = reader.top_k(Measure::exact_bc(), 1).unwrap();
        assert_eq!(top[0].value, "JAGUAR");
        reader.snapshot().verify_consistency().unwrap();
    }

    #[test]
    fn pinned_readers_keep_their_epoch_until_they_re_pin() {
        let (service, mut writer) = serve(running_lake(), config());
        let mut reader = service.reader();
        let before = reader.snapshot().stats();

        writer.apply_and_publish(zebra_table()).unwrap();

        // Unpinned: still epoch 0, same counts, fully consistent.
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.snapshot().stats(), before);
        reader.snapshot().verify_consistency().unwrap();

        // Re-pin: epoch 1 with the new table visible.
        assert_eq!(reader.pin(), 1);
        let after = reader.snapshot().stats();
        assert!(after.live_candidates > before.live_candidates);
        assert!(reader.snapshot().explain("Zebra").is_some());
        reader.snapshot().verify_consistency().unwrap();
    }

    #[test]
    fn commit_without_publish_is_invisible_to_readers() {
        let (service, mut writer) = serve(running_lake(), config());
        writer.stage(zebra_table());
        let stats = writer.commit().unwrap();
        assert!(stats.edges_added > 0);
        assert_eq!(service.epoch(), 0, "not yet published");
        assert!(service.current().explain("Zebra").is_none());
        writer.publish();
        assert_eq!(service.epoch(), 1);
        assert!(service.current().explain("Zebra").is_some());
    }

    #[test]
    fn batched_commit_matches_a_fresh_build() {
        let (_service, mut writer) = serve(running_lake(), config());
        writer.stage(zebra_table());
        writer.stage(LakeDelta::new().remove_table("T3"));
        writer.stage(LakeDelta::new().replace_value("T4", "Name", "Puma", "Lynx"));
        writer.commit().unwrap();
        writer.publish();

        let fresh = DomainNetBuilder::new()
            .prune_single_attribute_values(false)
            .build(writer.lake());
        let snap = writer.service().current();
        for measure in [Measure::lcc(), Measure::exact_bc()] {
            let a = snap.ranking(measure).unwrap();
            let b = fresh.rank_shared(measure);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.value, y.value, "{measure:?}");
                assert!((x.score - y.score).abs() < 1e-9, "{measure:?} {}", x.value);
            }
        }
    }

    #[test]
    fn top_k_cache_is_shared_and_invalidated_on_publish() {
        let (service, mut writer) = serve(running_lake(), config());
        let reader_a = service.reader();
        let reader_b = service.reader();
        let first = reader_a.top_k(Measure::exact_bc(), 3).unwrap();
        let second = reader_b.top_k(Measure::exact_bc(), 3).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "same epoch + same k must share one cached prefix"
        );
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        writer.apply_and_publish(zebra_table()).unwrap();
        assert_eq!(service.cache_stats().entries, 0, "publish invalidates");
        // A still-pinned reader recomputes under its old epoch key.
        let again = reader_a.top_k(Measure::exact_bc(), 3).unwrap();
        assert_eq!(again.len(), 3);
        assert_eq!(
            again.iter().map(|s| &s.value).collect::<Vec<_>>(),
            first.iter().map(|s| &s.value).collect::<Vec<_>>()
        );
    }

    #[test]
    fn failed_batches_resync_the_writer() {
        let (service, mut writer) = serve(running_lake(), config());
        writer.stage(zebra_table());
        writer.stage(LakeDelta::new().remove_table("no-such-table"));
        let err = writer.commit().unwrap_err();
        assert!(matches!(err, ServiceError::Lake(LakeError::NotFound(_))));
        assert_eq!(writer.staged_len(), 0, "failed batch is dropped");

        // The first op stuck (documented batch semantics); the writer
        // resynced its net, so continuing to mutate and publish works and
        // matches a fresh build of the final lake.
        writer
            .apply_and_publish(LakeDelta::new().remove_table("T1"))
            .unwrap();
        let snap = service.current();
        snap.verify_consistency().unwrap();
        assert!(snap.explain("Zebra").is_some(), "partial batch is visible");
        let fresh = DomainNetBuilder::new()
            .prune_single_attribute_values(false)
            .build(writer.lake());
        let a = snap.ranking(Measure::lcc()).unwrap();
        let b = fresh.rank_shared(Measure::lcc());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x.score - y.score).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_commit_is_a_cheap_no_op() {
        let (_service, mut writer) = serve(running_lake(), config());
        let stats = writer.commit().unwrap();
        assert_eq!(stats, DeltaStats::default());
        assert_eq!(writer.epoch(), 0, "no publish happened");
        assert_eq!(writer.measures(), &[Measure::lcc(), Measure::exact_bc()]);
        assert!(
            writer.store_stats().unwrap().is_none(),
            "non-durable writers report no store stats"
        );
    }

    fn store_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dn_store_engine_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_writer_survives_a_drop_mid_stream() {
        let dir = store_dir("survive");
        let (service, mut writer) =
            serve_durable(running_lake(), config(), &dir, CheckpointPolicy::manual()).unwrap();
        writer.apply_and_publish(zebra_table()).unwrap();
        writer
            .apply_and_publish(LakeDelta::new().remove_table("T3"))
            .unwrap();
        let reference = service.current();
        drop(writer); // crash: nothing flushed beyond the WAL appends

        let (recovered_service, recovered_writer) =
            serve_from_dir(&dir, config(), CheckpointPolicy::manual()).unwrap();
        assert_eq!(recovered_writer.epoch(), 2, "epoch numbering resumes");
        let snap = recovered_service.current();
        snap.verify_consistency().unwrap();
        for measure in [Measure::lcc(), Measure::exact_bc()] {
            let a = reference.ranking(measure).unwrap();
            let b = snap.ranking(measure).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.value, y.value);
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{}", x.value);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_writer_keeps_serving_and_checkpointing() {
        let dir = store_dir("resume");
        let (_, mut writer) = serve_durable(
            running_lake(),
            config(),
            &dir,
            CheckpointPolicy::every_epochs(1),
        )
        .unwrap();
        writer.apply_and_publish(zebra_table()).unwrap();
        drop(writer);

        let (service, mut writer) =
            serve_from_dir(&dir, config(), CheckpointPolicy::every_epochs(1)).unwrap();
        writer
            .apply_and_publish(LakeDelta::new().replace_value("T4", "Name", "Puma", "Lynx"))
            .unwrap();
        assert!(writer.checkpoint_now().unwrap());
        assert_eq!(writer.wal_record_bytes(), 0, "checkpoint trimmed the log");
        let snap = service.current();
        snap.verify_consistency().unwrap();
        assert!(snap.explain("Lynx").is_some());
        assert!(snap.explain("Zebra").is_some(), "pre-crash batch survived");

        // The whole lineage — serve_durable, crash, recover, mutate — must
        // equal a fresh build of the final lake.
        let fresh = DomainNetBuilder::new()
            .prune_single_attribute_values(false)
            .build(writer.lake());
        for measure in [Measure::lcc(), Measure::exact_bc()] {
            let a = snap.ranking(measure).unwrap();
            let b = fresh.rank_shared(measure);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.value, y.value, "{measure:?}");
                assert!((x.score - y.score).abs() < 1e-9, "{measure:?} {}", x.value);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_checkpoint_policy_counts_wal_only_epochs() {
        // Epochs whose batches live only in the WAL (no checkpoint yet)
        // must keep counting toward the policy after a crash: the age is
        // measured from the last on-disk checkpoint, not from the
        // recovered epoch, or frequent crashes would let the WAL grow
        // without bound.
        let dir = store_dir("policy_age");
        let (_, mut writer) = serve_durable(
            running_lake(),
            config(),
            &dir,
            CheckpointPolicy::every_epochs(1),
        )
        .unwrap();
        writer.apply_and_publish(zebra_table()).unwrap(); // epoch 1, in WAL only
        assert!(writer.wal_record_bytes() > 0);
        drop(writer);

        let (_, mut writer) =
            serve_from_dir(&dir, config(), CheckpointPolicy::every_epochs(1)).unwrap();
        // First post-recovery commit: one epoch has passed since the last
        // on-disk checkpoint (epoch 0), so the policy fires *now* — the
        // pre-batch state is checkpointed and the log trimmed before the
        // new batch is appended.
        writer
            .apply_and_publish(LakeDelta::new().remove_table("T3"))
            .unwrap();
        let snaps = dn_store::list_snapshots(writer_store_dir(&writer)).unwrap();
        assert_eq!(snaps.len(), 2, "initial + post-recovery checkpoint");
        assert_eq!(snaps[0].0, 1, "checkpoint covers the WAL-only batch");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn size_based_policy_checkpoints_on_commit() {
        let dir = store_dir("bytes");
        let (_, mut writer) = serve_durable(
            running_lake(),
            config(),
            &dir,
            CheckpointPolicy::max_wal_bytes(1),
        )
        .unwrap();
        writer.apply_and_publish(zebra_table()).unwrap();
        assert!(writer.wal_record_bytes() > 0, "batch logged");
        let stats = writer.store_stats().unwrap().expect("durable writer");
        assert_eq!(stats.wal_record_bytes, writer.wal_record_bytes());
        assert!(stats.wal_file_bytes >= stats.wal_record_bytes);
        assert_eq!(stats.snapshot_count, 1, "only the initial checkpoint");
        assert_eq!(stats.newest_snapshot_seq, Some(0));
        assert_eq!(stats.last_seq, 1);
        // The next commit sees a non-empty WAL >= 1 byte and checkpoints
        // the pre-batch state before appending.
        writer
            .apply_and_publish(LakeDelta::new().remove_table("T9"))
            .unwrap();
        let snaps = dn_store::list_snapshots(writer_store_dir(&writer)).unwrap();
        assert_eq!(snaps.len(), 2, "initial + policy checkpoint");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn writer_store_dir(writer: &Writer) -> &std::path::Path {
        writer
            .persistence
            .as_ref()
            .expect("durable writer")
            .store
            .dir()
    }

    #[test]
    fn export_top_k_csv_round_trips() {
        let (service, _writer) = serve(running_lake(), config());
        let reader = service.reader();
        let mut out = Vec::new();
        let rows = reader
            .export_top_k_csv(Measure::exact_bc(), 3, &mut out)
            .unwrap();
        assert_eq!(rows, 3);
        let records = lake::csv::parse_str(std::str::from_utf8(&out).unwrap()).unwrap();
        assert_eq!(records.len(), 4, "header + 3 rows");
        assert_eq!(records[0][1], "value");
        assert_eq!(records[1][0], "1");
        assert_eq!(records[1][1], "JAGUAR");
        // Shortest-round-trip float formatting: the score re-parses exactly.
        let top = reader.top_k(Measure::exact_bc(), 3).unwrap();
        let parsed: f64 = records[1][2].parse().unwrap();
        assert_eq!(parsed.to_bits(), top[0].score.to_bits());

        // Unserved measures are a typed error, not a panic.
        let err = reader
            .export_top_k_csv(Measure::approx_bc(64, 7), 3, &mut Vec::new())
            .unwrap_err();
        assert!(matches!(err, LakeError::NotFound(_)));
    }
}
