//! Immutable epoch snapshots of a [`DomainNet`] and the queries they answer.
//!
//! A [`Snapshot`] is extracted on the writer thread after a delta batch has
//! been folded into the net, and is then shared behind an `Arc` with any
//! number of reader threads. Everything a query touches lives inside the
//! snapshot — the graph copy, the per-measure rankings (shared zero-copy
//! with the net's memo via `Arc`), the label and rank indexes — so readers
//! never synchronize with the writer after pinning one.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use domainnet::{DomainNet, Measure, ScoredValue};
use lake::delta::LakeView;
use lake::value::normalize;

const EXPLAIN_SAMPLE_LIMIT: usize = 8;

/// Counts describing one epoch, all taken from the same underlying state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SnapshotStats {
    /// The epoch this snapshot was published as.
    pub epoch: u64,
    /// The net's delta generation at extraction time.
    pub generation: u64,
    /// Total graph nodes (value + attribute, tombstones included).
    pub node_count: usize,
    /// Value-node slots (tombstones included).
    pub value_nodes: usize,
    /// Attribute-node slots (tombstones included).
    pub attribute_nodes: usize,
    /// Undirected edges.
    pub edge_count: usize,
    /// Value nodes with at least one incident edge — the number of entries
    /// every ranking of this snapshot contains.
    pub live_candidates: usize,
    /// Connected components (isolated tombstones count as singletons).
    pub component_count: usize,
}

/// Score, rank, and percentile of one value under one measure.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScoreCard {
    /// The normalized value.
    pub value: String,
    /// The measure the card was computed under.
    pub measure: Measure,
    /// The raw score (interpretation depends on the measure).
    pub score: f64,
    /// 1-based rank, 1 = most homograph-like.
    pub rank: usize,
    /// Number of ranked candidates in this snapshot.
    pub of: usize,
    /// Share (in percent) of candidates ranked *after* this value, i.e.
    /// `100 * (of - rank) / of`. Rank follows the measure's total order
    /// — score first (direction per measure), ties broken by value
    /// string — so equal-scoring candidates do **not** share a rank or a
    /// percentile: a value tied with `m` others sits anywhere in an
    /// `m+1`-long run depending only on its name. The same formula over
    /// a sharded deployment's merged ranking yields the same number,
    /// because every shard ranks by the same total order.
    pub percentile: f64,
    /// Number of attributes the value occurs in.
    pub attribute_count: usize,
    /// The value's neighborhood cardinality |N(v)|.
    pub cardinality: usize,
}

/// One attribute of a value's neighborhood, for "explain" output.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AttributeNeighborhood {
    /// Qualified `table.column` label.
    pub attribute: String,
    /// Table part of the label.
    pub table: String,
    /// Column part of the label.
    pub column: String,
    /// Distinct values in the attribute.
    pub size: usize,
    /// Up to a few co-occurring values (node order, the queried value
    /// excluded) as a human-readable sample.
    pub sample_co_values: Vec<String>,
}

/// Why a value scores the way it does: its attribute neighborhood.
///
/// A homograph's signature is attributes from *different* semantic domains
/// (`zoo.animal` and `cars.make` both containing `JAGUAR`); this is the
/// paper's bipartite intuition surfaced as a query result.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ValueExplanation {
    /// The normalized value.
    pub value: String,
    /// Number of attributes it occurs in.
    pub attribute_count: usize,
    /// Its neighborhood cardinality |N(v)|.
    pub cardinality: usize,
    /// Per-attribute breakdown.
    pub attributes: Vec<AttributeNeighborhood>,
}

/// Aggregate view of one table's candidate values in a snapshot.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TableSummary {
    /// Table name.
    pub table: String,
    /// Live attributes (columns) the table contributes to the graph.
    pub attribute_count: usize,
    /// Distinct candidate values occurring in the table.
    pub candidate_values: usize,
    /// Live (attribute, value) incidences the table contributes.
    pub incidence_count: usize,
    /// The table's most homograph-like values under the requested measure,
    /// best first.
    pub top: Vec<ScoredValue>,
}

/// An immutable, internally consistent view of the DomainNet model at one
/// epoch. See the [module docs](self) for the extraction/sharing contract.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    generation: u64,
    graph: dn_graph::bipartite::BipartiteGraph,
    component_count: usize,
    live_candidates: usize,
    measures: Vec<Measure>,
    /// Per measure: the full ranking, shared with the net's memo.
    rankings: HashMap<Measure, Arc<Vec<ScoredValue>>>,
    /// Per measure: value node id -> 0-based rank (`u32::MAX` = unranked).
    rank_of_node: HashMap<Measure, Vec<u32>>,
    /// Normalized value -> live value node id.
    node_of_label: HashMap<String, u32>,
    /// Live attribute node -> structured `(table, column)` reference,
    /// resolved from the lake at extraction time (display labels are
    /// ambiguous once table names contain dots).
    attr_refs: HashMap<u32, (String, String)>,
    /// Table name -> attribute node ids, sorted by node id.
    tables: BTreeMap<String, Vec<u32>>,
}

impl Snapshot {
    /// Extract a snapshot from a net and the lake it models, serving the
    /// given measures.
    ///
    /// Rankings come out of [`DomainNet::rank_shared`], so measures the
    /// writer warmed are shared by `Arc` clone rather than recomputed; cold
    /// measures pay their scoring pass here, on the calling (writer) thread.
    /// The lake is consulted only for structured `table`/`column` attribute
    /// references (the graph keeps flattened display labels, which cannot be
    /// split unambiguously when table names contain dots); everything the
    /// snapshot serves afterwards is owned by the snapshot.
    pub fn extract<L: LakeView + ?Sized>(
        net: &DomainNet,
        lake: &L,
        measures: &[Measure],
        epoch: u64,
    ) -> Snapshot {
        let graph = net.graph().clone();
        let mut node_of_label = HashMap::new();
        let mut live_candidates = 0usize;
        for v in graph.value_nodes() {
            if graph.degree(v) > 0 {
                node_of_label.insert(graph.value_label(v).to_owned(), v);
                live_candidates += 1;
            }
        }

        let mut rankings = HashMap::new();
        let mut rank_of_node = HashMap::new();
        for &measure in measures {
            let ranking = net.rank_shared(measure);
            let mut ranks = vec![u32::MAX; graph.value_count()];
            for (pos, scored) in ranking.iter().enumerate() {
                if let Some(&node) = node_of_label.get(&scored.value) {
                    ranks[node as usize] = pos as u32;
                }
            }
            rankings.insert(measure, ranking);
            rank_of_node.insert(measure, ranks);
        }

        let mut attr_refs: HashMap<u32, (String, String)> = HashMap::new();
        let mut tables: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        let view = graph.view();
        for attr_node in graph.attribute_nodes() {
            if graph.degree(attr_node) == 0 {
                continue; // tombstoned attribute slot
            }
            let (table, column) = graph
                .attribute_index(attr_node)
                .and_then(|idx| net.attr_id_of_index(idx))
                .and_then(|attr_id| lake.attribute_ref(attr_id))
                .map(|aref| (aref.table, aref.column))
                .unwrap_or_else(|| {
                    // The lake no longer knows this attribute (it should,
                    // for a live node, but stay servable): fall back to the
                    // display label, splitting at the first dot.
                    let label = view
                        .attribute_label_of_node(attr_node)
                        .expect("attribute node has a label");
                    match label.split_once('.') {
                        Some((t, c)) => (t.to_owned(), c.to_owned()),
                        None => (label.to_owned(), String::new()),
                    }
                });
            tables.entry(table.clone()).or_default().push(attr_node);
            attr_refs.insert(attr_node, (table, column));
        }

        Snapshot {
            epoch,
            generation: net.generation(),
            component_count: net.components().count(),
            live_candidates,
            measures: measures.to_vec(),
            rankings,
            rank_of_node,
            node_of_label,
            attr_refs,
            tables,
            graph,
        }
    }

    /// The epoch this snapshot was published as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The measures this snapshot can answer queries for.
    pub fn measures(&self) -> &[Measure] {
        &self.measures
    }

    /// Counts describing this epoch.
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            epoch: self.epoch,
            generation: self.generation,
            node_count: self.graph.node_count(),
            value_nodes: self.graph.value_count(),
            attribute_nodes: self.graph.attribute_count(),
            edge_count: self.graph.edge_count(),
            live_candidates: self.live_candidates,
            component_count: self.component_count,
        }
    }

    /// The full ranking under a measure (`None` if the measure is not
    /// served by this snapshot).
    pub fn ranking(&self, measure: Measure) -> Option<&Arc<Vec<ScoredValue>>> {
        self.rankings.get(&measure)
    }

    /// Materialize the top-`k` prefix of a ranking. Readers should prefer
    /// [`crate::engine::Reader::top_k`], which caches the result.
    pub fn top_k(&self, measure: Measure, k: usize) -> Option<Vec<ScoredValue>> {
        self.rankings
            .get(&measure)
            .map(|r| r.iter().take(k).cloned().collect())
    }

    /// Score, rank, and percentile of a value under a measure. The value is
    /// normalized here, so callers may pass the raw form. `None` when the
    /// measure is not served or the value is not a live candidate.
    pub fn score_card(&self, measure: Measure, value: &str) -> Option<ScoreCard> {
        let normalized = normalize(value);
        let &node = self.node_of_label.get(&normalized)?;
        let ranks = self.rank_of_node.get(&measure)?;
        let rank0 = ranks[node as usize];
        if rank0 == u32::MAX {
            return None;
        }
        let ranking = &self.rankings[&measure];
        let scored = &ranking[rank0 as usize];
        let of = ranking.len();
        Some(ScoreCard {
            value: normalized,
            measure,
            score: scored.score,
            rank: rank0 as usize + 1,
            of,
            percentile: 100.0 * (of - 1 - rank0 as usize) as f64 / of as f64,
            attribute_count: scored.attribute_count,
            cardinality: scored.cardinality,
        })
    }

    /// The attribute neighborhood of a value — which `table.column`s it
    /// occurs in and a sample of the values it co-occurs with there.
    pub fn explain(&self, value: &str) -> Option<ValueExplanation> {
        let normalized = normalize(value);
        let &node = self.node_of_label.get(&normalized)?;
        let view = self.graph.view();
        let attributes = view
            .attribute_nodes_of_value(node)
            .iter()
            .map(|&attr_node| {
                let label = view
                    .attribute_label_of_node(attr_node)
                    .expect("neighbor of a value is an attribute")
                    .to_owned();
                let (table, column) = self
                    .attr_refs
                    .get(&attr_node)
                    .cloned()
                    .expect("live attribute nodes are in the ref index");
                let members = view
                    .values_of_attribute_node(attr_node)
                    .expect("attribute node");
                let sample_co_values = members
                    .iter()
                    .filter(|&&v| v != node)
                    .take(EXPLAIN_SAMPLE_LIMIT)
                    .map(|&v| self.graph.value_label(v).to_owned())
                    .collect();
                AttributeNeighborhood {
                    attribute: label,
                    table,
                    column,
                    size: members.len(),
                    sample_co_values,
                }
            })
            .collect();
        Some(ValueExplanation {
            value: normalized,
            attribute_count: self.graph.value_attribute_count(node),
            cardinality: self.graph.value_neighbor_count(node),
            attributes,
        })
    }

    /// Names of the tables with at least one live attribute in this epoch.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Summarize one table: its live attributes, candidate values, and its
    /// `k` most homograph-like values under `measure`.
    pub fn table_summary(&self, table: &str, measure: Measure, k: usize) -> Option<TableSummary> {
        let attr_nodes = self.tables.get(table)?;
        let ranks = self.rank_of_node.get(&measure)?;
        let ranking = &self.rankings[&measure];
        let view = self.graph.view();
        let mut member_ranks: Vec<u32> = Vec::new();
        let mut incidence_count = 0usize;
        for &attr_node in attr_nodes {
            let members = view.values_of_attribute_node(attr_node).expect("attribute");
            incidence_count += members.len();
            member_ranks.extend(
                members
                    .iter()
                    .map(|&v| ranks[v as usize])
                    .filter(|&r| r != u32::MAX),
            );
        }
        member_ranks.sort_unstable();
        member_ranks.dedup();
        let top = member_ranks
            .iter()
            .take(k)
            .map(|&r| ranking[r as usize].clone())
            .collect();
        Some(TableSummary {
            table: table.to_owned(),
            attribute_count: attr_nodes.len(),
            candidate_values: member_ranks.len(),
            incidence_count,
            top,
        })
    }

    /// Check every internal cross-reference of this snapshot.
    ///
    /// This is the invariant the concurrency stress test leans on: all data
    /// reachable from one snapshot must describe the *same* state, so a
    /// reader that pinned epoch `e` can never observe a mixture of epochs.
    /// Verified: every ranking has exactly `live_candidates` entries in the
    /// measure's sort order, every ranked value resolves to a live node,
    /// the rank index round-trips, and the per-table attribute partition
    /// covers exactly the live attribute nodes.
    pub fn verify_consistency(&self) -> Result<(), String> {
        for &measure in &self.measures {
            let ranking = self
                .rankings
                .get(&measure)
                .ok_or_else(|| format!("{measure:?}: served measure has no ranking"))?;
            if ranking.len() != self.live_candidates {
                return Err(format!(
                    "{measure:?}: ranking has {} entries but the graph has {} live candidates",
                    ranking.len(),
                    self.live_candidates
                ));
            }
            let higher_first = measure.higher_is_more_homograph_like();
            let ranks = &self.rank_of_node[&measure];
            for (pos, scored) in ranking.iter().enumerate() {
                if let Some(prev) = ranking.get(pos.wrapping_sub(1)) {
                    let ordered = if higher_first {
                        prev.score >= scored.score
                    } else {
                        prev.score <= scored.score
                    };
                    if !ordered {
                        return Err(format!(
                            "{measure:?}: rank {pos} out of order ({} then {})",
                            prev.score, scored.score
                        ));
                    }
                }
                let &node = self
                    .node_of_label
                    .get(&scored.value)
                    .ok_or_else(|| format!("{measure:?}: '{}' has no live node", scored.value))?;
                if ranks[node as usize] as usize != pos {
                    return Err(format!(
                        "{measure:?}: rank index says {} for '{}' at position {pos}",
                        ranks[node as usize], scored.value
                    ));
                }
            }
        }
        let table_attrs: usize = self.tables.values().map(Vec::len).sum();
        let live_attrs = self
            .graph
            .attribute_nodes()
            .filter(|&a| self.graph.degree(a) > 0)
            .count();
        if table_attrs != live_attrs {
            return Err(format!(
                "table partition covers {table_attrs} attribute nodes, graph has {live_attrs}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domainnet::DomainNetBuilder;

    fn running_snapshot() -> Snapshot {
        let lake = lake::fixtures::running_example();
        let net = DomainNetBuilder::new()
            .prune_single_attribute_values(false)
            .build(&lake);
        Snapshot::extract(&net, &lake, &[Measure::exact_bc(), Measure::lcc()], 3)
    }

    #[test]
    fn extraction_reuses_the_memoized_ranking() {
        let lake = lake::fixtures::running_example();
        let net = DomainNetBuilder::new().build(&lake);
        let warm = net.rank_shared(Measure::exact_bc());
        let snap = Snapshot::extract(&net, &lake, &[Measure::exact_bc()], 0);
        assert!(
            Arc::ptr_eq(&warm, snap.ranking(Measure::exact_bc()).unwrap()),
            "snapshot must share the memoized Arc, not copy the ranking"
        );
    }

    #[test]
    fn dotted_table_names_are_partitioned_structurally() {
        // A table whose *name* contains dots: the flattened display label
        // "sales.2024.id" is ambiguous, so table/column must come from the
        // lake's structured references, not from re-parsing the label.
        use lake::table::TableBuilder;
        let mut lake = lake::delta::MutableLake::new();
        lake.apply(
            &lake::delta::LakeDelta::new()
                .add_table(
                    TableBuilder::new("sales.2024")
                        .column("id", ["Jaguar", "Fiat"])
                        .build()
                        .unwrap(),
                )
                .add_table(
                    TableBuilder::new("zoo")
                        .column("animal", ["Jaguar", "Panda"])
                        .build()
                        .unwrap(),
                ),
        )
        .unwrap();
        let net = DomainNetBuilder::new()
            .prune_single_attribute_values(false)
            .build(&lake);
        let snap = Snapshot::extract(&net, &lake, &[Measure::exact_bc()], 0);
        snap.verify_consistency().unwrap();

        let tables: Vec<&str> = snap.table_names().collect();
        assert_eq!(tables, ["sales.2024", "zoo"]);
        let summary = snap
            .table_summary("sales.2024", Measure::exact_bc(), 5)
            .expect("dotted table is addressable");
        assert_eq!(summary.attribute_count, 1);

        let explanation = snap.explain("Jaguar").unwrap();
        let sales = explanation
            .attributes
            .iter()
            .find(|a| a.table == "sales.2024")
            .expect("structured table reference survives");
        assert_eq!(sales.column, "id");
    }

    #[test]
    fn score_card_matches_the_ranking() {
        let snap = running_snapshot();
        let ranking = snap.ranking(Measure::exact_bc()).unwrap().clone();
        let card = snap.score_card(Measure::exact_bc(), "jaguar").unwrap();
        assert_eq!(card.rank, 1, "JAGUAR tops exact BC");
        assert_eq!(card.of, ranking.len());
        assert_eq!(card.score, ranking[0].score);
        assert!(card.percentile > 90.0);
        // Unknown values and unserved measures answer None.
        assert!(snap
            .score_card(Measure::exact_bc(), "no-such-value")
            .is_none());
        assert!(snap
            .score_card(Measure::approx_bc(64, 7), "jaguar")
            .is_none());
    }

    #[test]
    fn explain_surfaces_the_two_meanings() {
        let snap = running_snapshot();
        let explanation = snap.explain("Jaguar").unwrap();
        assert_eq!(explanation.value, "JAGUAR");
        assert_eq!(explanation.attribute_count, explanation.attributes.len());
        assert!(explanation.attributes.len() >= 2);
        let tables: std::collections::HashSet<&str> = explanation
            .attributes
            .iter()
            .map(|a| a.table.as_str())
            .collect();
        assert!(tables.len() >= 2, "JAGUAR spans tables: {tables:?}");
        for attr in &explanation.attributes {
            assert!(attr.size >= 1);
            assert!(attr.sample_co_values.len() < attr.size);
            assert!(!attr.sample_co_values.contains(&"JAGUAR".to_owned()));
        }
    }

    #[test]
    fn table_summaries_partition_the_lake() {
        let snap = running_snapshot();
        let tables: Vec<String> = snap.table_names().map(str::to_owned).collect();
        assert_eq!(tables, ["T1", "T2", "T3", "T4"]);
        let mut total_incidences = 0;
        for t in &tables {
            let summary = snap.table_summary(t, Measure::exact_bc(), 3).unwrap();
            assert!(summary.attribute_count >= 1);
            assert!(summary.top.len() <= 3);
            assert!(summary.candidate_values >= summary.top.len());
            total_incidences += summary.incidence_count;
        }
        assert_eq!(total_incidences, snap.stats().edge_count);
        assert!(snap
            .table_summary("ghost", Measure::exact_bc(), 3)
            .is_none());
    }

    #[test]
    fn snapshot_is_internally_consistent() {
        let snap = running_snapshot();
        snap.verify_consistency().unwrap();
        assert_eq!(snap.epoch(), 3);
        let stats = snap.stats();
        assert_eq!(stats.live_candidates, stats.value_nodes);
        assert_eq!(
            snap.top_k(Measure::lcc(), 2).unwrap().len(),
            2,
            "top_k truncates"
        );
    }
}
