//! Scatter-gather coordination over N component-sharded engines.
//!
//! DomainNet's scores are *component-local*: LCC is a function of a
//! value's neighborhood and BC is computed per connected component, so a
//! shard that owns whole components computes exactly the scores the
//! global engine would. The coordinator exploits that:
//!
//! ```text
//!             ┌────────────────────────────────────────────┐
//!   deltas ──►│ Coordinator (routing + rebalance)          │
//!             │   shard 0        shard 1       shard N-1   │
//!             │  ┌─────────┐   ┌─────────┐   ┌─────────┐   │
//!             │  │ Writer  │   │ Writer  │   │ Writer  │   │ one engine,
//!             │  │ lake+net│   │ lake+net│   │ lake+net│   │ WAL, store dir
//!             │  │ WAL/dir │   │ WAL/dir │   │ WAL/dir │   │ and epoch each
//!             │  └────┬────┘   └────┬────┘   └────┬────┘   │
//!             └───────┼────────────┼─────────────┼─────────┘
//!                     ▼            ▼             ▼
//!   queries ◄── MultiView { epoch, [Arc<Snapshot>; N] }  (swapped atomically)
//! ```
//!
//! ## Invariant and routing
//!
//! **A live value exists on exactly one shard** — components never span
//! shards. Each [`lake::LakeOp`] routes by what it touches:
//!
//! * `AddTable` — probe every shard's lake for the table's distinct
//!   values. Zero hits: the table starts a new component, assigned to the
//!   least-loaded shard. One hit: route there. Multiple hits: the new
//!   table *merges* components across shards — the connected components
//!   reachable from the shared values migrate into one target shard
//!   first, then the op applies there.
//! * `RemoveTable` / `ReplaceValue` — route to the shard owning the
//!   table. A replacement value that is live on another shard triggers
//!   the same migration into the table's home shard. Component *splits*
//!   need no movement: both halves stay co-resident, and co-residency
//!   never changes a score.
//!
//! Migrations re-home tables with ordinary deltas (add to target, then
//! remove from source) logged in each shard's own WAL, guarded by a
//! durable rebalance-intent file so a crash mid-move is finished on
//! recovery instead of leaving one component split across two shards.
//!
//! ## Epochs
//!
//! The coordinator epoch is the **sum of the shard epochs** — monotone,
//! and recoverable shard-by-shard from the per-shard WAL epoch tags. With
//! one shard it degenerates to the engine's own epoch numbering, which is
//! part of the shard-count=1 bit-identity contract. Readers pin an
//! [`Arc<MultiView>`] (the coordinator epoch plus one snapshot per
//! shard, swapped atomically on publish), so a reader never observes a
//! mixture of shard epochs.
//!
//! ## Batch semantics
//!
//! With one shard, a staged batch is delegated wholesale to the single
//! engine — commit, error, and `DeltaStats` behavior are bit-identical to
//! the unsharded [`crate::engine::Writer`]. With several shards the batch
//! is applied op by op (each op is routed, then committed on its shard):
//! the first failing op stops the batch with earlier ops applied — the
//! same first-failure contract — but cross-delta cancellation only
//! happens within a shard, and there is no cross-shard rollback: a
//! failed op leaves other shards' applied ops in place, the affected
//! shard resyncs per the engine's own semantics, and nothing publishes
//! until [`Coordinator::publish`].

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use dn_store::{Store, StorePresence};
use domainnet::{DeltaStats, Measure, ScoredValue};
use lake::delta::{LakeDelta, LakeOp, LakeView, MutableLake};
use lake::table::Table;
use lake::value::normalize;

use crate::cache::{CacheKey, CacheStats, TopKCache};
use crate::engine::{
    serve, serve_durable, serve_from_dir, CheckpointPolicy, ServiceConfig, ServiceError, Writer,
};
use crate::snapshot::{ScoreCard, Snapshot, SnapshotStats, TableSummary, ValueExplanation};

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Serve a lake across `shards` independent engines behind a coordinator.
///
/// The lake's live tables are partitioned by connected component (tables
/// transitively linked through shared values stay together) and each
/// shard builds its own engine over its sub-lake. With `shards == 1` the
/// lake is passed through untouched, so the single shard is bit-identical
/// to [`serve`] — same ids, same generation, same rankings.
pub fn serve_sharded(
    lake: MutableLake,
    config: ServiceConfig,
    shards: usize,
) -> (CoordinatorHandle, Coordinator) {
    let mut subs: Vec<Option<MutableLake>> = partition_lake(lake, shards.max(1))
        .into_iter()
        .map(Some)
        .collect();
    let writers = dn_pool::Pool::new(config.threads.max(1)).run_over_mut(&mut subs, |_, sub| {
        let sub = sub.take().expect("each sub-lake is built exactly once");
        serve(sub, config.clone()).1
    });
    build_coordinator(writers, config, None)
}

/// Like [`serve_sharded`], but durable: the root directory gains a shard
/// manifest (written first, atomically) plus one full store per shard
/// under `shard-<i>/`, each with its own WAL and checkpoint cadence.
///
/// # Errors
/// [`ServiceError::Store`] when the root already holds a store (sharded
/// or legacy single-engine) or a shard store cannot be initialized.
pub fn serve_sharded_durable(
    lake: MutableLake,
    config: ServiceConfig,
    root: impl Into<PathBuf>,
    policy: CheckpointPolicy,
    shards: usize,
) -> Result<(CoordinatorHandle, Coordinator), ServiceError> {
    let root = root.into();
    if dn_store::sharded_store_exists(&root) || Store::exists(&root) {
        return Err(ServiceError::Store(dn_store::StoreError::corrupt(format!(
            "{} already holds a store (recover with serve_sharded_from_dir)",
            root.display()
        ))));
    }
    let shards = shards.max(1);
    dn_store::write_shard_manifest(&root, shards)?;
    let mut subs: Vec<Option<MutableLake>> =
        partition_lake(lake, shards).into_iter().map(Some).collect();
    let writers = dn_pool::Pool::new(config.threads.max(1))
        .run_over_mut(&mut subs, |i, sub| {
            let sub = sub.take().expect("each sub-lake is built exactly once");
            Ok(serve_durable(sub, config.clone(), dn_store::shard_dir(&root, i), policy)?.1)
        })
        .into_iter()
        .collect::<Result<Vec<_>, ServiceError>>()?;
    Ok(build_coordinator(writers, config, Some(root)))
}

/// Recover a sharded coordinator from its root directory: read the
/// manifest, recover every shard store independently (snapshot load + WAL
/// replay), and resume the coordinator epoch as the sum of the recovered
/// shard epochs.
///
/// Recovery is deliberately tolerant of a crash at any point of the
/// sharded lifecycle: a shard directory that is missing or holds only an
/// aborted initialization (record-free WAL, no snapshot) is rebuilt as a
/// fresh empty shard — nothing acknowledged can live there, because a
/// shard acknowledges a commit only after its own WAL append — and a
/// shard killed mid-checkpoint falls back to its previous snapshot plus
/// WAL suffix via the store's own recovery. A rebalance-intent file left
/// by a crash mid-migration is completed here (and published) before the
/// coordinator accepts traffic, restoring the one-shard-per-component
/// invariant.
///
/// # Errors
/// [`ServiceError::Store`] when the root holds no shard manifest or a
/// shard fails validation; [`ServiceError::Maintenance`] when the
/// recovered shards violate table-ownership invariants beyond what the
/// intent file explains.
pub fn serve_sharded_from_dir(
    root: impl Into<PathBuf>,
    config: ServiceConfig,
    policy: CheckpointPolicy,
) -> Result<(CoordinatorHandle, Coordinator), ServiceError> {
    let root = root.into();
    let manifest = dn_store::read_shard_manifest(&root)?.ok_or_else(|| {
        ServiceError::Store(dn_store::StoreError::corrupt(format!(
            "{} holds no shard manifest (not a sharded store)",
            root.display()
        )))
    })?;
    let ctx = dn_trace::current();
    let writers = dn_pool::Pool::new(config.threads.max(1))
        .run(manifest.shards, |i| {
            let _replay = if ctx.is_active() {
                ctx.enter(dn_trace::Phase::PoolWalReplay, &format!("shard{i}"))
            } else {
                dn_trace::SpanGuard::noop()
            };
            recover_shard_writer(dn_store::shard_dir(&root, i), &config, policy)
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    let (handle, mut coordinator) = build_coordinator(writers, config, Some(root.clone()));
    if let Some(intent) = dn_store::read_rebalance_intent(&root)? {
        coordinator.complete_rebalance(&intent)?;
        dn_store::clear_rebalance_intent(&root)?;
    }
    coordinator.verify_table_ownership()?;
    Ok((handle, coordinator))
}

/// Follower-side recovery: like [`serve_sharded_from_dir`], but without
/// rebalance-intent completion or table-ownership verification. A replica
/// replays the primary's per-shard logs *as shipped*, and a cross-shard
/// migration is two records in two different logs — so between applying
/// them a follower legitimately holds the table on both shards (or
/// neither). The primary already enforced the invariants when it committed;
/// re-checking them mid-window would reject valid replica states. The
/// table index uses the same first-owner-wins rule as
/// [`build_coordinator`], and converges once the second migration record
/// is applied.
pub(crate) fn recover_shards_lenient(
    root: impl Into<PathBuf>,
    config: ServiceConfig,
    policy: CheckpointPolicy,
) -> Result<(CoordinatorHandle, Coordinator), ServiceError> {
    let root = root.into();
    let manifest = dn_store::read_shard_manifest(&root)?.ok_or_else(|| {
        ServiceError::Store(dn_store::StoreError::corrupt(format!(
            "{} holds no shard manifest (not a sharded store)",
            root.display()
        )))
    })?;
    let ctx = dn_trace::current();
    let writers = dn_pool::Pool::new(config.threads.max(1))
        .run(manifest.shards, |i| {
            let _replay = if ctx.is_active() {
                ctx.enter(dn_trace::Phase::PoolWalReplay, &format!("shard{i}"))
            } else {
                dn_trace::SpanGuard::noop()
            };
            recover_shard_writer(dn_store::shard_dir(&root, i), &config, policy)
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    Ok(build_coordinator(writers, config, Some(root)))
}

/// Bring one shard store back up, whatever state a crash left it in:
/// recover a real store, build a fresh empty shard where nothing was ever
/// acknowledged, and clear out an aborted initialization (record-free WAL,
/// no snapshot) before rebuilding. Shared by [`serve_sharded_from_dir`]
/// and [`recover_shards_lenient`], which fan shards out over the worker
/// pool — each shard's recovery touches only its own directory.
fn recover_shard_writer(
    dir: PathBuf,
    config: &ServiceConfig,
    policy: CheckpointPolicy,
) -> Result<Writer, ServiceError> {
    Ok(match Store::probe(&dir)? {
        StorePresence::Recoverable => serve_from_dir(dir, config.clone(), policy)?.1,
        StorePresence::Fresh => serve_durable(MutableLake::new(), config.clone(), dir, policy)?.1,
        StorePresence::AbortedInit { wal_path } => {
            std::fs::remove_file(&wal_path).map_err(|e| {
                ServiceError::Store(dn_store::StoreError::io_with_path(e, wal_path))
            })?;
            serve_durable(MutableLake::new(), config.clone(), dir, policy)?.1
        }
    })
}

/// Shared tail of the entry points: sum the shard epochs, publish the
/// initial [`MultiView`], and index table ownership.
fn build_coordinator(
    shards: Vec<Writer>,
    config: ServiceConfig,
    root_dir: Option<PathBuf>,
) -> (CoordinatorHandle, Coordinator) {
    let epoch = shards.iter().map(Writer::epoch).sum();
    let threads = config.threads.max(1);
    let view = Arc::new(MultiView {
        epoch,
        shards: shards.iter().map(|w| w.service().current()).collect(),
        threads,
    });
    let shared = Arc::new(CoordShared {
        current: RwLock::new(view),
        cache: Mutex::new(TopKCache::new(config.cache_capacity)),
        epochs_published: AtomicU64::new(1),
    });
    let mut table_shard = HashMap::new();
    for (i, writer) in shards.iter().enumerate() {
        for name in writer.lake().live_table_names() {
            // First owner wins on a (transient, crash-mid-migration)
            // duplicate; serve_sharded_from_dir resolves those via the
            // intent file before traffic starts.
            table_shard.entry(name.to_owned()).or_insert(i);
        }
    }
    let handle = CoordinatorHandle {
        shared: Arc::clone(&shared),
    };
    let coordinator = Coordinator {
        shards,
        table_shard,
        dirty: BTreeSet::new(),
        staged: Vec::new(),
        epoch,
        shared,
        root_dir,
        threads,
    };
    (handle, coordinator)
}

// ---------------------------------------------------------------------------
// Component partitioning (shared by the entry points and migration)
// ---------------------------------------------------------------------------

/// Union-find with path halving; roots are always the smallest member
/// index, so grouping is deterministic.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Attach the larger root below the smaller: the component
            // representative is its lowest table index.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Group a lake's live tables into connected components via shared
/// values. Returns the live table names (original order) and each name's
/// component root index.
fn table_components(lake: &MutableLake) -> (Vec<String>, Vec<usize>) {
    let names: Vec<String> = lake
        .live_table_names()
        .into_iter()
        .map(str::to_owned)
        .collect();
    let index: HashMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut uf = UnionFind::new(names.len());
    let mut first_table_of_value: HashMap<usize, usize> = HashMap::new();
    for (attr, values) in lake.live_attribute_values() {
        let table = lake
            .attribute_ref(attr)
            .expect("live attribute has a table reference")
            .table;
        let t = index[table.as_str()];
        for &v in values {
            match first_table_of_value.entry(v.index()) {
                std::collections::hash_map::Entry::Occupied(e) => uf.union(*e.get(), t),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(t);
                }
            }
        }
    }
    let roots: Vec<usize> = (0..names.len()).map(|i| uf.find(i)).collect();
    (names, roots)
}

/// Split a lake into `shards` sub-lakes along component boundaries.
///
/// Components are assigned greedily (in order of first appearance) to the
/// shard with the least accumulated distinct-value weight, which is
/// deterministic and keeps shards roughly balanced. With `shards == 1`
/// the input lake is returned untouched — the bit-identity anchor.
fn partition_lake(lake: MutableLake, shards: usize) -> Vec<MutableLake> {
    if shards <= 1 {
        return vec![lake];
    }
    let (names, roots) = table_components(&lake);
    // Component weight = sum of its tables' distinct-value counts.
    let mut weight_of_root: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, name) in names.iter().enumerate() {
        let w = lake.table(name).map_or(0, Table::total_distinct);
        *weight_of_root.entry(roots[i]).or_insert(0) += w;
    }
    // Greedy assignment in root order (= first-appearance order).
    let mut load = vec![0usize; shards];
    let mut shard_of_root: HashMap<usize, usize> = HashMap::new();
    for (&root, &weight) in &weight_of_root {
        let target = (0..shards)
            .min_by_key(|&s| (load[s], s))
            .expect(">=1 shard");
        load[target] += weight;
        shard_of_root.insert(root, target);
    }
    let mut lakes: Vec<MutableLake> = (0..shards).map(|_| MutableLake::new()).collect();
    for (i, name) in names.iter().enumerate() {
        let target = shard_of_root[&roots[i]];
        let table = lake.table(name).expect("live table").clone();
        lakes[target]
            .apply(&LakeDelta::new().add_table(table))
            .expect("repartitioned table re-applies cleanly");
    }
    lakes
}

/// The live tables of `lake` transitively connected to any of
/// `trigger_values` (normalized) — the move-set of a cross-shard merge.
fn connected_tables(lake: &MutableLake, trigger_values: &[String]) -> Vec<String> {
    let (names, roots) = table_components(lake);
    let index: HashMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut hit_roots: HashSet<usize> = HashSet::new();
    for value in trigger_values {
        if let Some(id) = lake.value_id(value) {
            for &attr in lake.value_attributes(id) {
                if let Some(aref) = lake.attribute_ref(attr) {
                    hit_roots.insert(roots[index[aref.table.as_str()]]);
                }
            }
        }
    }
    names
        .into_iter()
        .enumerate()
        .filter(|(i, _)| hit_roots.contains(&roots[*i]))
        .map(|(_, n)| n)
        .collect()
}

fn add_stats(total: &mut DeltaStats, part: DeltaStats) {
    total.value_nodes_added += part.value_nodes_added;
    total.attr_nodes_added += part.attr_nodes_added;
    total.edges_added += part.edges_added;
    total.edges_removed += part.edges_removed;
    total.dirty_values += part.dirty_values;
    total.touched_components += part.touched_components;
    total.touched_component_nodes += part.touched_component_nodes;
}

// ---------------------------------------------------------------------------
// MultiView: the atomically published cross-shard snapshot set
// ---------------------------------------------------------------------------

/// One coordinator epoch's worth of shard snapshots, published and pinned
/// as a unit so readers never observe a mixture of shard epochs. All
/// scatter-gather query merging lives here.
#[derive(Debug)]
pub struct MultiView {
    epoch: u64,
    shards: Vec<Arc<Snapshot>>,
    /// Worker threads for scatter phases (inherited from the coordinator's
    /// [`ServiceConfig::threads`]). Fan-out only engages with more than one
    /// shard *and* more than one thread; answers are identical either way.
    threads: usize,
}

/// `Ordering::Less` when `a` ranks strictly before `b` under `measure`'s
/// total order — the exact comparator the per-shard rankings are sorted
/// by (score direction per measure, ties broken by value string), which
/// is what makes cross-shard merging exact rather than approximate.
fn rank_cmp(higher_first: bool, a: &ScoredValue, b: &ScoredValue) -> std::cmp::Ordering {
    let primary = if higher_first {
        b.score.total_cmp(&a.score)
    } else {
        a.score.total_cmp(&b.score)
    };
    primary.then_with(|| a.value.cmp(&b.value))
}

impl MultiView {
    /// The coordinator epoch this view was published as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards in this view.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The pinned snapshot of one shard.
    pub fn shard(&self, i: usize) -> &Arc<Snapshot> {
        &self.shards[i]
    }

    /// Probe every shard and return the answers **in shard order**,
    /// fanning the probes out over the view's worker pool. `Pool::run`
    /// degenerates to an inline sequential loop for one shard or one
    /// thread, so the answers (and their order) are identical either way.
    fn scatter<'a, T: Send>(&'a self, probe: impl Fn(&'a Snapshot) -> T + Sync) -> Vec<T> {
        let _scatter = dn_trace::span(dn_trace::Phase::CoordScatter);
        // Pool workers run on their own threads; carry the trace across
        // explicitly so the per-shard probe spans nest under the scatter.
        let ctx = dn_trace::current();
        dn_pool::Pool::new(self.threads).run(self.shards.len(), |i| {
            let _probe = if ctx.is_active() {
                ctx.enter(dn_trace::Phase::ShardQuery, &format!("shard{i}"))
            } else {
                dn_trace::SpanGuard::noop()
            };
            probe(&self.shards[i])
        })
    }

    /// The measures every shard serves (all shards share one config).
    pub fn measures(&self) -> &[Measure] {
        self.shards[0].measures()
    }

    /// Aggregate counts across the shards. `epoch` is the coordinator
    /// epoch; additive counters (nodes, edges, candidates, components,
    /// generations) are summed.
    pub fn stats(&self) -> SnapshotStats {
        let mut total = SnapshotStats {
            epoch: self.epoch,
            generation: 0,
            node_count: 0,
            value_nodes: 0,
            attribute_nodes: 0,
            edge_count: 0,
            live_candidates: 0,
            component_count: 0,
        };
        for shard in &self.shards {
            let s = shard.stats();
            total.generation += s.generation;
            total.node_count += s.node_count;
            total.value_nodes += s.value_nodes;
            total.attribute_nodes += s.attribute_nodes;
            total.edge_count += s.edge_count;
            total.live_candidates += s.live_candidates;
            total.component_count += s.component_count;
        }
        total
    }

    /// Globally merged top-`k` under a measure: an exact k-way merge of
    /// the per-shard rankings under the shared total order. `None` when
    /// the measure is not served.
    pub fn top_k(&self, measure: Measure, k: usize) -> Option<Vec<ScoredValue>> {
        let rankings: Vec<&Arc<Vec<ScoredValue>>> = self
            .scatter(|s| s.ranking(measure))
            .into_iter()
            .collect::<Option<_>>()?;
        if rankings.len() == 1 {
            return Some(rankings[0].iter().take(k).cloned().collect());
        }
        let _merge = dn_trace::span(dn_trace::Phase::CoordMerge);
        let higher_first = measure.higher_is_more_homograph_like();
        let mut heads = vec![0usize; rankings.len()];
        let mut out = Vec::with_capacity(k.min(rankings.iter().map(|r| r.len()).sum()));
        while out.len() < k {
            let mut best: Option<usize> = None;
            for (i, ranking) in rankings.iter().enumerate() {
                let Some(candidate) = ranking.get(heads[i]) else {
                    continue;
                };
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        if rank_cmp(higher_first, candidate, &rankings[b][heads[b]]).is_lt() {
                            best = Some(i);
                        }
                    }
                }
            }
            let Some(b) = best else { break };
            out.push(rankings[b][heads[b]].clone());
            heads[b] += 1;
        }
        Some(out)
    }

    /// Score, **global** rank, and **global** percentile of one value.
    ///
    /// The owning shard's card supplies the score (bit-identical to the
    /// unsharded engine's — components never span shards); rank and
    /// percentile are then corrected globally: the global rank is one
    /// plus the number of entries across *all* shard rankings ordered
    /// strictly before this value under the measure's total order
    /// (counted by binary search — the rankings are sorted by exactly
    /// that order), and the percentile is recomputed from the global
    /// rank and the global candidate count, reproducing the unsharded
    /// `100 * (of - rank) / of` to the bit.
    pub fn score_card(&self, measure: Measure, value: &str) -> Option<ScoreCard> {
        let (owner, mut card) = self
            .scatter(|s| s.score_card(measure, value))
            .into_iter()
            .enumerate()
            .find_map(|(i, c)| c.map(|c| (i, c)))?;
        if self.shards.len() == 1 {
            return Some(card);
        }
        let higher_first = measure.higher_is_more_homograph_like();
        let target = ScoredValue {
            value: card.value.clone(),
            score: card.score,
            attribute_count: card.attribute_count,
            cardinality: card.cardinality,
        };
        let rankings = self.scatter(|s| s.ranking(measure));
        let mut of = 0usize;
        let mut before = 0usize;
        for (i, ranking) in rankings.into_iter().enumerate() {
            let ranking = ranking?;
            of += ranking.len();
            if i == owner {
                before += card.rank - 1;
            } else {
                before += ranking.partition_point(|e| rank_cmp(higher_first, e, &target).is_lt());
            }
        }
        card.rank = before + 1;
        card.of = of;
        card.percentile = 100.0 * (of - card.rank) as f64 / of as f64;
        Some(card)
    }

    /// The attribute-neighborhood explanation of a value.
    ///
    /// On a healthy primary exactly one shard can answer — components
    /// never span shards — so shard order cannot matter. A **follower**
    /// mid-migration-replay is the documented exception: a cross-shard
    /// move is two records in two different logs, and between them the
    /// value legitimately exists on both shards (see the lenient
    /// follower-side recovery, `recover_shards_lenient`). The ambiguity is resolved
    /// deterministically: **the lowest-index answering shard wins**, every
    /// probe is evaluated (no short-circuit racing the fan-out), and the
    /// same rule governs [`MultiView::table_summary`] and the coordinator's
    /// table index, so one request never mixes two shards' views of a
    /// half-moved component.
    pub fn explain(&self, value: &str) -> Option<ValueExplanation> {
        self.scatter(|s| s.explain(value))
            .into_iter()
            .flatten()
            .next()
    }

    /// Sorted names of the live tables across all shards.
    pub fn table_names(&self) -> Vec<String> {
        let per_shard = self.scatter(|s| s.table_names().map(str::to_owned).collect::<Vec<_>>());
        let mut names: BTreeSet<String> = BTreeSet::new();
        for shard_names in per_shard {
            names.extend(shard_names);
        }
        names.into_iter().collect()
    }

    /// Summary of one table, answered by the shard that owns it. All
    /// summary fields are table-local, so the shard's answer is the
    /// global answer. Duplicate ownership (a follower mid-migration)
    /// resolves to the lowest-index answering shard, exactly as
    /// [`MultiView::explain`] documents.
    pub fn table_summary(&self, table: &str, measure: Measure, k: usize) -> Option<TableSummary> {
        self.scatter(|s| s.table_summary(table, measure, k))
            .into_iter()
            .flatten()
            .next()
    }

    /// Check every shard snapshot's internal consistency plus the
    /// cross-shard invariant that no live value appears on two shards.
    pub fn verify_consistency(&self) -> Result<(), String> {
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for (i, shard) in self.shards.iter().enumerate() {
            shard
                .verify_consistency()
                .map_err(|e| format!("shard {i}: {e}"))?;
            let Some(&measure) = shard.measures().first() else {
                continue;
            };
            let ranking = shard
                .ranking(measure)
                .ok_or_else(|| format!("shard {i}: first measure has no ranking"))?;
            for scored in ranking.iter() {
                if let Some(&other) = seen.get(scored.value.as_str()) {
                    return Err(format!(
                        "value '{}' is live on shards {other} and {i}",
                        scored.value
                    ));
                }
                seen.insert(scored.value.as_str(), i);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Handle + reader
// ---------------------------------------------------------------------------

struct CoordShared {
    current: RwLock<Arc<MultiView>>,
    cache: Mutex<TopKCache>,
    epochs_published: AtomicU64,
}

impl CoordShared {
    fn current(&self) -> Arc<MultiView> {
        Arc::clone(&self.current.read().expect("multiview pointer lock"))
    }
}

/// Cloneable read-side handle onto a sharded coordinator: mints
/// [`CoordinatorReader`]s and reports aggregate stats. The sharded
/// counterpart of [`crate::engine::ServiceHandle`].
#[derive(Clone)]
pub struct CoordinatorHandle {
    shared: Arc<CoordShared>,
}

impl CoordinatorHandle {
    /// A new reader, pinned to the current view.
    pub fn reader(&self) -> CoordinatorReader {
        CoordinatorReader {
            pinned: self.shared.current(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// The current view (for one-off queries).
    pub fn current(&self) -> Arc<MultiView> {
        self.shared.current()
    }

    /// The current coordinator epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.current().epoch()
    }

    /// Number of views published so far (the initial one included).
    pub fn epochs_published(&self) -> u64 {
        self.shared.epochs_published.load(Ordering::Relaxed)
    }

    /// Counters of the coordinator-level merged top-k cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.lock().expect("cache lock").stats()
    }

    /// Number of shards behind this handle.
    pub fn shard_count(&self) -> usize {
        self.shared.current().shard_count()
    }
}

/// A reader pinned to one [`MultiView`]. Queries answer entirely from
/// the pinned view; [`CoordinatorReader::pin`] moves to the latest.
pub struct CoordinatorReader {
    shared: Arc<CoordShared>,
    pinned: Arc<MultiView>,
}

impl CoordinatorReader {
    /// Re-pin to the current view, returning its epoch.
    pub fn pin(&mut self) -> u64 {
        self.pinned = self.shared.current();
        self.pinned.epoch()
    }

    /// The pinned view.
    pub fn view(&self) -> &Arc<MultiView> {
        &self.pinned
    }

    /// The pinned coordinator epoch.
    pub fn epoch(&self) -> u64 {
        self.pinned.epoch()
    }

    /// Globally merged top-`k`, served from the coordinator's shared LRU
    /// cache when a reader of the same epoch asked before.
    pub fn top_k(&self, measure: Measure, k: usize) -> Option<Arc<Vec<ScoredValue>>> {
        let key = CacheKey {
            epoch: self.pinned.epoch(),
            measure,
            k,
        };
        if let Some(hit) = self.shared.cache.lock().expect("cache lock").get(&key) {
            return Some(hit);
        }
        let fresh = Arc::new(self.pinned.top_k(measure, k)?);
        self.shared
            .cache
            .lock()
            .expect("cache lock")
            .insert(key, Arc::clone(&fresh));
        Some(fresh)
    }

    /// Global score/rank/percentile card. See [`MultiView::score_card`].
    pub fn score_card(&self, measure: Measure, value: &str) -> Option<ScoreCard> {
        self.pinned.score_card(measure, value)
    }

    /// Attribute-neighborhood explanation. See [`MultiView::explain`].
    pub fn explain(&self, value: &str) -> Option<ValueExplanation> {
        self.pinned.explain(value)
    }

    /// Per-table summary. See [`MultiView::table_summary`].
    pub fn table_summary(&self, table: &str, measure: Measure, k: usize) -> Option<TableSummary> {
        self.pinned.table_summary(table, measure, k)
    }
}

// ---------------------------------------------------------------------------
// Coordinator (write side)
// ---------------------------------------------------------------------------

/// The unique write-side coordinator: owns the shard [`Writer`]s, routes
/// staged deltas by connected component, rebalances components across
/// shard boundaries when a mutation merges them, and publishes
/// [`MultiView`]s. The sharded counterpart of [`Writer`], with the same
/// stage → commit → publish lifecycle.
pub struct Coordinator {
    shards: Vec<Writer>,
    /// Live table name -> owning shard.
    table_shard: HashMap<String, usize>,
    /// Shards with committed-but-unpublished state.
    dirty: BTreeSet<usize>,
    staged: Vec<LakeDelta>,
    /// Sum of the shard epochs.
    epoch: u64,
    shared: Arc<CoordShared>,
    /// Root of the sharded store for durable coordinators (where the
    /// manifest and rebalance intent live).
    root_dir: Option<PathBuf>,
    /// Worker threads for cross-shard fan-out (checkpointing, and carried
    /// into every published [`MultiView`] for the read side). Always ≥ 1.
    threads: usize,
}

impl Coordinator {
    /// Stage a delta for the next [`Coordinator::commit`].
    pub fn stage(&mut self, delta: LakeDelta) {
        self.staged.push(delta);
    }

    /// Number of staged, uncommitted deltas.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Route and apply every staged delta. Does **not** publish. See the
    /// [module docs](self) for the single- vs multi-shard batch
    /// semantics; the returned [`DeltaStats`] cover the client's ops
    /// only (rebalance migrations are internal bookkeeping and excluded).
    ///
    /// # Errors
    /// The first failing op stops the batch (earlier ops stay applied,
    /// exactly like [`Writer::commit`]); store failures during a
    /// migration abort the rebalance with the intent file left in place,
    /// so recovery (or the next commit touching the same values) finishes
    /// the move.
    pub fn commit(&mut self) -> Result<DeltaStats, ServiceError> {
        let _commit = dn_trace::span(dn_trace::Phase::CoordCommit);
        let staged = std::mem::take(&mut self.staged);
        if staged.is_empty() {
            return Ok(DeltaStats::default());
        }
        if self.shards.len() == 1 {
            // Single shard: delegate the whole batch for bit-identical
            // engine semantics (cross-delta cancellation included).
            for delta in staged {
                self.shards[0].stage(delta);
            }
            self.dirty.insert(0);
            return self.shards[0].commit();
        }
        let mut total = DeltaStats::default();
        for delta in &staged {
            for op in delta.ops() {
                add_stats(&mut total, self.apply_op(op)?);
            }
        }
        Ok(total)
    }

    /// Publish the committed state: every dirty shard publishes its own
    /// epoch, and one new [`MultiView`] (coordinator epoch = sum of
    /// shard epochs) is swapped in atomically, invalidating the merged
    /// top-k cache. With nothing dirty, every shard republishes — the
    /// unconditional-bump behavior of [`Writer::publish`], preserved for
    /// the single-shard identity.
    pub fn publish(&mut self) -> u64 {
        let to_publish: Vec<usize> = if self.dirty.is_empty() {
            (0..self.shards.len()).collect()
        } else {
            self.dirty.iter().copied().collect()
        };
        for &i in &to_publish {
            self.shards[i].publish();
        }
        self.dirty.clear();
        self.epoch = self.shards.iter().map(Writer::epoch).sum();
        let view = Arc::new(MultiView {
            epoch: self.epoch,
            shards: self.shards.iter().map(|w| w.service().current()).collect(),
            threads: self.threads,
        });
        *self.shared.current.write().expect("multiview pointer lock") = view;
        self.shared.cache.lock().expect("cache lock").invalidate();
        self.shared.epochs_published.fetch_add(1, Ordering::Relaxed);
        self.epoch
    }

    /// Convenience: stage one delta, commit, and publish.
    pub fn apply_and_publish(
        &mut self,
        delta: LakeDelta,
    ) -> Result<(DeltaStats, u64), ServiceError> {
        self.stage(delta);
        let stats = self.commit()?;
        Ok((stats, self.publish()))
    }

    /// Checkpoint every shard immediately, regardless of policy. Returns
    /// `true` when at least one snapshot was written (`false` only for a
    /// fully non-durable coordinator).
    ///
    /// # Errors
    /// [`ServiceError::Store`] from the first (lowest-index) shard whose
    /// snapshot cannot be written. The shards checkpoint in parallel over
    /// the coordinator's worker pool, so with a multi-shard failure later
    /// shards may also have attempted (and possibly kept) their
    /// checkpoints — each shard's snapshot write is atomic on its own, so
    /// that is safe.
    pub fn checkpoint_now(&mut self) -> Result<bool, ServiceError> {
        let results = dn_pool::Pool::new(self.threads)
            .run_over_mut(&mut self.shards, |_, writer| writer.checkpoint_now());
        let mut any = false;
        for result in results {
            any |= result?;
        }
        Ok(any)
    }

    /// Whether the shards persist commits to a sharded store.
    pub fn is_durable(&self) -> bool {
        self.root_dir.is_some()
    }

    /// The measures every shard warms and publishes.
    pub fn measures(&self) -> &[Measure] {
        self.shards[0].measures()
    }

    /// The current coordinator epoch (sum of the shard epochs).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The published epoch of one shard.
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.shards[shard].epoch()
    }

    /// Bytes of batch records in one shard's WAL (0 when non-durable).
    pub fn shard_wal_record_bytes(&self, shard: usize) -> u64 {
        self.shards[shard].wal_record_bytes()
    }

    /// Store counters of one shard (`None` when non-durable).
    ///
    /// # Errors
    /// [`ServiceError::Store`] when the shard's directory cannot be
    /// listed.
    pub fn shard_store_stats(
        &self,
        shard: usize,
    ) -> Result<Option<dn_store::StoreStats>, ServiceError> {
        self.shards[shard].store_stats()
    }

    /// Cache counters of one shard's own engine-level top-k cache (the
    /// coordinator's merged cache is [`CoordinatorHandle::cache_stats`]).
    pub fn shard_cache_stats(&self, shard: usize) -> CacheStats {
        self.shards[shard].service().cache_stats()
    }

    /// Total WAL record bytes across the shards.
    pub fn wal_record_bytes(&self) -> u64 {
        self.shards.iter().map(Writer::wal_record_bytes).sum()
    }

    /// Which shard owns a live table.
    pub fn table_owner(&self, table: &str) -> Option<usize> {
        self.table_shard.get(table).copied()
    }

    /// Live table names of one shard, in that shard's lake order.
    pub fn shard_live_tables(&self, shard: usize) -> Vec<String> {
        self.shards[shard]
            .lake()
            .live_table_names()
            .into_iter()
            .map(str::to_owned)
            .collect()
    }

    /// A read handle onto this coordinator.
    pub fn handle(&self) -> CoordinatorHandle {
        CoordinatorHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    // -- replication ------------------------------------------------------

    /// Apply one replicated batch to one shard (see
    /// [`Writer::apply_replicated`]) and keep the table-ownership index in
    /// step with the shipped ops. Does **not** swap the merged view — a
    /// sync pass applies every shard's tail first, then calls
    /// [`Coordinator::refresh_view`] once.
    ///
    /// # Errors
    /// As [`Writer::apply_replicated`]; additionally
    /// [`ServiceError::Maintenance`] for an out-of-range shard index.
    pub fn apply_replicated(
        &mut self,
        shard: usize,
        seq: u64,
        epoch: u64,
        batch: &[LakeDelta],
    ) -> Result<(), ServiceError> {
        let writer = self
            .shards
            .get_mut(shard)
            .ok_or_else(|| ServiceError::Maintenance(format!("shard {shard} out of range")))?;
        writer.apply_replicated(seq, epoch, batch)?;
        for delta in batch {
            for op in delta.ops() {
                match op {
                    LakeOp::AddTable(table) => {
                        // Last write wins here (unlike build_coordinator's
                        // first-wins tie-break): the stream is ordered, so
                        // the newest add IS the current owner.
                        self.table_shard.insert(table.name().to_owned(), shard);
                    }
                    LakeOp::RemoveTable(name) if self.table_shard.get(name) == Some(&shard) => {
                        self.table_shard.remove(name);
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Swap in a fresh [`MultiView`] over the shards' *current* snapshots
    /// without bumping any shard epoch. [`Coordinator::publish`] with an
    /// empty dirty set republishes every shard (+1 each) — correct for a
    /// primary, fatal for a follower whose epochs must track the
    /// primary's. Returns the coordinator epoch (sum of shard epochs).
    pub fn refresh_view(&mut self) -> u64 {
        self.dirty.clear();
        self.epoch = self.shards.iter().map(Writer::epoch).sum();
        let view = Arc::new(MultiView {
            epoch: self.epoch,
            shards: self.shards.iter().map(|w| w.service().current()).collect(),
            threads: self.threads,
        });
        *self.shared.current.write().expect("multiview pointer lock") = view;
        self.shared.cache.lock().expect("cache lock").invalidate();
        self.shared.epochs_published.fetch_add(1, Ordering::Relaxed);
        self.epoch
    }

    /// Tear down one shard and rebuild it from a shipped snapshot (the
    /// replica's answer to [`dn_store::WalTail::SnapshotRequired`]: the
    /// primary checkpointed past the follower's position, so the tail is
    /// gone and the shard must re-bootstrap). The shard's directory is
    /// removed, the snapshot installed, and a fresh [`Writer`] recovered
    /// over it; the table index is rebuilt from all shards afterwards.
    ///
    /// # Errors
    /// [`ServiceError::Maintenance`] when the coordinator is non-durable
    /// or the shard index is out of range; [`ServiceError::Store`] when
    /// the snapshot fails validation or the rebuilt shard cannot recover.
    pub fn reinstall_shard(
        &mut self,
        shard: usize,
        snapshot_bytes: &[u8],
        config: &ServiceConfig,
        policy: CheckpointPolicy,
    ) -> Result<(), ServiceError> {
        let root = self.root_dir.clone().ok_or_else(|| {
            ServiceError::Maintenance("reinstall requires a durable coordinator".to_string())
        })?;
        if shard >= self.shards.len() {
            return Err(ServiceError::Maintenance(format!(
                "shard {shard} out of range"
            )));
        }
        let dir = dn_store::shard_dir(&root, shard);
        if dir.exists() {
            std::fs::remove_dir_all(&dir)
                .map_err(|e| ServiceError::Store(dn_store::StoreError::io_with_path(e, &dir)))?;
        }
        dn_store::install_snapshot(&dir, snapshot_bytes)?;
        let (_, writer) = serve_from_dir(dir, config.clone(), policy)?;
        self.shards[shard] = writer;
        self.table_shard.clear();
        for (i, writer) in self.shards.iter().enumerate() {
            for name in writer.lake().live_table_names() {
                self.table_shard.entry(name.to_owned()).or_insert(i);
            }
        }
        Ok(())
    }

    /// Sequence number of the last batch in one shard's log.
    pub fn shard_last_seq(&self, shard: usize) -> u64 {
        self.shards[shard].last_seq()
    }

    /// One shard's WAL suffix after `from_seq`, for shipping. See
    /// [`Writer::wal_after`].
    ///
    /// # Errors
    /// As [`Writer::wal_after`].
    pub fn shard_wal_after(
        &self,
        shard: usize,
        from_seq: u64,
    ) -> Result<dn_store::WalTail, ServiceError> {
        self.shards[shard].wal_after(from_seq)
    }

    /// One shard's newest on-disk snapshot bytes, for replica bootstrap.
    ///
    /// # Errors
    /// As [`Writer::newest_snapshot_bytes`].
    pub fn shard_snapshot_bytes(&self, shard: usize) -> Result<(u64, Vec<u8>), ServiceError> {
        self.shards[shard].newest_snapshot_bytes()
    }

    // -- routing ----------------------------------------------------------

    /// Route one op to its shard (migrating components first when the op
    /// merges components across shards) and commit it there.
    fn apply_op(&mut self, op: &LakeOp) -> Result<DeltaStats, ServiceError> {
        let target = match op {
            LakeOp::AddTable(table) => match self.table_shard.get(table.name()) {
                // Duplicate name: route to the owner so the engine
                // surfaces its own duplicate-table error.
                Some(&owner) => owner,
                None => {
                    let values: Vec<String> = table
                        .columns()
                        .iter()
                        .flat_map(|c| c.distinct_values().map(str::to_owned))
                        .collect::<BTreeSet<_>>()
                        .into_iter()
                        .collect();
                    let touched = self.shards_holding(&values);
                    match touched.as_slice() {
                        [] => self.least_loaded_shard(),
                        [only] => *only,
                        _ => {
                            let target = self.pick_merge_target(&touched);
                            let sources: Vec<usize> =
                                touched.into_iter().filter(|&s| s != target).collect();
                            self.migrate_into(target, &sources, &values)?;
                            target
                        }
                    }
                }
            },
            LakeOp::RemoveTable(name) => {
                // An unknown table routes to shard 0 so the engine
                // produces its NotFound error deterministically.
                self.table_shard.get(name.as_str()).copied().unwrap_or(0)
            }
            LakeOp::ReplaceValue {
                table, replacement, ..
            } => {
                let home = self.table_shard.get(table.as_str()).copied().unwrap_or(0);
                let norm = normalize(replacement);
                if !lake::value::is_missing(&norm) {
                    let trigger = vec![norm];
                    let sources: Vec<usize> = self
                        .shards_holding(&trigger)
                        .into_iter()
                        .filter(|&s| s != home)
                        .collect();
                    if !sources.is_empty() {
                        // The replacement value is live elsewhere: its
                        // components must co-reside with the edited table.
                        self.migrate_into(home, &sources, &trigger)?;
                    }
                }
                home
            }
        };
        let mut delta = LakeDelta::new();
        delta.push(op.clone());
        let result = self.commit_shard(target, delta);
        if result.is_ok() {
            match op {
                LakeOp::AddTable(table) => {
                    self.table_shard.insert(table.name().to_owned(), target);
                }
                LakeOp::RemoveTable(name) => {
                    self.table_shard.remove(name.as_str());
                }
                LakeOp::ReplaceValue { .. } => {}
            }
        }
        result
    }

    /// Stage and commit one delta on one shard, marking it dirty.
    fn commit_shard(&mut self, shard: usize, delta: LakeDelta) -> Result<DeltaStats, ServiceError> {
        self.shards[shard].stage(delta);
        self.dirty.insert(shard);
        self.shards[shard].commit()
    }

    /// Shards on which at least one of `values` (normalized) is live,
    /// ascending.
    fn shards_holding(&self, values: &[String]) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, writer)| {
                let lake = writer.lake();
                values.iter().any(|v| {
                    lake.value_id(v)
                        .is_some_and(|id| !lake.value_attributes(id).is_empty())
                })
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Destination for a brand-new component: the shard with the fewest
    /// live incidences (ties to the lowest index).
    fn least_loaded_shard(&self) -> usize {
        (0..self.shards.len())
            .min_by_key(|&i| (self.shards[i].lake().incidence_count(), i))
            .expect(">=1 shard")
    }

    /// Destination of a merge: the touched shard holding the most live
    /// incidences (so the least data moves; ties to the lowest index).
    fn pick_merge_target(&self, touched: &[usize]) -> usize {
        let mut best = touched[0];
        for &s in &touched[1..] {
            if self.shards[s].lake().incidence_count() > self.shards[best].lake().incidence_count()
            {
                best = s;
            }
        }
        best
    }

    /// Move every component of `sources` connected to `trigger_values`
    /// into `target`: durable intent first, then per table add-to-target
    /// followed by remove-from-source (each an ordinary WAL-logged
    /// commit), then the intent is cleared.
    fn migrate_into(
        &mut self,
        target: usize,
        sources: &[usize],
        trigger_values: &[String],
    ) -> Result<(), ServiceError> {
        let mut moves: Vec<(usize, Table)> = Vec::new();
        for &source in sources {
            for name in connected_tables(self.shards[source].lake(), trigger_values) {
                let table = self.shards[source]
                    .lake()
                    .table(&name)
                    .expect("connected table is live")
                    .clone();
                moves.push((source, table));
            }
        }
        if moves.is_empty() {
            return Ok(());
        }
        if let Some(root) = self.root_dir.clone() {
            let intent = dn_store::RebalanceIntent {
                moves: moves
                    .iter()
                    .map(|(from, table)| dn_store::TableMove {
                        table: table.name().to_owned(),
                        from: *from,
                        to: target,
                    })
                    .collect(),
            };
            dn_store::write_rebalance_intent(&root, &intent)?;
        }
        for (from, table) in moves {
            let name = table.name().to_owned();
            self.commit_shard(target, LakeDelta::new().add_table(table))?;
            self.commit_shard(from, LakeDelta::new().remove_table(name.clone()))?;
            self.table_shard.insert(name, target);
        }
        if let Some(root) = self.root_dir.clone() {
            dn_store::clear_rebalance_intent(&root)?;
        }
        Ok(())
    }

    // -- recovery helpers --------------------------------------------------

    /// Finish a rebalance interrupted by a crash (see
    /// [`dn_store::RebalanceIntent`] for the per-entry cases), then
    /// publish the repaired shards.
    fn complete_rebalance(
        &mut self,
        intent: &dn_store::RebalanceIntent,
    ) -> Result<(), ServiceError> {
        for mv in &intent.moves {
            if mv.from >= self.shards.len() || mv.to >= self.shards.len() {
                return Err(ServiceError::Maintenance(format!(
                    "rebalance intent references shard {} of {}",
                    mv.from.max(mv.to),
                    self.shards.len()
                )));
            }
            let on_from = self.shards[mv.from].lake().table(&mv.table).is_some();
            let on_to = self.shards[mv.to].lake().table(&mv.table).is_some();
            match (on_from, on_to) {
                (true, false) => {
                    let table = self.shards[mv.from]
                        .lake()
                        .table(&mv.table)
                        .expect("probed live")
                        .clone();
                    self.commit_shard(mv.to, LakeDelta::new().add_table(table))?;
                    self.commit_shard(mv.from, LakeDelta::new().remove_table(mv.table.clone()))?;
                }
                (true, true) => {
                    self.commit_shard(mv.from, LakeDelta::new().remove_table(mv.table.clone()))?;
                }
                (false, _) => {} // move completed (or never started *and* the table is gone)
            }
            self.table_shard.insert(mv.table.clone(), mv.to);
        }
        if !self.dirty.is_empty() {
            self.publish();
        }
        Ok(())
    }

    /// Re-derive table ownership from the shard lakes, failing on a
    /// duplicate (a table live on two shards with no intent explaining
    /// it — the invariant the rebalance machinery exists to protect).
    fn verify_table_ownership(&mut self) -> Result<(), ServiceError> {
        let mut owners: HashMap<String, usize> = HashMap::new();
        for (i, writer) in self.shards.iter().enumerate() {
            for name in writer.lake().live_table_names() {
                if let Some(previous) = owners.insert(name.to_owned(), i) {
                    return Err(ServiceError::Maintenance(format!(
                        "table '{name}' is live on shards {previous} and {i} with no rebalance intent"
                    )));
                }
            }
        }
        self.table_shard = owners;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake::table::TableBuilder;

    fn config() -> ServiceConfig {
        ServiceConfig {
            measures: vec![Measure::lcc(), Measure::exact_bc()],
            cache_capacity: 8,
            prune_single_attribute_values: false,
            threads: 1,
        }
    }

    fn running_lake() -> MutableLake {
        MutableLake::from_catalog(&lake::fixtures::running_example())
    }

    /// Two disconnected components: animals and currencies.
    fn two_component_lake() -> MutableLake {
        let mut lake = MutableLake::new();
        lake.apply(
            &LakeDelta::new()
                .add_table(
                    TableBuilder::new("zoo")
                        .column("animal", ["Jaguar", "Okapi", "Zebra"])
                        .build()
                        .unwrap(),
                )
                .add_table(
                    TableBuilder::new("cars")
                        .column("make", ["Jaguar", "Fiat", "Kia"])
                        .build()
                        .unwrap(),
                )
                .add_table(
                    TableBuilder::new("fx")
                        .column("code", ["USD", "EUR", "JPY"])
                        .build()
                        .unwrap(),
                )
                .add_table(
                    TableBuilder::new("prices")
                        .column("currency", ["USD", "GBP", "EUR"])
                        .build()
                        .unwrap(),
                ),
        )
        .unwrap();
        lake
    }

    #[test]
    fn explain_resolves_double_ownership_to_the_lowest_index_shard() {
        // A follower mid-migration-replay legitimately holds a value on
        // two shards (the move is two records in two logs); the fan-out
        // must resolve that window deterministically, not by whichever
        // worker finishes first. Build the window directly: two
        // single-shard snapshots that both know "Jaguar", with different
        // neighborhoods so the answers are distinguishable.
        let mut zoo_lake = MutableLake::new();
        zoo_lake
            .apply(
                &LakeDelta::new().add_table(
                    TableBuilder::new("zoo")
                        .column("animal", ["Jaguar", "Okapi", "Zebra"])
                        .build()
                        .unwrap(),
                ),
            )
            .unwrap();
        let mut cars_lake = MutableLake::new();
        cars_lake
            .apply(
                &LakeDelta::new().add_table(
                    TableBuilder::new("cars")
                        .column("make", ["Jaguar", "Fiat", "Kia"])
                        .build()
                        .unwrap(),
                ),
            )
            .unwrap();
        let (zoo_service, _zw) = serve(zoo_lake, config());
        let (cars_service, _cw) = serve(cars_lake, config());
        let zoo = zoo_service.current();
        let cars = cars_service.current();
        let zoo_answer = zoo.explain("Jaguar").unwrap();
        let cars_answer = cars.explain("Jaguar").unwrap();
        assert_ne!(
            zoo_answer, cars_answer,
            "the shards must genuinely disagree"
        );
        for threads in [1usize, 4] {
            let view = MultiView {
                epoch: 0,
                shards: vec![Arc::clone(&zoo), Arc::clone(&cars)],
                threads,
            };
            assert_eq!(view.explain("Jaguar").unwrap(), zoo_answer);
            assert_eq!(
                view.table_summary("cars", Measure::lcc(), 8),
                cars.table_summary("cars", Measure::lcc(), 8),
                "single-owner tables still answer from their owner"
            );
            let flipped = MultiView {
                epoch: 0,
                shards: vec![Arc::clone(&cars), Arc::clone(&zoo)],
                threads,
            };
            assert_eq!(flipped.explain("Jaguar").unwrap(), cars_answer);
        }
    }

    #[test]
    fn single_shard_is_bit_identical_to_the_engine() {
        let (plain_service, _pw) = serve(running_lake(), config());
        let (handle, _coordinator) = serve_sharded(running_lake(), config(), 1);
        assert_eq!(handle.shard_count(), 1);
        assert_eq!(handle.epoch(), 0);
        let view = handle.current();
        let plain = plain_service.current();
        for measure in [Measure::lcc(), Measure::exact_bc()] {
            let a = view.top_k(measure, usize::MAX).unwrap();
            let b = plain.top_k(measure, usize::MAX).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.value, y.value);
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "{}", x.value);
            }
        }
        assert_eq!(view.stats(), plain.stats());
        view.verify_consistency().unwrap();
    }

    #[test]
    fn partition_keeps_components_whole() {
        let (handle, coordinator) = serve_sharded(two_component_lake(), config(), 2);
        assert_eq!(handle.shard_count(), 2);
        // zoo+cars share JAGUAR, fx+prices share USD/EUR: one component each.
        let zoo = coordinator.table_owner("zoo").unwrap();
        assert_eq!(coordinator.table_owner("cars").unwrap(), zoo);
        let fx = coordinator.table_owner("fx").unwrap();
        assert_eq!(coordinator.table_owner("prices").unwrap(), fx);
        assert_ne!(zoo, fx, "two components spread across two shards");
        handle.current().verify_consistency().unwrap();
    }

    #[test]
    fn cross_shard_merge_migrates_the_component() {
        let (handle, mut coordinator) = serve_sharded(two_component_lake(), config(), 2);
        // A table bridging both components forces a merge.
        let bridge = LakeDelta::new().add_table(
            TableBuilder::new("bridge")
                .column("word", ["Jaguar", "USD"])
                .build()
                .unwrap(),
        );
        coordinator.apply_and_publish(bridge).unwrap();
        let owner = coordinator.table_owner("bridge").unwrap();
        for table in ["zoo", "cars", "fx", "prices"] {
            assert_eq!(
                coordinator.table_owner(table).unwrap(),
                owner,
                "{table} must co-reside with the bridge"
            );
        }
        let view = handle.current();
        view.verify_consistency().unwrap();
        // The merged component scores exactly like an unsharded engine.
        let mut reference_lake = two_component_lake();
        reference_lake
            .apply(
                &LakeDelta::new().add_table(
                    TableBuilder::new("bridge")
                        .column("word", ["Jaguar", "USD"])
                        .build()
                        .unwrap(),
                ),
            )
            .unwrap();
        let (reference, _w) = serve(reference_lake, config());
        let reference_view = reference.current();
        for measure in [Measure::lcc(), Measure::exact_bc()] {
            let merged = view.top_k(measure, usize::MAX).unwrap();
            let plain = reference_view.top_k(measure, usize::MAX).unwrap();
            assert_eq!(merged.len(), plain.len());
            for (x, y) in merged.iter().zip(plain.iter()) {
                assert_eq!(x.value, y.value, "{measure:?}");
                assert!((x.score - y.score).abs() < 1e-9, "{measure:?} {}", x.value);
            }
        }
    }

    #[test]
    fn global_score_cards_match_the_unsharded_engine() {
        let (sharded, _c) = serve_sharded(two_component_lake(), config(), 2);
        let (plain, _w) = serve(two_component_lake(), config());
        let view = sharded.current();
        let reference = plain.current();
        for measure in [Measure::lcc(), Measure::exact_bc()] {
            for value in ["Jaguar", "USD", "Okapi", "GBP", "Fiat"] {
                let merged = view.score_card(measure, value).unwrap();
                let local = reference.score_card(measure, value).unwrap();
                assert_eq!(merged.rank, local.rank, "{measure:?} {value}");
                assert_eq!(merged.of, local.of, "{measure:?} {value}");
                assert!(
                    (merged.percentile - local.percentile).abs() < 1e-9,
                    "{measure:?} {value}"
                );
                assert!((merged.score - local.score).abs() < 1e-9);
            }
        }
        assert!(view.score_card(Measure::lcc(), "no-such-value").is_none());
    }

    #[test]
    fn replace_value_can_pull_a_component_across_shards() {
        let (_handle, mut coordinator) = serve_sharded(two_component_lake(), config(), 2);
        let zoo = coordinator.table_owner("zoo").unwrap();
        // Replacing FIAT with USD links the car component to the currency
        // component; the currency tables must migrate to cars' shard.
        coordinator
            .apply_and_publish(LakeDelta::new().replace_value("cars", "make", "FIAT", "USD"))
            .unwrap();
        assert_eq!(coordinator.table_owner("fx").unwrap(), zoo);
        assert_eq!(coordinator.table_owner("prices").unwrap(), zoo);
        coordinator.handle().current().verify_consistency().unwrap();
    }

    #[test]
    fn failed_ops_surface_engine_errors_without_publishing() {
        let (handle, mut coordinator) = serve_sharded(two_component_lake(), config(), 2);
        let before = handle.epoch();
        coordinator.stage(LakeDelta::new().remove_table("no-such-table"));
        let err = coordinator.commit().unwrap_err();
        assert!(matches!(err, ServiceError::Lake(_)));
        assert_eq!(handle.epoch(), before, "nothing published");
        // Merged queries still answer from the old view.
        assert!(handle
            .current()
            .top_k(Measure::lcc(), 5)
            .is_some_and(|t| !t.is_empty()));
    }

    #[test]
    fn merged_top_k_is_cached_per_epoch() {
        let (handle, mut coordinator) = serve_sharded(two_component_lake(), config(), 2);
        let reader = handle.reader();
        let first = reader.top_k(Measure::lcc(), 4).unwrap();
        let second = reader.top_k(Measure::lcc(), 4).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = handle.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        coordinator
            .apply_and_publish(LakeDelta::new().remove_table("prices"))
            .unwrap();
        assert_eq!(handle.cache_stats().entries, 0, "publish invalidates");
    }

    #[test]
    fn empty_shards_serve_empty_answers() {
        // More shards than components: the extras stay empty but answer.
        let (handle, coordinator) = serve_sharded(two_component_lake(), config(), 4);
        assert_eq!(coordinator.shard_count(), 4);
        let view = handle.current();
        view.verify_consistency().unwrap();
        assert_eq!(view.table_names().len(), 4);
        let all = view.top_k(Measure::lcc(), usize::MAX).unwrap();
        let (plain, _w) = serve(two_component_lake(), config());
        assert_eq!(
            all.len(),
            plain
                .current()
                .top_k(Measure::lcc(), usize::MAX)
                .unwrap()
                .len()
        );
    }

    #[test]
    fn coordinator_epoch_is_the_sum_of_shard_epochs() {
        let (handle, mut coordinator) = serve_sharded(two_component_lake(), config(), 2);
        assert_eq!(handle.epoch(), 0);
        // One op touching one shard publishes one shard epoch.
        coordinator
            .apply_and_publish(
                LakeDelta::new().add_table(
                    TableBuilder::new("staff")
                        .column("name", ["Ada", "Grace"])
                        .build()
                        .unwrap(),
                ),
            )
            .unwrap();
        assert_eq!(
            coordinator.epoch(),
            coordinator.shard_epoch(0) + coordinator.shard_epoch(1)
        );
        assert_eq!(handle.epoch(), coordinator.epoch());
        assert!(coordinator.epoch() >= 1);
    }
}
