//! Read-replica follower engine: bootstrap, WAL tailing, and the
//! divergence-insurance layer.
//!
//! A primary's per-shard delta WAL (PR 4) is a complete, checksummed
//! change stream, and the sharded store (PR 6) gives every shard its own
//! log. This module ships those logs to followers:
//!
//! 1. **Bootstrap** — [`Follower::bootstrap`] fetches every shard's newest
//!    snapshot from the primary and installs it into a local sharded store
//!    ([`dn_store::install_snapshot`]); a follower restarted over an
//!    existing directory recovers locally instead and resumes tailing from
//!    its own last sequence number.
//! 2. **Tail** — [`Follower::sync_once`] asks the source for each shard's
//!    WAL suffix after the follower's local position and applies it through
//!    [`Writer::apply_replicated`](crate::engine::Writer::apply_replicated)
//!    — the same incremental path crash recovery replays, so a follower is
//!    state-identical to a primary that recovered from the same log. When
//!    the primary has checkpointed past the follower's position
//!    ([`dn_store::WalTail::SnapshotRequired`]), the shard re-bootstraps
//!    from a fresh snapshot.
//! 3. **Insure** — after catching up, the follower compares an
//!    epoch-tagged [`snapshot_digest`] per shard against the primary's.
//!    Digests are compared **only at equal epochs** (lag is not
//!    divergence); a mismatch at the same epoch means the replica's
//!    observable state — identity counts, edges, every ranking entry down
//!    to raw score bits — differs from the primary's, and the follower
//!    **halts**: [`ReplicaShared::halted`] latches the reason,
//!    `dn_replica_divergence_total` increments, and the serving layer
//!    refuses reads rather than serving wrong rankings.
//!
//! The [`ReplicaSource`] trait abstracts the transport: the server crate
//! implements it over HTTP, and the test suites implement it in-process
//! (and inject faults) without sockets.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dn_store::Digest64;
use lake::delta::LakeDelta;

use crate::coordinator::{recover_shards_lenient, Coordinator, CoordinatorHandle};
use crate::engine::{CheckpointPolicy, ServiceConfig, ServiceError};
use crate::snapshot::Snapshot;

/// Fold one published shard snapshot into a 64-bit state digest.
///
/// The digest covers everything a reader can observe: the graph's identity
/// counts (value/attribute nodes, edges, live candidates, components) and,
/// per served measure, the measure label plus every ranking entry's value
/// string and raw `f64::to_bits` score. It deliberately **excludes** the
/// epoch and the net generation: the epoch is the comparison *key* (two
/// digests are only compared when their epochs match), and the generation
/// counts internal rebuilds that differ between a primary and a follower
/// without any observable difference.
pub fn snapshot_digest(snapshot: &Snapshot) -> u64 {
    let mut d = Digest64::new();
    let stats = snapshot.stats();
    d.write_u64(stats.value_nodes as u64);
    d.write_u64(stats.attribute_nodes as u64);
    d.write_u64(stats.edge_count as u64);
    d.write_u64(stats.live_candidates as u64);
    d.write_u64(stats.component_count as u64);
    for &measure in snapshot.measures() {
        d.write_str(&format!("{measure:?}"));
        if let Some(ranking) = snapshot.ranking(measure) {
            d.write_u64(ranking.len() as u64);
            for entry in ranking.iter() {
                d.write_str(&entry.value);
                d.write_u64(entry.score.to_bits());
            }
        } else {
            d.write_u64(u64::MAX);
        }
    }
    d.finish()
}

/// One shard's position in the primary's status report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPeerStatus {
    /// The shard's published epoch.
    pub epoch: u64,
    /// The shard's state digest ([`snapshot_digest`]) at that epoch.
    pub digest: u64,
}

/// The primary's replication status: its coordinator epoch and every
/// shard's epoch-tagged digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimaryStatus {
    /// The primary's coordinator epoch (sum of shard epochs).
    pub epoch: u64,
    /// Per-shard epoch + digest, indexed by shard.
    pub shards: Vec<ShardPeerStatus>,
}

/// One WAL record as shipped over the replication channel.
#[derive(Debug, Clone)]
pub struct FetchedRecord {
    /// Monotonic per-shard sequence number.
    pub seq: u64,
    /// The primary's epoch when the batch committed.
    pub epoch: u64,
    /// The committed batch.
    pub batch: Vec<LakeDelta>,
}

/// The answer to a WAL fetch: either the suffix of records after the
/// requested position, or a directive to re-bootstrap from a snapshot
/// because the primary has checkpointed past that position.
#[derive(Debug)]
pub enum WalFetch {
    /// The (possibly empty) record suffix, in sequence order.
    Records(Vec<FetchedRecord>),
    /// The tail is gone; bootstrap from the primary's newest snapshot.
    SnapshotRequired {
        /// Sequence number of the snapshot the primary offers.
        snapshot_seq: u64,
    },
}

/// Errors surfaced by the follower sync loop.
#[derive(Debug)]
pub enum ReplicaError {
    /// The replication source failed (network, decode, primary error) —
    /// transient by assumption; the tail loop retries with backoff.
    Source(String),
    /// The insurance digest disagreed with the primary's at an equal
    /// epoch — **not** transient; the follower halts and refuses reads.
    Diverged(String),
    /// A local engine/store failure while applying — also fatal: the
    /// follower's own state can no longer be trusted to match the log.
    Service(ServiceError),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Source(msg) => write!(f, "replication source: {msg}"),
            ReplicaError::Diverged(msg) => write!(f, "replica diverged: {msg}"),
            ReplicaError::Service(e) => write!(f, "replica apply: {e}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<ServiceError> for ReplicaError {
    fn from(e: ServiceError) -> Self {
        ReplicaError::Service(e)
    }
}

/// Where a follower pulls status, snapshots, and WAL suffixes from.
///
/// The server crate implements this over HTTP against a live primary; the
/// fault-injection and property suites implement it in-process so they can
/// drop, corrupt, and delay traffic deterministically.
pub trait ReplicaSource {
    /// The primary's current epoch and per-shard digests.
    ///
    /// # Errors
    /// [`ReplicaError::Source`] when the primary cannot be reached or
    /// answers malformed data.
    fn fetch_status(&self) -> Result<PrimaryStatus, ReplicaError>;

    /// One shard's newest snapshot `(last_seq, bytes)` for bootstrap.
    ///
    /// # Errors
    /// [`ReplicaError::Source`] as above.
    fn fetch_snapshot(&self, shard: usize) -> Result<(u64, Vec<u8>), ReplicaError>;

    /// One shard's WAL suffix after `from_seq`.
    ///
    /// # Errors
    /// [`ReplicaError::Source`] as above.
    fn fetch_wal(&self, shard: usize, from_seq: u64) -> Result<WalFetch, ReplicaError>;
}

/// Gauges shared between the follower sync loop and the serving layer:
/// replication lag, the divergence counter, and the halt latch.
#[derive(Debug, Default)]
pub struct ReplicaShared {
    lag_epochs: AtomicU64,
    divergence_total: AtomicU64,
    halted: Mutex<Option<String>>,
}

impl ReplicaShared {
    /// Epochs the follower's view trails the primary's (0 when caught up).
    pub fn lag_epochs(&self) -> u64 {
        self.lag_epochs.load(Ordering::Relaxed)
    }

    /// Total digest mismatches detected since this follower started.
    pub fn divergence_total(&self) -> u64 {
        self.divergence_total.load(Ordering::Relaxed)
    }

    /// The halt reason, when the follower has stopped serving.
    pub fn halted(&self) -> Option<String> {
        self.halted.lock().expect("halt latch").clone()
    }

    /// Record the current lag.
    pub fn set_lag(&self, epochs: u64) {
        self.lag_epochs.store(epochs, Ordering::Relaxed);
    }

    /// Count one detected divergence.
    pub fn record_divergence(&self) {
        self.divergence_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Latch the halt reason (the first reason wins).
    pub fn halt(&self, reason: impl Into<String>) {
        let mut latch = self.halted.lock().expect("halt latch");
        if latch.is_none() {
            *latch = Some(reason.into());
        }
    }
}

/// An in-process [`ReplicaSource`] reading directly from a primary
/// coordinator behind a mutex. Used by the test suites and benches; the
/// HTTP transport in the server crate is the production path.
pub struct LocalReplicaSource {
    handle: CoordinatorHandle,
    coordinator: Arc<Mutex<Coordinator>>,
}

impl LocalReplicaSource {
    /// Wrap a primary's handle + coordinator.
    pub fn new(handle: CoordinatorHandle, coordinator: Arc<Mutex<Coordinator>>) -> Self {
        LocalReplicaSource {
            handle,
            coordinator,
        }
    }
}

impl ReplicaSource for LocalReplicaSource {
    fn fetch_status(&self) -> Result<PrimaryStatus, ReplicaError> {
        // Digest the *published* view (what the primary's readers see),
        // not the writer's possibly-ahead live state.
        let view = self.handle.current();
        let shards = (0..view.shard_count())
            .map(|i| {
                let snapshot = view.shard(i);
                ShardPeerStatus {
                    epoch: snapshot.epoch(),
                    digest: snapshot_digest(snapshot),
                }
            })
            .collect();
        Ok(PrimaryStatus {
            epoch: view.epoch(),
            shards,
        })
    }

    fn fetch_snapshot(&self, shard: usize) -> Result<(u64, Vec<u8>), ReplicaError> {
        let primary = self.coordinator.lock().expect("primary lock");
        primary
            .shard_snapshot_bytes(shard)
            .map_err(|e| ReplicaError::Source(e.to_string()))
    }

    fn fetch_wal(&self, shard: usize, from_seq: u64) -> Result<WalFetch, ReplicaError> {
        let primary = self.coordinator.lock().expect("primary lock");
        match primary.shard_wal_after(shard, from_seq) {
            Ok(dn_store::WalTail::Records(records)) => Ok(WalFetch::Records(
                records
                    .into_iter()
                    .map(|r| FetchedRecord {
                        seq: r.seq,
                        epoch: r.epoch,
                        batch: r.batch,
                    })
                    .collect(),
            )),
            Ok(dn_store::WalTail::SnapshotRequired { snapshot_seq }) => {
                Ok(WalFetch::SnapshotRequired { snapshot_seq })
            }
            Err(e) => Err(ReplicaError::Source(e.to_string())),
        }
    }
}

/// Summary of one [`Follower::sync_once`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Batches applied across all shards this pass.
    pub applied_batches: u64,
    /// Lag (primary epoch − follower epoch) after the pass.
    pub lag_epochs: u64,
    /// Shards whose digests were compared at equal epochs this pass.
    pub checked_shards: usize,
}

/// A read-only follower: a local sharded engine kept in step with a
/// primary by tailing its per-shard WALs.
pub struct Follower {
    coordinator: Arc<Mutex<Coordinator>>,
    handle: CoordinatorHandle,
    shared: Arc<ReplicaShared>,
    config: ServiceConfig,
    policy: CheckpointPolicy,
    root: PathBuf,
}

impl Follower {
    /// Bring up a follower under `root`. An empty directory bootstraps
    /// from the source's newest per-shard snapshots; a directory already
    /// holding a sharded store recovers locally (snapshot + WAL replay)
    /// and resumes tailing from its own last sequence — a restarted
    /// follower does not re-download state it already has.
    ///
    /// # Errors
    /// [`ReplicaError::Source`] when the primary cannot be reached during
    /// a fresh bootstrap; [`ReplicaError::Service`] when the local store
    /// fails to install or recover.
    pub fn bootstrap(
        root: impl Into<PathBuf>,
        config: ServiceConfig,
        policy: CheckpointPolicy,
        source: &dyn ReplicaSource,
    ) -> Result<Follower, ReplicaError> {
        let root = root.into();
        if !dn_store::sharded_store_exists(&root) {
            let status = source.fetch_status()?;
            dn_store::write_shard_manifest(&root, status.shards.len().max(1))
                .map_err(|e| ReplicaError::Service(e.into()))?;
            for shard in 0..status.shards.len().max(1) {
                let (_, bytes) = source.fetch_snapshot(shard)?;
                dn_store::install_snapshot(&dn_store::shard_dir(&root, shard), &bytes)
                    .map_err(|e| ReplicaError::Service(e.into()))?;
            }
        }
        let (handle, coordinator) = recover_shards_lenient(&root, config.clone(), policy)?;
        Ok(Follower {
            coordinator: Arc::new(Mutex::new(coordinator)),
            handle,
            shared: Arc::new(ReplicaShared::default()),
            config,
            policy,
            root,
        })
    }

    /// One tail-and-verify pass: fetch and apply every shard's WAL suffix
    /// (re-bootstrapping shards the primary has checkpointed past), swap
    /// in the refreshed view, then run the insurance exchange — compare
    /// per-shard digests against the primary's wherever the epochs match,
    /// and update the lag gauge.
    ///
    /// # Errors
    /// [`ReplicaError::Source`] is transient — retry with backoff.
    /// [`ReplicaError::Diverged`] and [`ReplicaError::Service`] are fatal:
    /// the halt latch is set and the caller must stop serving reads.
    pub fn sync_once(&mut self, source: &dyn ReplicaSource) -> Result<SyncReport, ReplicaError> {
        if let Some(reason) = self.shared.halted() {
            return Err(ReplicaError::Diverged(reason));
        }
        // Each sync cycle is its own trace (subject to the sampling
        // draw). While it is active, the HTTP replica source forwards the
        // trace ID on its fetches, so the primary's ring shows the
        // follower's tail reads under the same ID.
        let _trace = dn_trace::start_trace("replica_sync", None);
        let _sync = dn_trace::span(dn_trace::Phase::ReplicaSync);
        let status = source.fetch_status()?;
        let mut report = SyncReport::default();
        {
            let mut local = self.coordinator.lock().expect("follower lock");
            let shard_count = local.shard_count();
            for shard in 0..shard_count.min(status.shards.len()) {
                loop {
                    let from_seq = local.shard_last_seq(shard);
                    match source.fetch_wal(shard, from_seq)? {
                        WalFetch::Records(records) => {
                            if records.is_empty() {
                                break;
                            }
                            for record in &records {
                                local
                                    .apply_replicated(
                                        shard,
                                        record.seq,
                                        record.epoch,
                                        &record.batch,
                                    )
                                    .map_err(|e| self.fatal(ReplicaError::Service(e)))?;
                                report.applied_batches += 1;
                            }
                        }
                        WalFetch::SnapshotRequired { .. } => {
                            let (_, bytes) = source.fetch_snapshot(shard)?;
                            local
                                .reinstall_shard(shard, &bytes, &self.config, self.policy)
                                .map_err(|e| self.fatal(ReplicaError::Service(e)))?;
                        }
                    }
                }
            }
            local.refresh_view();
        }
        // Insurance exchange, against the view just published.
        let view = self.handle.current();
        for (shard, peer) in status.shards.iter().enumerate() {
            if shard >= view.shard_count() {
                break;
            }
            let snapshot = view.shard(shard);
            if snapshot.epoch() != peer.epoch {
                continue; // lag, not divergence — next pass re-checks
            }
            report.checked_shards += 1;
            let local_digest = snapshot_digest(snapshot);
            if local_digest != peer.digest {
                self.shared.record_divergence();
                let reason = format!(
                    "shard {shard} digest mismatch at epoch {}: local {local_digest:016x} vs primary {:016x}",
                    peer.epoch, peer.digest
                );
                self.shared.halt(&reason);
                return Err(ReplicaError::Diverged(reason));
            }
        }
        report.lag_epochs = status.epoch.saturating_sub(view.epoch());
        self.shared.set_lag(report.lag_epochs);
        Ok(report)
    }

    /// Latch a fatal error into the halt state and pass it through.
    fn fatal(&self, e: ReplicaError) -> ReplicaError {
        self.shared.halt(e.to_string());
        e
    }

    /// Read handle over the follower's local engine.
    pub fn handle(&self) -> CoordinatorHandle {
        self.handle.clone()
    }

    /// The follower's coordinator (shared with the serving layer).
    pub fn coordinator(&self) -> Arc<Mutex<Coordinator>> {
        Arc::clone(&self.coordinator)
    }

    /// The gauges + halt latch shared with the serving layer.
    pub fn shared(&self) -> Arc<ReplicaShared> {
        Arc::clone(&self.shared)
    }

    /// The follower's store root.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::serve_sharded_durable;
    use domainnet::Measure;
    use lake::delta::{LakeDelta, MutableLake};
    use lake::table::TableBuilder;

    fn scratch(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("dn_replica_unit_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> ServiceConfig {
        ServiceConfig {
            measures: vec![Measure::lcc(), Measure::exact_bc()],
            ..ServiceConfig::default()
        }
    }

    fn table(i: u32) -> lake::table::Table {
        TableBuilder::new(format!("R{i}"))
            .column("animal", ["Jaguar", "Puma", &format!("Extra{i}")])
            .build()
            .unwrap()
    }

    #[test]
    fn follower_bootstraps_tails_and_agrees_bit_for_bit() {
        let root = scratch("basic");
        let primary_dir = root.join("primary");
        let follower_dir = root.join("follower");
        let lake = MutableLake::from_catalog(&lake::fixtures::running_example());
        let (handle, coordinator) =
            serve_sharded_durable(lake, config(), &primary_dir, CheckpointPolicy::manual(), 2)
                .unwrap();
        let primary = Arc::new(Mutex::new(coordinator));
        let source = LocalReplicaSource::new(handle.clone(), Arc::clone(&primary));

        let mut follower =
            Follower::bootstrap(&follower_dir, config(), CheckpointPolicy::manual(), &source)
                .unwrap();
        let report = follower.sync_once(&source).unwrap();
        assert_eq!(report.lag_epochs, 0);
        assert_eq!(report.checked_shards, 2, "digests verified on both shards");

        // Mutate the primary; the follower catches up and re-verifies.
        for i in 0..3 {
            primary
                .lock()
                .unwrap()
                .apply_and_publish(LakeDelta::new().add_table(table(i)))
                .unwrap();
        }
        let report = follower.sync_once(&source).unwrap();
        assert!(report.applied_batches >= 3);
        assert_eq!(report.lag_epochs, 0);
        assert_eq!(follower.shared().divergence_total(), 0);

        // Bit-exact agreement on the merged ranking.
        let primary_top = handle.current().top_k(Measure::exact_bc(), 10).unwrap();
        let follower_top = follower
            .handle()
            .current()
            .top_k(Measure::exact_bc(), 10)
            .unwrap();
        assert_eq!(primary_top.len(), follower_top.len());
        for (p, f) in primary_top.iter().zip(&follower_top) {
            assert_eq!(p.value, f.value);
            assert_eq!(p.score.to_bits(), f.score.to_bits());
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn snapshot_required_rebootstraps_the_shard() {
        let root = scratch("trim");
        let primary_dir = root.join("primary");
        let follower_dir = root.join("follower");
        let lake = MutableLake::from_catalog(&lake::fixtures::running_example());
        let (handle, coordinator) =
            serve_sharded_durable(lake, config(), &primary_dir, CheckpointPolicy::manual(), 1)
                .unwrap();
        let primary = Arc::new(Mutex::new(coordinator));
        let source = LocalReplicaSource::new(handle, Arc::clone(&primary));
        let mut follower =
            Follower::bootstrap(&follower_dir, config(), CheckpointPolicy::manual(), &source)
                .unwrap();
        follower.sync_once(&source).unwrap();

        // Mutate, then checkpoint: the WAL tail the follower needs is gone.
        {
            let mut p = primary.lock().unwrap();
            for i in 0..2 {
                p.apply_and_publish(LakeDelta::new().add_table(table(i)))
                    .unwrap();
            }
            p.checkpoint_now().unwrap();
        }
        let report = follower.sync_once(&source).unwrap();
        assert_eq!(report.lag_epochs, 0);
        assert_eq!(follower.shared().halted(), None);
        assert_eq!(
            follower.handle().current().epoch(),
            primary.lock().unwrap().epoch()
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
