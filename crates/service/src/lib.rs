//! # `dn-service` — a concurrent snapshot-serving engine for DomainNet
//!
//! The paper's pipeline scores homographs offline; the incremental
//! subsystem (`lake::delta` + `DomainNet::apply_delta`) made the lake
//! mutable. This crate adds the missing third piece for a production
//! deployment: *serving* those scores under concurrent load while the lake
//! keeps mutating.
//!
//! The design is a classic single-writer / many-reader epoch scheme:
//!
//! * one [`engine::Writer`] owns the [`lake::MutableLake`] and the
//!   [`domainnet::DomainNet`], applies **batched** [`lake::LakeDelta`]s
//!   through the incremental maintenance path, and publishes immutable
//!   [`snapshot::Snapshot`]s behind `Arc`s;
//! * any number of [`engine::Reader`]s pin the current snapshot and answer
//!   queries against it with no further synchronization — top-k rankings,
//!   per-value score/rank/percentile cards, attribute-neighborhood
//!   explanations, and per-table summaries;
//! * a small shared LRU cache ([`cache::CacheStats`]) short-circuits
//!   repeated top-k queries within an epoch and is invalidated on publish;
//! * the writer can be made **durable** ([`serve_durable`]): commits are
//!   write-ahead logged before they apply, a [`CheckpointPolicy`]
//!   periodically snapshots the engine (via the `dn-store` crate) and
//!   trims the log, and [`serve_from_dir`] restores an equal engine from
//!   disk after a crash — skipping the CSV re-parse and the cold LCC/BC
//!   scoring pass entirely;
//! * for lakes too big for one writer, [`serve_sharded`] (and its durable
//!   siblings) partitions the lake by connected component across N
//!   independent engines behind a [`coordinator::Coordinator`] that
//!   routes deltas, rebalances components across shard boundaries, and
//!   scatter-gathers queries with exact global rank/percentile semantics
//!   — see the [`coordinator`] module docs.
//!
//! ## Example
//!
//! ```
//! use dn_service::{serve, ServiceConfig};
//! use domainnet::Measure;
//! use lake::delta::{LakeDelta, MutableLake};
//! use lake::table::TableBuilder;
//!
//! let lake = MutableLake::from_catalog(&lake::fixtures::running_example());
//! let (service, mut writer) = serve(lake, ServiceConfig::default());
//!
//! // Readers answer from the published epoch...
//! let mut reader = service.reader();
//! let top = reader.top_k(Measure::exact_bc(), 1).unwrap();
//! assert_eq!(top[0].value, "JAGUAR");
//!
//! // ...while the writer batches mutations and publishes new epochs.
//! writer.stage(LakeDelta::new().add_table(
//!     TableBuilder::new("T9").column("animal", ["Jaguar", "Okapi"]).build().unwrap(),
//! ));
//! writer.commit().unwrap();
//! writer.publish();
//! assert_eq!(reader.pin(), 1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod coordinator;
pub mod engine;
pub mod replica;
pub mod snapshot;

pub use cache::CacheStats;
pub use coordinator::{
    serve_sharded, serve_sharded_durable, serve_sharded_from_dir, Coordinator, CoordinatorHandle,
    CoordinatorReader, MultiView,
};
pub use engine::{
    serve, serve_durable, serve_from_dir, CheckpointPolicy, Reader, ServiceConfig, ServiceError,
    ServiceHandle, Writer,
};
pub use replica::{
    snapshot_digest, FetchedRecord, Follower, LocalReplicaSource, PrimaryStatus, ReplicaError,
    ReplicaShared, ReplicaSource, ShardPeerStatus, SyncReport, WalFetch,
};
pub use snapshot::{
    AttributeNeighborhood, ScoreCard, Snapshot, SnapshotStats, TableSummary, ValueExplanation,
};
