//! A small LRU cache for repeated top-k queries.
//!
//! Top-k is by far the hottest query shape a homograph service answers
//! ("show me the 20 most suspicious values"), and its result is identical
//! for every reader pinned to the same epoch. The cache therefore keys on
//! `(epoch, measure, k)` and stores the materialized prefix behind an
//! `Arc`, so concurrent readers share one allocation. Publishing a new
//! epoch invalidates the whole cache — entries for dead epochs would only
//! be hit by readers deliberately pinned to the past, and those can afford
//! the recompute.

use std::collections::HashMap;
use std::sync::Arc;

use domainnet::{Measure, ScoredValue};

/// Cache key: one entry per `(epoch, measure, k)` combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub epoch: u64,
    pub measure: Measure,
    pub k: usize,
}

#[derive(Debug)]
struct CacheEntry {
    last_used: u64,
    data: Arc<Vec<ScoredValue>>,
}

/// Aggregate cache counters, exposed via
/// [`crate::engine::ServiceHandle::cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to materialize the prefix.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Configured capacity (0 = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The LRU store. Not thread-safe by itself: the engine wraps it in a
/// `Mutex`, which is the right trade at this size — the critical section is
/// a hash lookup, far cheaper than the ranking clone it avoids.
#[derive(Debug)]
pub(crate) struct TopKCache {
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    entries: HashMap<CacheKey, CacheEntry>,
}

impl TopKCache {
    pub fn new(capacity: usize) -> Self {
        TopKCache {
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            entries: HashMap::with_capacity(capacity.min(64)),
        }
    }

    /// Look up a key, bumping its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Vec<ScoredValue>>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&entry.data))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly materialized prefix, evicting the least recently
    /// used entry when full. A no-op at capacity 0.
    pub fn insert(&mut self, key: CacheKey, data: Arc<Vec<ScoredValue>>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Linear-scan eviction: the cache is deliberately small (tens of
            // entries), so a scan beats the bookkeeping of an intrusive list.
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            key,
            CacheEntry {
                last_used: self.tick,
                data,
            },
        );
    }

    /// Drop every entry (called on epoch publish).
    pub fn invalidate(&mut self) {
        self.entries.clear();
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(epoch: u64, k: usize) -> CacheKey {
        CacheKey {
            epoch,
            measure: Measure::lcc(),
            k,
        }
    }

    fn data(n: usize) -> Arc<Vec<ScoredValue>> {
        Arc::new(
            (0..n)
                .map(|i| ScoredValue {
                    value: format!("v{i}"),
                    score: i as f64,
                    attribute_count: 1,
                    cardinality: 1,
                })
                .collect(),
        )
    }

    #[test]
    fn hit_miss_accounting_and_sharing() {
        let mut cache = TopKCache::new(4);
        assert!(cache.get(&key(0, 10)).is_none());
        cache.insert(key(0, 10), data(10));
        let a = cache.get(&key(0, 10)).expect("hit");
        let b = cache.get(&key(0, 10)).expect("hit");
        assert!(Arc::ptr_eq(&a, &b), "hits share one allocation");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let mut cache = TopKCache::new(2);
        cache.insert(key(0, 1), data(1));
        cache.insert(key(0, 2), data(2));
        // Touch k=1 so k=2 becomes the LRU victim.
        assert!(cache.get(&key(0, 1)).is_some());
        cache.insert(key(0, 3), data(3));
        assert!(cache.get(&key(0, 1)).is_some());
        assert!(cache.get(&key(0, 2)).is_none(), "LRU entry was evicted");
        assert!(cache.get(&key(0, 3)).is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn invalidate_clears_but_keeps_counters() {
        let mut cache = TopKCache::new(4);
        cache.insert(key(0, 5), data(5));
        assert!(cache.get(&key(0, 5)).is_some());
        cache.invalidate();
        assert!(cache.get(&key(0, 5)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1, "counters survive invalidation");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = TopKCache::new(0);
        cache.insert(key(0, 5), data(5));
        assert!(cache.get(&key(0, 5)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
