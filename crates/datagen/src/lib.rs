//! # `datagen` — benchmark generators for the DomainNet reproduction
//!
//! Homograph detection in data lakes had no public benchmarks before the
//! paper; its evaluation rests on four datasets (§4). This crate regenerates
//! functional equivalents of all four, with exact ground truth:
//!
//! | Paper dataset | Module | Notes |
//! |---|---|---|
//! | **SB** — 13-table synthetic benchmark with 55 homographs | [`sb`] | regenerated from embedded vocabularies whose overlaps *are* the ground truth |
//! | **TUS** — real open-data tables with unionability ground truth | [`tus`] | synthetic open-data-style lake preserving the structural properties DomainNet consumes (slicing, cardinality skew, shared tokens, numeric collisions) |
//! | **TUS-I** — TUS with homographs removed and re-injected | [`inject`] | the paper's §4.3 procedure: removal + controlled injection |
//! | **NYC-EDU** — 1.5 M-value lake used only for scalability | [`scale`] | parameterized large-lake generator |
//!
//! For the incremental subsystem, [`mutate`] generates seeded streams of
//! single-table lake mutations (arrivals, removals, cell rewrites) to replay
//! against any of the generated lakes, plus [`mutate::DriftStream`]: numbered
//! CSV file generations in which values drift across semantic domains over
//! mutation epochs — the time-evolving homograph workload consumed by the
//! `dn-ingest` drop-folder watcher.
//!
//! Ground truth is represented by [`truth::LakeTruth`]: a semantic class per
//! attribute, from which homograph labels follow via the paper's
//! Definition 2 (a value in two attributes with different classes is a
//! homograph).
//!
//! All generators are deterministic under an explicit seed.
//!
//! ```
//! use datagen::sb::SbGenerator;
//!
//! let lake = SbGenerator::new(7).generate();
//! assert_eq!(lake.catalog.table_count(), 13);
//! assert!(lake.homographs().contains_key("JAGUAR"));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod inject;
pub mod mutate;
pub mod sb;
pub mod scale;
pub mod truth;
pub mod tus;
pub mod vocab;

pub use inject::{inject_homographs, remove_homographs, InjectionConfig, InjectionResult};
pub use mutate::{DriftConfig, DriftGeneration, DriftStream, MutationConfig, MutationStream};
pub use sb::{SbConfig, SbGenerator};
pub use scale::{ScaleConfig, ScaleGenerator};
pub use truth::{GeneratedLake, LakeTruth};
pub use tus::{TusConfig, TusGenerator};
