//! The Synthetic Benchmark (SB) generator — §4.1 of the paper.
//!
//! The paper's SB is a small, fully synthetic but realistic data lake: 13
//! tables of about 1 000 rows each (plus a 193-row country table and a 50-row
//! US-state table) whose vocabularies overlap in controlled ways, producing
//! 55 ground-truth homographs such as `Jaguar` (animal / company), `Sydney`
//! (city / first name), `Jamaica` (city / country), `Lincoln` (car maker /
//! city), `CA` (country code / state abbreviation), and `Pumpkin` (grocery /
//! movie). The original was authored with Mockaroo; this generator rebuilds
//! an equivalent lake from the embedded vocabularies in [`crate::vocab`],
//! with exact per-attribute semantic classes so the ground truth follows
//! mechanically from [`crate::truth::LakeTruth`].
//!
//! The generator is deterministic for a given seed.

use lake::catalog::LakeCatalog;
use lake::table::TableBuilder;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::truth::{GeneratedLake, LakeTruth};
use crate::vocab;

/// Configuration for the SB generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SbConfig {
    /// RNG seed.
    pub seed: u64,
    /// Rows per "large" table (the paper uses 1 000).
    pub rows_per_table: usize,
}

impl Default for SbConfig {
    fn default() -> Self {
        SbConfig {
            seed: 2021,
            rows_per_table: 1000,
        }
    }
}

/// Generator for the Synthetic Benchmark.
#[derive(Debug, Clone)]
pub struct SbGenerator {
    config: SbConfig,
}

impl SbGenerator {
    /// Create a generator with the default row count and the given seed.
    pub fn new(seed: u64) -> Self {
        SbGenerator {
            config: SbConfig {
                seed,
                ..SbConfig::default()
            },
        }
    }

    /// Create a generator from an explicit configuration.
    pub fn with_config(config: SbConfig) -> Self {
        SbGenerator { config }
    }

    /// Values that the benchmark is designed to turn into homographs and that
    /// every generated instance is guaranteed to contain (normalized form).
    ///
    /// The full ground-truth homograph set (derived from the semantic
    /// classes) is larger; these are the canonical, paper-style examples used
    /// by tests and documentation.
    pub fn canonical_homographs() -> Vec<&'static str> {
        vec![
            "JAGUAR",
            "PUMA",
            "LINCOLN",
            "SYDNEY",
            "JAMAICA",
            "CUBA",
            "PUMPKIN",
            "APPLE",
            "ORANGE",
            "CA",
            "GA",
            "DE",
            "AL",
            "CO",
            "MD",
            "BEETLE",
            "MUSTANG",
            "COLT",
            "RAM",
            "IMPALA",
            "FALCON",
            "EAGLE",
            "VIPER",
            "COBRA",
            "PANDA",
            "KIWI",
            "GEORGIA",
            "VIRGINIA",
            "WASHINGTON",
            "MADISON",
            "JACKSON",
            "CHARLOTTE",
            "AUSTIN",
            "PHOENIX",
            "SAVANNAH",
            "FLORENCE",
            "VICTORIA",
            "CHELSEA",
            "BROOKLYN",
            "NEBRASKA",
            "CHICAGO",
            "PHILADELPHIA",
            "CASABLANCA",
            "OLIVE",
            "BLACKBERRY",
        ]
    }

    /// Generate the lake and its ground truth.
    pub fn generate(&self) -> GeneratedLake {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let rows = self.config.rows_per_table;
        let mut truth = LakeTruth::new();
        let mut tables = Vec::new();

        // -- T01: corporate donations to protect endangered species ---------
        {
            let donors = sample_column(&mut rng, vocab::COMPANIES, rows);
            let animals = sample_column(&mut rng, vocab::ANIMALS, rows);
            let amounts: Vec<String> = (0..rows)
                .map(|_| format!("{:.1}M", rng.gen_range(0.1..25.0)))
                .collect();
            tables.push(
                TableBuilder::new("endangered_donations")
                    .column("donor", donors)
                    .column("at_risk", animals)
                    .column("donation", amounts)
                    .build()
                    .expect("rectangular by construction"),
            );
            truth.set_class("endangered_donations", "donor", "company");
            truth.set_class("endangered_donations", "at_risk", "animal");
            truth.set_class("endangered_donations", "donation", "money_millions");
        }

        // -- T02: zoo populations -------------------------------------------
        {
            let animals = sample_column(&mut rng, vocab::ANIMALS, rows);
            let cities = sample_column(&mut rng, vocab::CITIES, rows);
            let counts: Vec<String> = (0..rows)
                .map(|_| rng.gen_range(1..=40).to_string())
                .collect();
            tables.push(
                TableBuilder::new("zoo_population")
                    .column("animal", animals)
                    .column("city", cities)
                    .column("count", counts)
                    .build()
                    .expect("rectangular by construction"),
            );
            truth.set_class("zoo_population", "animal", "animal");
            truth.set_class("zoo_population", "city", "city");
            truth.set_class("zoo_population", "count", "small_count");
        }

        // -- T03: car imports ------------------------------------------------
        {
            let models = sample_column(&mut rng, vocab::CAR_MODELS, rows);
            let brands = sample_column(&mut rng, vocab::CAR_BRANDS, rows);
            let countries = sample_column(&mut rng, vocab::COUNTRIES, rows);
            tables.push(
                TableBuilder::new("car_imports")
                    .column("model", models)
                    .column("brand", brands)
                    .column("origin", countries)
                    .build()
                    .expect("rectangular by construction"),
            );
            truth.set_class("car_imports", "model", "car_model");
            // Car manufacturers are companies (as in the running example):
            // Toyota in `brand` and in `company_financials.company` keeps a
            // single meaning; Jaguar still collides with the animal columns.
            truth.set_class("car_imports", "brand", "company");
            truth.set_class("car_imports", "origin", "country");
        }

        // -- T04: company financials -----------------------------------------
        {
            let companies = sample_column(&mut rng, vocab::COMPANIES, rows);
            let revenue: Vec<String> = (0..rows)
                .map(|_| format!("{:.2}", rng.gen_range(1.0..999.0)))
                .collect();
            let employees: Vec<String> = (0..rows)
                .map(|_| rng.gen_range(2_500..900_000).to_string())
                .collect();
            tables.push(
                TableBuilder::new("company_financials")
                    .column("company", companies)
                    .column("revenue", revenue)
                    .column("employees", employees)
                    .build()
                    .expect("rectangular by construction"),
            );
            truth.set_class("company_financials", "company", "company");
            truth.set_class("company_financials", "revenue", "revenue");
            truth.set_class("company_financials", "employees", "employees");
        }

        // -- T05: customers ---------------------------------------------------
        {
            let first = sample_column(&mut rng, vocab::FIRST_NAMES, rows);
            let last = sample_column(&mut rng, vocab::LAST_NAMES, rows);
            let cities = sample_column(&mut rng, vocab::CITIES, rows);
            let states = sample_column(&mut rng, vocab::US_STATES, rows);
            let emails: Vec<String> = (0..rows)
                .map(|i| {
                    format!(
                        "{}.{}{}@example.com",
                        first[i].to_lowercase().replace(' ', ""),
                        last[i].to_lowercase().replace(' ', ""),
                        rng.gen_range(1..10_000)
                    )
                })
                .collect();
            tables.push(
                TableBuilder::new("customers")
                    .column("first_name", first)
                    .column("last_name", last)
                    .column("city", cities)
                    .column("state", states)
                    .column("email", emails)
                    .build()
                    .expect("rectangular by construction"),
            );
            truth.set_class("customers", "first_name", "first_name");
            truth.set_class("customers", "last_name", "last_name");
            truth.set_class("customers", "city", "city");
            truth.set_class("customers", "state", "us_state");
            truth.set_class("customers", "email", "email");
        }

        // -- T06: countries (193 rows, as in the paper) -----------------------
        {
            let mut countries: Vec<String> =
                vocab::COUNTRIES.iter().map(|s| s.to_string()).collect();
            countries.truncate(193);
            while countries.len() < 193 {
                countries.push(format!("Territory {}", countries.len()));
            }
            let codes: Vec<String> = (0..countries.len())
                .map(|i| {
                    vocab::COUNTRY_CODES
                        .get(i)
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| synthetic_code(i))
                })
                .collect();
            let capitals = sample_column(&mut rng, vocab::CITIES, countries.len());
            tables.push(
                TableBuilder::new("countries")
                    .column("country", countries)
                    .column("code", codes)
                    .column("capital", capitals)
                    .build()
                    .expect("rectangular by construction"),
            );
            truth.set_class("countries", "country", "country");
            truth.set_class("countries", "code", "country_code");
            truth.set_class("countries", "capital", "city");
        }

        // -- T07: US states (50 rows) -----------------------------------------
        {
            let states: Vec<String> = vocab::US_STATES.iter().map(|s| s.to_string()).collect();
            let abbrevs: Vec<String> = vocab::STATE_ABBREVS.iter().map(|s| s.to_string()).collect();
            let capitals = sample_column(&mut rng, vocab::CITIES, states.len());
            tables.push(
                TableBuilder::new("us_states")
                    .column("state", states)
                    .column("abbreviation", abbrevs)
                    .column("capital", capitals)
                    .build()
                    .expect("rectangular by construction"),
            );
            truth.set_class("us_states", "state", "us_state");
            truth.set_class("us_states", "abbreviation", "state_abbrev");
            truth.set_class("us_states", "capital", "city");
        }

        // -- T08: grocery products --------------------------------------------
        {
            let products = sample_column(&mut rng, vocab::GROCERIES, rows);
            let prices: Vec<String> = (0..rows)
                .map(|_| format!("${:.2}", rng.gen_range(0.5..50.0)))
                .collect();
            let skus: Vec<String> = (0..rows)
                .map(|_| format!("SKU-{:06}", rng.gen_range(0..1_000_000)))
                .collect();
            tables.push(
                TableBuilder::new("grocery_products")
                    .column("product", products)
                    .column("price", prices)
                    .column("sku", skus)
                    .build()
                    .expect("rectangular by construction"),
            );
            truth.set_class("grocery_products", "product", "grocery");
            truth.set_class("grocery_products", "price", "price");
            truth.set_class("grocery_products", "sku", "sku");
        }

        // -- T09: movies --------------------------------------------------------
        {
            let titles = sample_column(&mut rng, vocab::MOVIES, rows);
            let years: Vec<String> = (0..rows)
                .map(|_| rng.gen_range(1950..=2023).to_string())
                .collect();
            let ratings: Vec<String> = (0..rows)
                .map(|_| format!("{:.1}", rng.gen_range(1.0..9.9)))
                .collect();
            tables.push(
                TableBuilder::new("movies")
                    .column("title", titles)
                    .column("year", years)
                    .column("rating", ratings)
                    .build()
                    .expect("rectangular by construction"),
            );
            truth.set_class("movies", "title", "movie");
            truth.set_class("movies", "year", "year");
            truth.set_class("movies", "rating", "rating");
        }

        // -- T10: botany --------------------------------------------------------
        {
            let plants = sample_column(&mut rng, vocab::PLANTS, rows);
            let scientific = sample_column(&mut rng, vocab::SCIENTIFIC_NAMES, rows);
            let families: Vec<String> = (0..rows)
                .map(|_| format!("Family {}", rng.gen_range(1..=60)))
                .collect();
            tables.push(
                TableBuilder::new("botany")
                    .column("common_name", plants)
                    .column("scientific_name", scientific)
                    .column("family", families)
                    .build()
                    .expect("rectangular by construction"),
            );
            truth.set_class("botany", "common_name", "plant");
            truth.set_class("botany", "scientific_name", "scientific_name");
            truth.set_class("botany", "family", "taxon_family");
        }

        // -- T11: wildlife ------------------------------------------------------
        {
            let animals = sample_column(&mut rng, vocab::ANIMALS, rows);
            let scientific = sample_column(&mut rng, vocab::SCIENTIFIC_NAMES, rows);
            let habitats = sample_column(&mut rng, vocab::HABITATS, rows);
            let colors = sample_column(&mut rng, vocab::COLORS, rows);
            tables.push(
                TableBuilder::new("wildlife")
                    .column("animal", animals)
                    .column("scientific_name", scientific)
                    .column("habitat", habitats)
                    .column("color", colors)
                    .build()
                    .expect("rectangular by construction"),
            );
            truth.set_class("wildlife", "animal", "animal");
            truth.set_class("wildlife", "scientific_name", "scientific_name");
            truth.set_class("wildlife", "habitat", "habitat");
            truth.set_class("wildlife", "color", "color");
        }

        // -- T12: world cities ---------------------------------------------------
        {
            let cities = sample_column(&mut rng, vocab::CITIES, rows);
            let countries = sample_column(&mut rng, vocab::COUNTRIES, rows);
            let populations: Vec<String> = (0..rows)
                .map(|_| rng.gen_range(1_000_000..30_000_000).to_string())
                .collect();
            tables.push(
                TableBuilder::new("world_cities")
                    .column("city", cities)
                    .column("country", countries)
                    .column("population", populations)
                    .build()
                    .expect("rectangular by construction"),
            );
            truth.set_class("world_cities", "city", "city");
            truth.set_class("world_cities", "country", "country");
            truth.set_class("world_cities", "population", "population");
        }

        // -- T13: university departments -----------------------------------------
        {
            let departments = sample_column(&mut rng, vocab::DEPARTMENTS, rows);
            let cities = sample_column(&mut rng, vocab::CITIES, rows);
            let enrollment: Vec<String> = (0..rows)
                .map(|_| rng.gen_range(50..1_800).to_string())
                .collect();
            tables.push(
                TableBuilder::new("university_departments")
                    .column("department", departments)
                    .column("city", cities)
                    .column("enrollment", enrollment)
                    .build()
                    .expect("rectangular by construction"),
            );
            truth.set_class("university_departments", "department", "department");
            truth.set_class("university_departments", "city", "city");
            truth.set_class("university_departments", "enrollment", "enrollment");
        }

        let catalog = LakeCatalog::from_tables(tables).expect("generated table names are unique");
        GeneratedLake { catalog, truth }
    }
}

/// Values that are always kept when a column subsamples its vocabulary, so
/// the benchmark's engineered overlaps (and a couple of engineered
/// *non*-homographs such as Toyota) are guaranteed to materialize in every
/// generated instance.
fn anchored(value: &str) -> bool {
    let normalized = lake::normalize(value);
    normalized == "TOYOTA"
        || normalized == "PANDA"
        || SbGenerator::canonical_homographs().contains(&normalized.as_str())
}

/// Sample `rows` cells from a vocabulary.
///
/// Real open-data and Mockaroo columns rarely contain a semantic type's
/// *entire* vocabulary: two city columns overlap only partially, and their
/// cardinalities differ a lot. To reproduce that structure — which is what
/// makes the local clustering coefficient unreliable on SB (Figure 5) — each
/// column first draws its own random subset of the vocabulary (between ~35 %
/// and ~95 % of it, anchors always included), then fills its rows from that
/// subset. Every subset member appears at least once when the row count
/// allows.
fn sample_column(rng: &mut StdRng, vocabulary: &[&str], rows: usize) -> Vec<String> {
    let keep_fraction: f64 = rng.gen_range(0.35..0.95);
    let mut subset: Vec<&str> = vocabulary
        .iter()
        .copied()
        .filter(|v| anchored(v) || rng.gen_bool(keep_fraction))
        .collect();
    if subset.is_empty() {
        subset.push(vocabulary[0]);
    }
    let mut cells: Vec<String> = Vec::with_capacity(rows);
    for value in subset.iter().take(rows) {
        cells.push((*value).to_string());
    }
    while cells.len() < rows {
        let value = subset.choose(rng).expect("subset is never empty");
        cells.push((*value).to_string());
    }
    cells.shuffle(rng);
    cells
}

/// Deterministic synthetic two-letter-plus-digit code for countries beyond
/// the curated ISO list (kept distinct from real codes to avoid accidental
/// extra homographs).
fn synthetic_code(index: usize) -> String {
    let a = (b'A' + (index % 26) as u8) as char;
    let b = (b'A' + ((index / 26) % 26) as u8) as char;
    format!("{a}{b}{}", index % 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_thirteen_tables_with_expected_shapes() {
        let lake = SbGenerator::new(7).generate();
        assert_eq!(lake.catalog.table_count(), 13);
        assert_eq!(lake.catalog.table("countries").unwrap().row_count(), 193);
        assert_eq!(lake.catalog.table("us_states").unwrap().row_count(), 50);
        assert_eq!(
            lake.catalog.table("zoo_population").unwrap().row_count(),
            1000
        );
        // Every attribute has a recorded semantic class.
        assert_eq!(
            lake.truth.attribute_classes.len(),
            lake.catalog.attribute_count()
        );
    }

    #[test]
    fn canonical_homographs_are_labeled() {
        let lake = SbGenerator::new(7).generate();
        let homographs = lake.homographs();
        for value in SbGenerator::canonical_homographs() {
            assert!(
                homographs.contains_key(value),
                "expected {value} to be a ground-truth homograph"
            );
        }
    }

    #[test]
    fn homograph_count_is_in_a_plausible_band() {
        let lake = SbGenerator::new(7).generate();
        let homographs = lake.homographs();
        // The paper's SB has 55; the regenerated lake lands in the same
        // neighbourhood (the exact number depends on vocabulary overlap).
        assert!(
            (40..=120).contains(&homographs.len()),
            "unexpected homograph count {}",
            homographs.len()
        );
        // All homographs have at least two meanings.
        assert!(homographs.values().all(|&m| m >= 2));
    }

    #[test]
    fn unambiguous_repeats_exist_and_do_not_overlap() {
        let lake = SbGenerator::new(7).generate();
        let homographs = lake.homograph_set();
        let repeats = lake.truth.unambiguous_repeats(&lake.catalog);
        // Panda appears in several animal columns but only as an animal...
        // except that the Fiat Panda makes it a homograph in SB, matching the
        // richer vocabulary. Use Toyota (company in two tables) instead.
        assert!(repeats.contains("TOYOTA"));
        assert!(repeats.is_disjoint(&homographs));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SbGenerator::new(99).generate();
        let b = SbGenerator::new(99).generate();
        assert_eq!(a.catalog.value_count(), b.catalog.value_count());
        assert_eq!(a.homographs(), b.homographs());
        let c = SbGenerator::new(100).generate();
        // Different seed still produces the same schema.
        assert_eq!(c.catalog.table_count(), 13);
    }

    #[test]
    fn small_tables_create_low_cardinality_homographs() {
        // The state/country-code homographs (CA, GA, ...) live in the two
        // small tables, which is what makes them hard for BC (the paper's
        // Figure 6 discussion). Verify they are present and small.
        let lake = SbGenerator::new(7).generate();
        let ca = lake.catalog.value_id("CA").expect("CA present");
        let card = lake.catalog.value_cardinality(ca);
        assert!(card < 500, "CA should have small cardinality, got {card}");
        // And it genuinely is a ground-truth homograph despite that.
        assert!(lake.homographs().contains_key("CA"));
    }
}
