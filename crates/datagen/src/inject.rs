//! Homograph removal and injection — the TUS-I procedure (§4.3).
//!
//! To measure how homograph properties (cardinality, number of meanings)
//! affect detection, the paper first *removes* every naturally occurring
//! homograph from the TUS lake and then *injects* synthetic ones with
//! controlled properties:
//!
//! 1. **Removal**: each ground-truth homograph is rewritten, per semantic
//!    class, into a class-qualified variant, so every remaining value has a
//!    single meaning.
//! 2. **Injection**: a new homograph is created by picking `meanings`
//!    different values from attributes of `meanings` different (non-unionable)
//!    classes and replacing all of their occurrences with one fresh token
//!    `InjectedHomographN`. Only string values of length ≥ 3 are replaced,
//!    and the attributes they are drawn from must have at least
//!    `min_attr_cardinality` distinct values (Table 2 varies exactly this
//!    threshold).

use std::collections::{BTreeMap, BTreeSet};

use lake::value::normalize;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::truth::GeneratedLake;

/// Configuration for homograph injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct InjectionConfig {
    /// Number of homographs to inject.
    pub count: usize,
    /// Number of meanings per injected homograph (values replaced per token).
    pub meanings: usize,
    /// Minimum number of distinct values an attribute must have for its
    /// values to be eligible for replacement.
    pub min_attr_cardinality: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InjectionConfig {
    fn default() -> Self {
        InjectionConfig {
            count: 50,
            meanings: 2,
            min_attr_cardinality: 0,
            seed: 7,
        }
    }
}

/// The outcome of an injection run.
#[derive(Debug, Clone)]
pub struct InjectionResult {
    /// The lake with homographs injected (ground-truth classes unchanged).
    pub lake: GeneratedLake,
    /// Normalized injected tokens (e.g. `INJECTEDHOMOGRAPH3`), in order.
    pub injected: Vec<String>,
}

/// Minimum length of a value eligible for replacement (the paper replaces
/// only string values with at least three characters).
const MIN_VALUE_LEN: usize = 3;

/// Rewrite every ground-truth homograph into per-class variants so that the
/// resulting lake has no homographs at all (the starting point of TUS-I).
///
/// A homograph `v` occurring in attributes of classes `c1, c2, …` becomes
/// `v__c1` in the attributes of class `c1`, `v__c2` in those of class `c2`,
/// and so on. Attribute classes are unchanged, so the returned lake's ground
/// truth reports no homographs.
pub fn remove_homographs(lake: &GeneratedLake) -> GeneratedLake {
    let homographs: BTreeSet<String> = lake.homograph_set();
    let truth = lake.truth.clone();
    let mut tables = lake.catalog.tables().to_vec();
    for table in &mut tables {
        let table_name = table.name().to_owned();
        for column in table.columns_mut() {
            let class = match truth.class_of(&table_name, column.name()) {
                Some(c) => c.to_owned(),
                None => continue,
            };
            let present: Vec<String> = column
                .distinct_values()
                .filter(|v| homographs.contains(*v))
                .map(str::to_owned)
                .collect();
            for value in present {
                let replacement = format!("{value}__{}", class.to_uppercase());
                column.replace_value(&value, &replacement);
            }
        }
    }
    let catalog = lake::catalog::LakeCatalog::from_tables(tables)
        .expect("table names unchanged by homograph removal");
    GeneratedLake { catalog, truth }
}

/// Inject `config.count` homographs with `config.meanings` meanings each into
/// a (preferably homograph-free) lake.
///
/// Values to replace are drawn from attributes whose cardinality is at least
/// `config.min_attr_cardinality`, from `config.meanings` *distinct* semantic
/// classes per injected token, and each selected value is replaced everywhere
/// it occurs in the lake.
///
/// Returns `None` if the lake does not contain enough eligible classes.
pub fn inject_homographs(lake: &GeneratedLake, config: InjectionConfig) -> Option<InjectionResult> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let truth = lake.truth.clone();

    // class -> eligible (normalized) values, drawn from attributes of that
    // class with sufficient cardinality.
    let mut eligible: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for attr in lake.catalog.attribute_ids() {
        let aref = lake.catalog.attribute_ref(attr).expect("valid attr id");
        let class = match truth.class_of(&aref.table, &aref.column) {
            Some(c) => c.to_owned(),
            None => continue,
        };
        if lake.catalog.attribute_cardinality(attr) < config.min_attr_cardinality {
            continue;
        }
        let entry = eligible.entry(class).or_default();
        for &vid in lake.catalog.attribute_values(attr) {
            let value = lake.catalog.value(vid).expect("valid value id");
            if value.chars().count() >= MIN_VALUE_LEN && value.parse::<f64>().is_err() {
                entry.insert(value.to_owned());
            }
        }
    }
    // Only classes that actually have replaceable values count.
    let mut classes: Vec<String> = eligible
        .iter()
        .filter(|(_, vs)| !vs.is_empty())
        .map(|(c, _)| c.clone())
        .collect();
    if classes.len() < config.meanings || config.meanings < 2 {
        return None;
    }

    // Plan all replacements first (value -> injected token), making sure a
    // value is only used once.
    let mut used: BTreeSet<String> = BTreeSet::new();
    let mut plan: Vec<(String, String)> = Vec::new(); // (normalized value, token)
    let mut injected = Vec::with_capacity(config.count);
    for i in 0..config.count {
        let token = format!("InjectedHomograph{i}");
        classes.shuffle(&mut rng);
        let mut chosen = 0usize;
        for class in classes.iter() {
            if chosen == config.meanings {
                break;
            }
            let candidates: Vec<&String> = eligible[class]
                .iter()
                .filter(|v| !used.contains(*v))
                .collect();
            if let Some(&value) = candidates.choose(&mut rng) {
                used.insert(value.clone());
                plan.push((value.clone(), token.clone()));
                chosen += 1;
            }
        }
        if chosen < config.meanings {
            // Not enough distinct classes with fresh values left.
            return None;
        }
        injected.push(normalize(&token));
    }

    // Apply the plan to the tables.
    let replacement_of: BTreeMap<&str, &str> =
        plan.iter().map(|(v, t)| (v.as_str(), t.as_str())).collect();
    let mut tables = lake.catalog.tables().to_vec();
    for table in &mut tables {
        for column in table.columns_mut() {
            let present: Vec<(String, String)> = column
                .distinct_values()
                .filter_map(|v| {
                    replacement_of
                        .get(v)
                        .map(|&token| (v.to_owned(), token.to_owned()))
                })
                .collect();
            for (value, token) in present {
                column.replace_value(&value, &token);
            }
        }
    }
    let catalog = lake::catalog::LakeCatalog::from_tables(tables)
        .expect("table names unchanged by injection");
    Some(InjectionResult {
        lake: GeneratedLake { catalog, truth },
        injected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tus::{TusConfig, TusGenerator};

    fn clean_lake(seed: u64) -> GeneratedLake {
        let lake = TusGenerator::new(TusConfig::small(seed)).generate();
        remove_homographs(&lake)
    }

    #[test]
    fn removal_eliminates_all_homographs() {
        let lake = TusGenerator::new(TusConfig::small(11)).generate();
        assert!(
            !lake.homographs().is_empty(),
            "TUS-like lake starts with homographs"
        );
        let clean = remove_homographs(&lake);
        assert!(
            clean.homographs().is_empty(),
            "after removal no homographs remain: {:?}",
            clean.homographs().keys().take(5).collect::<Vec<_>>()
        );
        // The lake keeps its shape.
        assert_eq!(clean.catalog.table_count(), lake.catalog.table_count());
        assert_eq!(
            clean.catalog.attribute_count(),
            lake.catalog.attribute_count()
        );
    }

    #[test]
    fn injection_creates_exactly_the_requested_homographs() {
        let clean = clean_lake(12);
        let config = InjectionConfig {
            count: 10,
            meanings: 2,
            min_attr_cardinality: 0,
            seed: 3,
        };
        let result = inject_homographs(&clean, config).expect("enough classes");
        assert_eq!(result.injected.len(), 10);
        let homographs = result.lake.homographs();
        for token in &result.injected {
            assert!(
                homographs.contains_key(token),
                "{token} should be a ground-truth homograph after injection"
            );
            assert!(homographs[token] >= 2);
        }
        // The injected tokens are the *only* homographs in the clean lake.
        assert_eq!(homographs.len(), result.injected.len());
    }

    #[test]
    fn injection_respects_meanings_count() {
        let clean = clean_lake(13);
        let config = InjectionConfig {
            count: 5,
            meanings: 4,
            min_attr_cardinality: 0,
            seed: 5,
        };
        let result = inject_homographs(&clean, config).expect("enough classes");
        let homographs = result.lake.homographs();
        for token in &result.injected {
            assert_eq!(
                homographs.get(token),
                Some(&4),
                "{token} should span 4 classes"
            );
        }
    }

    #[test]
    fn injection_respects_cardinality_threshold() {
        let clean = clean_lake(14);
        let threshold = 50;
        let config = InjectionConfig {
            count: 8,
            meanings: 2,
            min_attr_cardinality: threshold,
            seed: 9,
        };
        let result = inject_homographs(&clean, config).expect("enough large attributes");
        // Every injected token must appear in at least two attributes whose
        // *post-injection* cardinality is still >= threshold (replacement
        // preserves distinct counts).
        for token in &result.injected {
            let vid = result.lake.catalog.value_id(token).expect("token present");
            let attrs = result.lake.catalog.value_attributes(vid);
            let large = attrs
                .iter()
                .filter(|&&a| result.lake.catalog.attribute_cardinality(a) >= threshold)
                .count();
            assert!(large >= 2, "{token} not drawn from large attributes");
        }
    }

    #[test]
    fn injection_fails_gracefully_when_impossible() {
        let clean = clean_lake(15);
        // Impossibly high cardinality threshold leaves no eligible classes.
        let config = InjectionConfig {
            count: 1,
            meanings: 2,
            min_attr_cardinality: usize::MAX,
            seed: 1,
        };
        assert!(inject_homographs(&clean, config).is_none());
        // meanings < 2 is not a homograph.
        let config = InjectionConfig {
            count: 1,
            meanings: 1,
            min_attr_cardinality: 0,
            seed: 1,
        };
        assert!(inject_homographs(&clean, config).is_none());
    }

    #[test]
    fn injection_is_deterministic() {
        let clean = clean_lake(16);
        let config = InjectionConfig {
            count: 6,
            meanings: 3,
            min_attr_cardinality: 10,
            seed: 21,
        };
        let a = inject_homographs(&clean, config).unwrap();
        let b = inject_homographs(&clean, config).unwrap();
        assert_eq!(a.injected, b.injected);
        assert_eq!(a.lake.homographs(), b.lake.homographs());
    }
}
