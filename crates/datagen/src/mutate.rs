//! Deterministic mutation streams for incremental-maintenance workloads.
//!
//! Real data lakes are not static snapshots: tables arrive, get deprecated,
//! come back under the same name, and have cells rewritten. The incremental
//! subsystem (`lake::MutableLake` + `domainnet::DomainNet::apply_delta`)
//! exists for exactly that traffic, and this module generates it: a seeded,
//! reproducible stream of [`lake::LakeDelta`]s to replay against a base
//! lake.
//!
//! Each delta holds `tables_per_delta` single-table operations, drawn from
//! three kinds with configurable weights:
//!
//! * **Add** — a fresh synthetic table whose columns sample the embedded
//!   vocabularies ([`crate::vocab`]), so new tables overlap the base lake's
//!   value space the way real arrivals do (and therefore create and destroy
//!   homographs as they come and go).
//! * **Remove** — a uniformly chosen live table (generated ones and, when
//!   [`MutationConfig::touch_base_tables`] is set, base tables too).
//!   Removed tables are remembered and may be re-added later, exercising
//!   the value-revival path.
//! * **Replace** — a random cell-rewrite of one distinct value in one
//!   column, the same primitive the TUS-I injection procedure uses.
//!
//! ```
//! use datagen::mutate::{MutationConfig, MutationStream};
//! use lake::delta::MutableLake;
//!
//! let base = datagen::sb::SbGenerator::new(7).generate();
//! let mut lake = MutableLake::from_catalog(&base.catalog);
//! let mut stream = MutationStream::new(MutationConfig {
//!     seed: 42,
//!     ..MutationConfig::default()
//! });
//! let delta = stream.next_delta(&lake);
//! assert!(!delta.is_empty());
//! lake.apply(&delta).unwrap();
//! ```

use lake::delta::{LakeDelta, MutableLake};
use lake::table::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::vocab;

/// Configuration for [`MutationStream`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MutationConfig {
    /// RNG seed; the stream is fully deterministic given the seed and the
    /// sequence of lake states it is asked to mutate.
    pub seed: u64,
    /// Single-table operations per generated delta (the *mutation
    /// granularity*; `1` = one table add/remove/rewrite per delta).
    pub tables_per_delta: usize,
    /// Rows per synthetic added table.
    pub rows_per_table: usize,
    /// Relative weight of table additions.
    pub add_weight: u32,
    /// Relative weight of table removals.
    pub remove_weight: u32,
    /// Relative weight of value rewrites.
    pub replace_weight: u32,
    /// Whether removals may target tables of the base lake (not only tables
    /// this stream added itself).
    pub touch_base_tables: bool,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            seed: 2021,
            tables_per_delta: 1,
            rows_per_table: 80,
            add_weight: 4,
            remove_weight: 3,
            replace_weight: 3,
            touch_base_tables: false,
        }
    }
}

/// A deterministic generator of [`LakeDelta`]s against an evolving lake.
#[derive(Debug, Clone)]
pub struct MutationStream {
    config: MutationConfig,
    rng: StdRng,
    /// Names of tables this stream has added and not yet removed.
    own_live: Vec<String>,
    /// Tables removed by this stream, kept for later re-addition.
    parked: Vec<Table>,
    next_table_id: usize,
}

/// Vocabularies a synthetic mutation table draws its columns from. A pair of
/// overlapping semantic pools per column keeps the added tables entangled
/// with the base lake's value space.
const COLUMN_POOLS: &[(&str, &[&str])] = &[
    ("animal", vocab::ANIMALS),
    ("brand", vocab::CAR_BRANDS),
    ("company", vocab::COMPANIES),
    ("city", vocab::CITIES),
    ("country", vocab::COUNTRIES),
    ("first_name", vocab::FIRST_NAMES),
    ("grocery", vocab::GROCERIES),
    ("movie", vocab::MOVIES),
    ("plant", vocab::PLANTS),
    ("color", vocab::COLORS),
];

impl MutationStream {
    /// Create a stream with the given configuration.
    pub fn new(config: MutationConfig) -> Self {
        MutationStream {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            own_live: Vec::new(),
            parked: Vec::new(),
            next_table_id: 0,
        }
    }

    /// Generate the next delta against the lake's current live state.
    ///
    /// The returned delta is guaranteed to be applicable: removals name live
    /// tables, additions use fresh (or parked, currently-unused) names, and
    /// rewrites target existing values. It contains
    /// [`MutationConfig::tables_per_delta`] operations.
    pub fn next_delta(&mut self, lake: &MutableLake) -> LakeDelta {
        let mut delta = LakeDelta::new();
        // Track the table set as ops accumulate so one delta stays
        // self-consistent (no removing a table twice, no add/remove races).
        let mut live: Vec<String> = lake
            .live_table_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        for _ in 0..self.config.tables_per_delta.max(1) {
            let total =
                self.config.add_weight + self.config.remove_weight + self.config.replace_weight;
            let mut pick = if total == 0 {
                0
            } else {
                self.rng.gen_range(0..total)
            };
            if pick < self.config.add_weight {
                delta = self.push_add(delta, &mut live);
                continue;
            }
            pick -= self.config.add_weight;
            if pick < self.config.remove_weight {
                if let Some(name) = self.pick_removal_target(&live) {
                    live.retain(|t| t != &name);
                    self.own_live.retain(|t| t != &name);
                    if let Some(table) = lake.table(&name) {
                        self.parked.push(table.clone());
                    }
                    delta = delta.remove_table(name);
                } else {
                    // Nothing removable: fall back to an add instead.
                    delta = self.push_add(delta, &mut live);
                }
                continue;
            }
            if let Some(op) = self.pick_replacement(lake, &live) {
                let (table, column, target, replacement) = op;
                delta = delta.replace_value(table, column, &target, replacement);
            } else {
                delta = self.push_add(delta, &mut live);
            }
        }
        delta
    }

    /// Append an add-table op to `delta`, keeping the live-name and
    /// own-table bookkeeping in sync.
    fn push_add(&mut self, delta: LakeDelta, live: &mut Vec<String>) -> LakeDelta {
        let table = self.next_added_table(live);
        live.push(table.name().to_owned());
        self.own_live.push(table.name().to_owned());
        delta.add_table(table)
    }

    /// A fresh synthetic table, or a parked (previously removed) one when
    /// its name is free again — exercising the value-revival path.
    fn next_added_table(&mut self, live: &[String]) -> Table {
        if !self.parked.is_empty() && self.rng.gen_bool(0.4) {
            if let Some(pos) = self
                .parked
                .iter()
                .position(|t| !live.iter().any(|l| l == t.name()))
            {
                return self.parked.swap_remove(pos);
            }
        }
        let id = self.next_table_id;
        self.next_table_id += 1;
        let rows = self.config.rows_per_table.max(2);
        let n_cols = self.rng.gen_range(2..=3usize);
        let mut pools: Vec<&(&str, &[&str])> = COLUMN_POOLS.iter().collect();
        pools.shuffle(&mut self.rng);
        let mut builder = TableBuilder::new(format!("mut_table_{id}"));
        for (col_name, pool) in pools.into_iter().take(n_cols) {
            // Arriving tables cover a modest slice of their domain's
            // vocabulary — real columns rarely replicate half a domain.
            let keep: f64 = self.rng.gen_range(0.1..0.4);
            let mut subset: Vec<&str> = pool
                .iter()
                .copied()
                .filter(|_| self.rng.gen_bool(keep))
                .collect();
            if subset.is_empty() {
                subset.push(pool[0]);
            }
            let cells: Vec<String> = (0..rows)
                .map(|_| (*subset.choose(&mut self.rng).expect("subset non-empty")).to_owned())
                .collect();
            builder = builder.column(*col_name, cells);
        }
        builder.build().expect("rectangular by construction")
    }

    fn pick_removal_target(&mut self, live: &[String]) -> Option<String> {
        let candidates: Vec<&String> = if self.config.touch_base_tables {
            live.iter().collect()
        } else {
            live.iter().filter(|t| self.own_live.contains(t)).collect()
        };
        candidates.choose(&mut self.rng).map(|s| (*s).clone())
    }

    fn pick_replacement(
        &mut self,
        lake: &MutableLake,
        live: &[String],
    ) -> Option<(String, String, String, String)> {
        // Try a few random live columns for one with a distinct value.
        for _ in 0..8 {
            let table_name = live.choose(&mut self.rng)?;
            let Some(table) = lake.table(table_name) else {
                continue;
            };
            let col_idx = self.rng.gen_range(0..table.column_count());
            let column = &table.columns()[col_idx];
            let distinct: Vec<&str> = column.distinct_values().collect();
            if distinct.is_empty() {
                continue;
            }
            let target = distinct[self.rng.gen_range(0..distinct.len())].to_owned();
            let replacement = format!("Mutated{}", self.rng.gen_range(0..1_000_000u32));
            return Some((
                table_name.clone(),
                column.name().to_owned(),
                target,
                replacement,
            ));
        }
        None
    }
}

/// Configuration for [`DriftStream`], the homograph-drift scenario.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftConfig {
    /// RNG seed; generations are fully deterministic given the seed.
    pub seed: u64,
    /// Base tables in the drop-folder.
    pub tables: usize,
    /// Rows per table.
    pub rows_per_table: usize,
    /// Number of drifting values (`Drifter0`, `Drifter1`, …). Each starts
    /// with one semantic home and invades a new semantic context roughly
    /// every `drifters` generations.
    pub drifters: usize,
    /// Ordinary value rewrites per generation, on top of the drift.
    pub churn_per_generation: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            seed: 2021,
            tables: 6,
            rows_per_table: 40,
            drifters: 3,
            churn_per_generation: 2,
        }
    }
}

/// What one emitted generation changed on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftGeneration {
    /// 0-based generation index.
    pub index: usize,
    /// File names written this generation (every live table is rewritten,
    /// so unchanged tables surface as content-identical rewrites — the
    /// ingest watcher's fingerprint-only update path).
    pub written: Vec<String>,
    /// File names deleted this generation (retired extra tables).
    pub removed: Vec<String>,
}

/// A deterministic emitter of numbered CSV file generations in which values
/// *drift*: a `Drifter<i>` token starts out meaning one thing (it lives in,
/// say, an `animal` column) and, generation by generation, invades columns
/// of other semantic domains (a `brand` column of another table) — becoming
/// a homograph not by construction of a static lake but by the passage of
/// mutation epochs. This is the time-evolving scenario the ROADMAP's drift
/// bullet asks for, shaped for the dn-ingest drop-folder: each
/// [`DriftStream::write_next_generation`] call rewrites the folder to the
/// next generation (adds, cell rewrites, occasional table arrivals and
/// retirements) exactly like an upstream exporter would.
///
/// Besides the drifters, every generation applies
/// [`DriftConfig::churn_per_generation`] ordinary value substitutions
/// (`Churn<n>` values), so most diffs are expressible as minimal
/// `ReplaceValue` deltas, while the periodic extra-table arrivals and
/// retirements exercise the add/remove paths.
#[derive(Debug, Clone)]
pub struct DriftStream {
    config: DriftConfig,
    rng: StdRng,
    tables: Vec<Table>,
    /// Generations produced so far (0 = none yet).
    produced: usize,
    /// Per drifter: how many foreign tables it has invaded.
    invasions: Vec<usize>,
    /// Live extra tables, oldest first.
    extras: Vec<String>,
    next_extra: usize,
    churned: usize,
}

impl DriftStream {
    /// Create a stream with the given configuration.
    pub fn new(config: DriftConfig) -> Self {
        DriftStream {
            rng: StdRng::seed_from_u64(config.seed),
            invasions: vec![0; config.drifters],
            config,
            tables: Vec::new(),
            produced: 0,
            extras: Vec::new(),
            next_extra: 0,
            churned: 0,
        }
    }

    /// The drifting tokens, in drifter order (raw form; normalize for
    /// lookups against the engine).
    pub fn drift_tokens(&self) -> Vec<String> {
        (0..self.config.drifters)
            .map(|d| format!("Drifter{d}"))
            .collect()
    }

    /// Generations produced so far.
    pub fn generations(&self) -> usize {
        self.produced
    }

    /// The current generation's live tables.
    pub fn live_tables(&self) -> &[Table] {
        &self.tables
    }

    /// Advance to the next generation and rewrite `dir` to match: every
    /// live table is written as `<name>.csv` and retired tables' files are
    /// deleted.
    ///
    /// # Errors
    /// Propagates I/O failures writing the folder.
    pub fn write_next_generation(
        &mut self,
        dir: impl AsRef<std::path::Path>,
    ) -> lake::Result<DriftGeneration> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| lake::LakeError::io_with_path(e, dir))?;
        let removed = self.advance();
        let mut written = Vec::with_capacity(self.tables.len());
        for table in &self.tables {
            let name = format!("{}.csv", table.name());
            let path = dir.join(&name);
            let file = std::fs::File::create(&path)
                .map_err(|e| lake::LakeError::io_with_path(e, &path))?;
            let mut writer = std::io::BufWriter::new(file);
            lake::loader::write_table(&mut writer, table)?;
            use std::io::Write as _;
            writer
                .flush()
                .map_err(|e| lake::LakeError::io_with_path(e, &path))?;
            written.push(name);
        }
        let mut removed_files = Vec::with_capacity(removed.len());
        for name in removed {
            let file_name = format!("{name}.csv");
            let path = dir.join(&file_name);
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(lake::LakeError::io_with_path(e, &path)),
            }
            removed_files.push(file_name);
        }
        Ok(DriftGeneration {
            index: self.produced - 1,
            written,
            removed: removed_files,
        })
    }

    /// Advance the in-memory lake one generation; returns retired table
    /// names.
    fn advance(&mut self) -> Vec<String> {
        if self.produced == 0 {
            self.build_base();
            self.produced = 1;
            return Vec::new();
        }
        let generation = self.produced;
        // One drifter invades a new semantic context per generation.
        if self.config.drifters > 0 && self.config.tables > 1 {
            let d = (generation - 1) % self.config.drifters;
            self.invade(d);
        }
        // Ordinary churn: full substitutions of one distinct value.
        for _ in 0..self.config.churn_per_generation {
            self.churn();
        }
        // Structural churn: arrivals every 3rd generation, retirements once
        // more than two extras are live.
        let mut removed = Vec::new();
        if generation % 3 == 0 {
            let table = self.build_extra();
            self.extras.push(table.name().to_owned());
            self.tables.push(table);
        }
        if self.extras.len() > 2 {
            let name = self.extras.remove(0);
            self.tables.retain(|t| t.name() != name);
            removed.push(name);
        }
        self.produced += 1;
        removed
    }

    fn build_base(&mut self) {
        let rows = self.config.rows_per_table.max(4);
        let n_pools = COLUMN_POOLS.len();
        for i in 0..self.config.tables.max(1) {
            let (name_a, pool_a) = COLUMN_POOLS[i % n_pools];
            let (name_b, pool_b) = COLUMN_POOLS[(i + 3) % n_pools];
            let mut cells_a: Vec<String> = (0..rows)
                .map(|_| pool_a[self.rng.gen_range(0..pool_a.len())].to_owned())
                .collect();
            let cells_b: Vec<String> = (0..rows)
                .map(|_| pool_b[self.rng.gen_range(0..pool_b.len())].to_owned())
                .collect();
            // Plant each drifter in its home column (its original meaning).
            for d in 0..self.config.drifters {
                if d % self.config.tables.max(1) == i {
                    let token = format!("Drifter{d}");
                    for k in 0..3usize {
                        let row = (d + 7 * k + 1) % rows;
                        cells_a[row] = token.clone();
                    }
                }
            }
            let table = TableBuilder::new(format!("drift_{i:02}"))
                .column(name_a, cells_a)
                .column(name_b, cells_b)
                .build()
                .expect("rectangular by construction");
            self.tables.push(table);
        }
    }

    fn build_extra(&mut self) -> Table {
        let rows = self.config.rows_per_table.max(4);
        let id = self.next_extra;
        self.next_extra += 1;
        let n_pools = COLUMN_POOLS.len();
        let a = self.rng.gen_range(0..n_pools);
        let b = (a + self.rng.gen_range(1..n_pools)) % n_pools;
        let (name_a, pool_a) = COLUMN_POOLS[a];
        let (name_b, pool_b) = COLUMN_POOLS[b];
        let cells_a: Vec<String> = (0..rows)
            .map(|_| pool_a[self.rng.gen_range(0..pool_a.len())].to_owned())
            .collect();
        let cells_b: Vec<String> = (0..rows)
            .map(|_| pool_b[self.rng.gen_range(0..pool_b.len())].to_owned())
            .collect();
        TableBuilder::new(format!("drift_extra_{id}"))
            .column(name_a, cells_a)
            .column(name_b, cells_b)
            .build()
            .expect("rectangular by construction")
    }

    /// Drifter `d` replaces one ordinary value in the *second* column of a
    /// table other than its home — the token now also means whatever that
    /// column's domain means.
    fn invade(&mut self, d: usize) {
        let tables = self.config.tables;
        let home = d % tables;
        let mut idx = (home + 1 + self.invasions[d]) % tables;
        if idx == home {
            idx = (idx + 1) % tables;
        }
        let token = format!("Drifter{d}");
        let table = &mut self.tables[idx];
        let column = &mut table.columns_mut()[1];
        let victim = column
            .distinct_values()
            .find(|v| !v.starts_with("DRIFTER") && !v.starts_with("CHURN"))
            .map(str::to_owned);
        if let Some(victim) = victim {
            column.replace_value(&victim, &token);
            self.invasions[d] += 1;
        }
    }

    /// Replace every cell of one randomly chosen distinct value with a
    /// fresh `Churn<n>` value — a consistent substitution, expressible by
    /// the ingest differ as a single `ReplaceValue` op.
    fn churn(&mut self) {
        for _ in 0..8 {
            let t = self.rng.gen_range(0..self.tables.len());
            let table = &mut self.tables[t];
            let c = self.rng.gen_range(0..table.column_count());
            let column = &mut table.columns_mut()[c];
            let distinct: Vec<String> = column
                .distinct_values()
                .filter(|v| !v.starts_with("DRIFTER") && !v.starts_with("CHURN"))
                .map(str::to_owned)
                .collect();
            if distinct.is_empty() {
                continue;
            }
            let victim = &distinct[self.rng.gen_range(0..distinct.len())];
            let replacement = format!("Churn{}", self.churned);
            self.churned += 1;
            column.replace_value(victim, &replacement);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_base() -> MutableLake {
        let mut lake = MutableLake::new();
        let t1 = TableBuilder::new("base_a")
            .column("animal", ["Jaguar", "Panda", "Lemur", "Puma"])
            .column("city", ["Memphis", "Atlanta", "Sydney", "Austin"])
            .build()
            .unwrap();
        let t2 = TableBuilder::new("base_b")
            .column("brand", ["Jaguar", "Fiat", "Toyota"])
            .column("country", ["Jamaica", "Cuba", "Italy"])
            .build()
            .unwrap();
        lake.apply(&LakeDelta::new().add_table(t1).add_table(t2))
            .unwrap();
        lake
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let render = |seed: u64| -> Vec<String> {
            let mut lake = small_base();
            let mut stream = MutationStream::new(MutationConfig {
                seed,
                ..MutationConfig::default()
            });
            let mut log = Vec::new();
            for _ in 0..10 {
                let delta = stream.next_delta(&lake);
                log.push(format!("{delta:?}"));
                lake.apply(&delta).unwrap();
            }
            log
        };
        assert_eq!(render(5), render(5));
        assert_ne!(render(5), render(6));
    }

    #[test]
    fn long_streams_always_apply_cleanly() {
        let mut lake = small_base();
        let mut stream = MutationStream::new(MutationConfig {
            seed: 11,
            tables_per_delta: 2,
            rows_per_table: 30,
            ..MutationConfig::default()
        });
        for step in 0..40 {
            let delta = stream.next_delta(&lake);
            assert_eq!(delta.len(), 2);
            lake.apply(&delta)
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
        // Base tables were never touched.
        assert!(lake.table("base_a").is_some());
        assert!(lake.table("base_b").is_some());
    }

    #[test]
    fn touch_base_tables_can_remove_the_base() {
        let mut lake = small_base();
        let mut stream = MutationStream::new(MutationConfig {
            seed: 3,
            add_weight: 0,
            remove_weight: 1,
            replace_weight: 0,
            touch_base_tables: true,
            ..MutationConfig::default()
        });
        let delta = stream.next_delta(&lake);
        lake.apply(&delta).unwrap();
        assert_eq!(lake.live_table_count(), 1);
    }

    #[test]
    fn added_tables_overlap_the_vocabularies() {
        let mut lake = small_base();
        let mut stream = MutationStream::new(MutationConfig {
            seed: 9,
            add_weight: 1,
            remove_weight: 0,
            replace_weight: 0,
            rows_per_table: 50,
            ..MutationConfig::default()
        });
        for _ in 0..5 {
            let delta = stream.next_delta(&lake);
            lake.apply(&delta).unwrap();
        }
        assert_eq!(lake.live_table_count(), 7);
    }

    #[test]
    fn parked_tables_can_return() {
        let mut lake = small_base();
        let mut stream = MutationStream::new(MutationConfig {
            seed: 17,
            tables_per_delta: 1,
            rows_per_table: 20,
            ..MutationConfig::default()
        });
        let mut seen_readd = false;
        let mut names_added = std::collections::HashSet::new();
        for _ in 0..60 {
            let delta = stream.next_delta(&lake);
            for op in delta.ops() {
                if let lake::delta::LakeOp::AddTable(t) = op {
                    if !names_added.insert(t.name().to_owned()) {
                        seen_readd = true;
                    }
                }
            }
            lake.apply(&delta).unwrap();
        }
        assert!(
            seen_readd,
            "60 mutations should re-add at least one parked table"
        );
    }

    fn drift_config() -> DriftConfig {
        DriftConfig {
            seed: 99,
            tables: 4,
            rows_per_table: 24,
            drifters: 2,
            churn_per_generation: 2,
        }
    }

    #[test]
    fn drift_stream_is_deterministic_per_seed() {
        let render = |config: DriftConfig, generations: usize| {
            let mut stream = DriftStream::new(config);
            let mut out = String::new();
            for _ in 0..generations {
                let removed = stream.advance();
                for table in stream.live_tables() {
                    out.push_str(&format!("{table:?}\n"));
                }
                out.push_str(&format!("removed: {removed:?}\n"));
            }
            out
        };
        assert_eq!(render(drift_config(), 8), render(drift_config(), 8));
        assert_ne!(
            render(drift_config(), 8),
            render(
                DriftConfig {
                    seed: 100,
                    ..drift_config()
                },
                8
            )
        );
    }

    #[test]
    fn drifters_become_homographs_across_generations() {
        let mut stream = DriftStream::new(drift_config());
        stream.advance();
        // Generation 0: each drifter lives in exactly one column semantic.
        let homes: Vec<usize> = stream
            .drift_tokens()
            .iter()
            .map(|token| {
                let normalized = lake::normalize(token);
                stream
                    .live_tables()
                    .iter()
                    .flat_map(|t| t.columns())
                    .filter(|c| c.contains_normalized(&normalized))
                    .count()
            })
            .collect();
        assert!(homes.iter().all(|&n| n == 1), "homes: {homes:?}");
        // After enough generations every drifter occupies >= 2 columns of
        // different semantic names — a homograph by meaning change.
        for _ in 0..6 {
            stream.advance();
        }
        for token in stream.drift_tokens() {
            let normalized = lake::normalize(&token);
            let hosts: std::collections::HashSet<&str> = stream
                .live_tables()
                .iter()
                .flat_map(|t| t.columns())
                .filter(|c| c.contains_normalized(&normalized))
                .map(|c| c.name())
                .collect();
            assert!(
                hosts.len() >= 2,
                "{token} should span >=2 column semantics, got {hosts:?}"
            );
        }
    }

    #[test]
    fn drift_generations_write_and_retire_files() {
        let dir = std::env::temp_dir().join(format!("dn_drift_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut stream = DriftStream::new(drift_config());
        let mut saw_removal = false;
        for i in 0..10 {
            let generation = stream.write_next_generation(&dir).unwrap();
            assert_eq!(generation.index, i);
            saw_removal |= !generation.removed.is_empty();
            // The folder holds exactly the live tables.
            let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            on_disk.sort();
            let mut expected: Vec<String> = stream
                .live_tables()
                .iter()
                .map(|t| format!("{}.csv", t.name()))
                .collect();
            expected.sort();
            assert_eq!(on_disk, expected);
            // Every file round-trips through the strict loader.
            for name in &expected {
                let table = lake::loader::load_table(
                    &dir.join(name),
                    lake::loader::LoadOptions {
                        strict: true,
                        ..lake::loader::LoadOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(table.row_count(), 24);
            }
        }
        assert!(saw_removal, "10 generations should retire an extra table");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drift_churn_is_a_consistent_substitution() {
        // Consecutive generations of the same table differ only by full
        // value substitutions (plus drift), never partial rewrites: every
        // churned-away value disappears entirely.
        let mut stream = DriftStream::new(drift_config());
        stream.advance();
        let before: Vec<Table> = stream.live_tables().to_vec();
        stream.advance();
        for old in &before {
            let Some(new) = stream.live_tables().iter().find(|t| t.name() == old.name()) else {
                continue;
            };
            for (oc, nc) in old.columns().iter().zip(new.columns()) {
                for value in oc.distinct_values() {
                    let survives = nc.contains_normalized(value);
                    if !survives {
                        // Vanished entirely: no cell may still hold it.
                        assert_eq!(
                            nc.cells()
                                .iter()
                                .filter(|c| lake::normalize(c) == value)
                                .count(),
                            0
                        );
                    }
                }
            }
        }
    }
}
