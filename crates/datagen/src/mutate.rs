//! Deterministic mutation streams for incremental-maintenance workloads.
//!
//! Real data lakes are not static snapshots: tables arrive, get deprecated,
//! come back under the same name, and have cells rewritten. The incremental
//! subsystem (`lake::MutableLake` + `domainnet::DomainNet::apply_delta`)
//! exists for exactly that traffic, and this module generates it: a seeded,
//! reproducible stream of [`lake::LakeDelta`]s to replay against a base
//! lake.
//!
//! Each delta holds `tables_per_delta` single-table operations, drawn from
//! three kinds with configurable weights:
//!
//! * **Add** — a fresh synthetic table whose columns sample the embedded
//!   vocabularies ([`crate::vocab`]), so new tables overlap the base lake's
//!   value space the way real arrivals do (and therefore create and destroy
//!   homographs as they come and go).
//! * **Remove** — a uniformly chosen live table (generated ones and, when
//!   [`MutationConfig::touch_base_tables`] is set, base tables too).
//!   Removed tables are remembered and may be re-added later, exercising
//!   the value-revival path.
//! * **Replace** — a random cell-rewrite of one distinct value in one
//!   column, the same primitive the TUS-I injection procedure uses.
//!
//! ```
//! use datagen::mutate::{MutationConfig, MutationStream};
//! use lake::delta::MutableLake;
//!
//! let base = datagen::sb::SbGenerator::new(7).generate();
//! let mut lake = MutableLake::from_catalog(&base.catalog);
//! let mut stream = MutationStream::new(MutationConfig {
//!     seed: 42,
//!     ..MutationConfig::default()
//! });
//! let delta = stream.next_delta(&lake);
//! assert!(!delta.is_empty());
//! lake.apply(&delta).unwrap();
//! ```

use lake::delta::{LakeDelta, MutableLake};
use lake::table::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::vocab;

/// Configuration for [`MutationStream`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MutationConfig {
    /// RNG seed; the stream is fully deterministic given the seed and the
    /// sequence of lake states it is asked to mutate.
    pub seed: u64,
    /// Single-table operations per generated delta (the *mutation
    /// granularity*; `1` = one table add/remove/rewrite per delta).
    pub tables_per_delta: usize,
    /// Rows per synthetic added table.
    pub rows_per_table: usize,
    /// Relative weight of table additions.
    pub add_weight: u32,
    /// Relative weight of table removals.
    pub remove_weight: u32,
    /// Relative weight of value rewrites.
    pub replace_weight: u32,
    /// Whether removals may target tables of the base lake (not only tables
    /// this stream added itself).
    pub touch_base_tables: bool,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            seed: 2021,
            tables_per_delta: 1,
            rows_per_table: 80,
            add_weight: 4,
            remove_weight: 3,
            replace_weight: 3,
            touch_base_tables: false,
        }
    }
}

/// A deterministic generator of [`LakeDelta`]s against an evolving lake.
#[derive(Debug, Clone)]
pub struct MutationStream {
    config: MutationConfig,
    rng: StdRng,
    /// Names of tables this stream has added and not yet removed.
    own_live: Vec<String>,
    /// Tables removed by this stream, kept for later re-addition.
    parked: Vec<Table>,
    next_table_id: usize,
}

/// Vocabularies a synthetic mutation table draws its columns from. A pair of
/// overlapping semantic pools per column keeps the added tables entangled
/// with the base lake's value space.
const COLUMN_POOLS: &[(&str, &[&str])] = &[
    ("animal", vocab::ANIMALS),
    ("brand", vocab::CAR_BRANDS),
    ("company", vocab::COMPANIES),
    ("city", vocab::CITIES),
    ("country", vocab::COUNTRIES),
    ("first_name", vocab::FIRST_NAMES),
    ("grocery", vocab::GROCERIES),
    ("movie", vocab::MOVIES),
    ("plant", vocab::PLANTS),
    ("color", vocab::COLORS),
];

impl MutationStream {
    /// Create a stream with the given configuration.
    pub fn new(config: MutationConfig) -> Self {
        MutationStream {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            own_live: Vec::new(),
            parked: Vec::new(),
            next_table_id: 0,
        }
    }

    /// Generate the next delta against the lake's current live state.
    ///
    /// The returned delta is guaranteed to be applicable: removals name live
    /// tables, additions use fresh (or parked, currently-unused) names, and
    /// rewrites target existing values. It contains
    /// [`MutationConfig::tables_per_delta`] operations.
    pub fn next_delta(&mut self, lake: &MutableLake) -> LakeDelta {
        let mut delta = LakeDelta::new();
        // Track the table set as ops accumulate so one delta stays
        // self-consistent (no removing a table twice, no add/remove races).
        let mut live: Vec<String> = lake
            .live_table_names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        for _ in 0..self.config.tables_per_delta.max(1) {
            let total =
                self.config.add_weight + self.config.remove_weight + self.config.replace_weight;
            let mut pick = if total == 0 {
                0
            } else {
                self.rng.gen_range(0..total)
            };
            if pick < self.config.add_weight {
                delta = self.push_add(delta, &mut live);
                continue;
            }
            pick -= self.config.add_weight;
            if pick < self.config.remove_weight {
                if let Some(name) = self.pick_removal_target(&live) {
                    live.retain(|t| t != &name);
                    self.own_live.retain(|t| t != &name);
                    if let Some(table) = lake.table(&name) {
                        self.parked.push(table.clone());
                    }
                    delta = delta.remove_table(name);
                } else {
                    // Nothing removable: fall back to an add instead.
                    delta = self.push_add(delta, &mut live);
                }
                continue;
            }
            if let Some(op) = self.pick_replacement(lake, &live) {
                let (table, column, target, replacement) = op;
                delta = delta.replace_value(table, column, &target, replacement);
            } else {
                delta = self.push_add(delta, &mut live);
            }
        }
        delta
    }

    /// Append an add-table op to `delta`, keeping the live-name and
    /// own-table bookkeeping in sync.
    fn push_add(&mut self, delta: LakeDelta, live: &mut Vec<String>) -> LakeDelta {
        let table = self.next_added_table(live);
        live.push(table.name().to_owned());
        self.own_live.push(table.name().to_owned());
        delta.add_table(table)
    }

    /// A fresh synthetic table, or a parked (previously removed) one when
    /// its name is free again — exercising the value-revival path.
    fn next_added_table(&mut self, live: &[String]) -> Table {
        if !self.parked.is_empty() && self.rng.gen_bool(0.4) {
            if let Some(pos) = self
                .parked
                .iter()
                .position(|t| !live.iter().any(|l| l == t.name()))
            {
                return self.parked.swap_remove(pos);
            }
        }
        let id = self.next_table_id;
        self.next_table_id += 1;
        let rows = self.config.rows_per_table.max(2);
        let n_cols = self.rng.gen_range(2..=3usize);
        let mut pools: Vec<&(&str, &[&str])> = COLUMN_POOLS.iter().collect();
        pools.shuffle(&mut self.rng);
        let mut builder = TableBuilder::new(format!("mut_table_{id}"));
        for (col_name, pool) in pools.into_iter().take(n_cols) {
            // Arriving tables cover a modest slice of their domain's
            // vocabulary — real columns rarely replicate half a domain.
            let keep: f64 = self.rng.gen_range(0.1..0.4);
            let mut subset: Vec<&str> = pool
                .iter()
                .copied()
                .filter(|_| self.rng.gen_bool(keep))
                .collect();
            if subset.is_empty() {
                subset.push(pool[0]);
            }
            let cells: Vec<String> = (0..rows)
                .map(|_| (*subset.choose(&mut self.rng).expect("subset non-empty")).to_owned())
                .collect();
            builder = builder.column(*col_name, cells);
        }
        builder.build().expect("rectangular by construction")
    }

    fn pick_removal_target(&mut self, live: &[String]) -> Option<String> {
        let candidates: Vec<&String> = if self.config.touch_base_tables {
            live.iter().collect()
        } else {
            live.iter().filter(|t| self.own_live.contains(t)).collect()
        };
        candidates.choose(&mut self.rng).map(|s| (*s).clone())
    }

    fn pick_replacement(
        &mut self,
        lake: &MutableLake,
        live: &[String],
    ) -> Option<(String, String, String, String)> {
        // Try a few random live columns for one with a distinct value.
        for _ in 0..8 {
            let table_name = live.choose(&mut self.rng)?;
            let Some(table) = lake.table(table_name) else {
                continue;
            };
            let col_idx = self.rng.gen_range(0..table.column_count());
            let column = &table.columns()[col_idx];
            let distinct: Vec<&str> = column.distinct_values().collect();
            if distinct.is_empty() {
                continue;
            }
            let target = distinct[self.rng.gen_range(0..distinct.len())].to_owned();
            let replacement = format!("Mutated{}", self.rng.gen_range(0..1_000_000u32));
            return Some((
                table_name.clone(),
                column.name().to_owned(),
                target,
                replacement,
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_base() -> MutableLake {
        let mut lake = MutableLake::new();
        let t1 = TableBuilder::new("base_a")
            .column("animal", ["Jaguar", "Panda", "Lemur", "Puma"])
            .column("city", ["Memphis", "Atlanta", "Sydney", "Austin"])
            .build()
            .unwrap();
        let t2 = TableBuilder::new("base_b")
            .column("brand", ["Jaguar", "Fiat", "Toyota"])
            .column("country", ["Jamaica", "Cuba", "Italy"])
            .build()
            .unwrap();
        lake.apply(&LakeDelta::new().add_table(t1).add_table(t2))
            .unwrap();
        lake
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let render = |seed: u64| -> Vec<String> {
            let mut lake = small_base();
            let mut stream = MutationStream::new(MutationConfig {
                seed,
                ..MutationConfig::default()
            });
            let mut log = Vec::new();
            for _ in 0..10 {
                let delta = stream.next_delta(&lake);
                log.push(format!("{delta:?}"));
                lake.apply(&delta).unwrap();
            }
            log
        };
        assert_eq!(render(5), render(5));
        assert_ne!(render(5), render(6));
    }

    #[test]
    fn long_streams_always_apply_cleanly() {
        let mut lake = small_base();
        let mut stream = MutationStream::new(MutationConfig {
            seed: 11,
            tables_per_delta: 2,
            rows_per_table: 30,
            ..MutationConfig::default()
        });
        for step in 0..40 {
            let delta = stream.next_delta(&lake);
            assert_eq!(delta.len(), 2);
            lake.apply(&delta)
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
        // Base tables were never touched.
        assert!(lake.table("base_a").is_some());
        assert!(lake.table("base_b").is_some());
    }

    #[test]
    fn touch_base_tables_can_remove_the_base() {
        let mut lake = small_base();
        let mut stream = MutationStream::new(MutationConfig {
            seed: 3,
            add_weight: 0,
            remove_weight: 1,
            replace_weight: 0,
            touch_base_tables: true,
            ..MutationConfig::default()
        });
        let delta = stream.next_delta(&lake);
        lake.apply(&delta).unwrap();
        assert_eq!(lake.live_table_count(), 1);
    }

    #[test]
    fn added_tables_overlap_the_vocabularies() {
        let mut lake = small_base();
        let mut stream = MutationStream::new(MutationConfig {
            seed: 9,
            add_weight: 1,
            remove_weight: 0,
            replace_weight: 0,
            rows_per_table: 50,
            ..MutationConfig::default()
        });
        for _ in 0..5 {
            let delta = stream.next_delta(&lake);
            lake.apply(&delta).unwrap();
        }
        assert_eq!(lake.live_table_count(), 7);
    }

    #[test]
    fn parked_tables_can_return() {
        let mut lake = small_base();
        let mut stream = MutationStream::new(MutationConfig {
            seed: 17,
            tables_per_delta: 1,
            rows_per_table: 20,
            ..MutationConfig::default()
        });
        let mut seen_readd = false;
        let mut names_added = std::collections::HashSet::new();
        for _ in 0..60 {
            let delta = stream.next_delta(&lake);
            for op in delta.ops() {
                if let lake::delta::LakeOp::AddTable(t) = op {
                    if !names_added.insert(t.name().to_owned()) {
                        seen_readd = true;
                    }
                }
            }
            lake.apply(&delta).unwrap();
        }
        assert!(
            seen_readd,
            "60 mutations should re-add at least one parked table"
        );
    }
}
