//! A TUS-like open-data lake generator.
//!
//! The paper's large-scale evaluation uses the Table Union Search (TUS)
//! benchmark: 1 327 real tables sliced out of UK/Canadian open-data sources,
//! with unionability ground truth per column, 190 399 distinct values, and
//! 26 035 homographs derived via Definition 2. The raw benchmark is not
//! redistributable here, so this module generates a synthetic lake that
//! reproduces the structural properties DomainNet actually consumes:
//!
//! * a universe of semantic **domains** with heavy-tailed vocabulary sizes
//!   (attribute cardinalities in TUS range from 3 to ~23 000),
//! * wide **source tables** that are sliced vertically and horizontally into
//!   many smaller tables, so that columns originating from the same source
//!   column are unionable but may share only part of their values,
//! * **shared tokens** (null markers, codes, small numbers) that occur in
//!   several domains and therefore become natural homographs, mirroring the
//!   paper's observations about `"."`, `"50"`, `"Music Faculty"`, …,
//! * **numeric columns** whose overlapping ranges create numeric homographs.
//!
//! Because every attribute carries its semantic class in the
//! [`crate::truth::LakeTruth`], ground-truth homographs follow from exactly
//! the same rule the paper uses (Definition 2).

use lake::catalog::LakeCatalog;
use lake::column::Column;
use lake::table::Table;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::truth::{GeneratedLake, LakeTruth};
use crate::vocab;

/// Configuration for the TUS-like generator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TusConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of semantic domains (the real TUS ground truth has ~70).
    pub domain_count: usize,
    /// Wide source tables generated per domain before slicing.
    pub source_tables_per_domain: usize,
    /// Vertical slices cut from each source table.
    pub vertical_slices: usize,
    /// Horizontal slices cut from each vertical slice.
    pub horizontal_slices: usize,
    /// Vocabulary size of the largest domain.
    pub max_domain_vocab: usize,
    /// Vocabulary size of the smallest domain.
    pub min_domain_vocab: usize,
    /// Zipf-style exponent controlling how quickly domain vocabularies shrink.
    pub skew: f64,
    /// Number of tokens in the cross-domain shared pool.
    pub shared_pool_size: usize,
    /// Probability that a vocabulary slot is filled from the shared pool.
    pub collision_rate: f64,
    /// Numeric columns attached to each source table.
    pub numeric_columns_per_source: usize,
    /// Rows per source table (before horizontal slicing).
    pub rows_per_source: usize,
}

impl Default for TusConfig {
    fn default() -> Self {
        TusConfig {
            seed: 42,
            domain_count: 48,
            source_tables_per_domain: 2,
            vertical_slices: 2,
            horizontal_slices: 2,
            max_domain_vocab: 2500,
            min_domain_vocab: 8,
            skew: 1.0,
            shared_pool_size: 400,
            collision_rate: 0.04,
            numeric_columns_per_source: 2,
            rows_per_source: 900,
        }
    }
}

impl TusConfig {
    /// A small configuration for unit tests (runs in well under a second).
    pub fn small(seed: u64) -> Self {
        TusConfig {
            seed,
            domain_count: 12,
            source_tables_per_domain: 2,
            vertical_slices: 2,
            horizontal_slices: 2,
            max_domain_vocab: 300,
            min_domain_vocab: 6,
            skew: 1.0,
            shared_pool_size: 80,
            collision_rate: 0.05,
            numeric_columns_per_source: 1,
            rows_per_source: 200,
        }
    }

    /// A larger configuration approximating the TUS benchmark's scale
    /// characteristics (hundreds of thousands of incidences) while still
    /// running in minutes on a laptop.
    pub fn paper_scale(seed: u64) -> Self {
        TusConfig {
            seed,
            domain_count: 70,
            source_tables_per_domain: 3,
            vertical_slices: 2,
            horizontal_slices: 3,
            max_domain_vocab: 8000,
            min_domain_vocab: 6,
            skew: 1.05,
            shared_pool_size: 800,
            collision_rate: 0.04,
            numeric_columns_per_source: 2,
            rows_per_source: 1500,
        }
    }
}

/// Generator for the TUS-like benchmark.
#[derive(Debug, Clone)]
pub struct TusGenerator {
    config: TusConfig,
}

impl TusGenerator {
    /// Create a generator from a configuration.
    pub fn new(config: TusConfig) -> Self {
        TusGenerator { config }
    }

    /// Generate the lake and its ground truth.
    pub fn generate(&self) -> GeneratedLake {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let shared_pool = build_shared_pool(cfg.shared_pool_size);
        let domains = build_domain_vocabularies(cfg, &shared_pool, &mut rng);

        let mut truth = LakeTruth::new();
        let mut tables: Vec<Table> = Vec::new();

        for (domain_id, domain_vocab) in domains.iter().enumerate() {
            for source_idx in 0..cfg.source_tables_per_domain {
                let source = SourceTable::generate(
                    cfg,
                    domain_id,
                    source_idx,
                    &domains,
                    domain_vocab,
                    &mut rng,
                );
                source.slice_into(cfg, &mut tables, &mut truth, &mut rng);
            }
        }

        let catalog = LakeCatalog::from_tables(tables)
            .expect("generated table names are unique by construction");
        GeneratedLake { catalog, truth }
    }
}

/// Tokens deliberately shared across domains: null markers, short codes, and
/// small numbers, echoing the homographs the paper finds in real open data.
fn build_shared_pool(size: usize) -> Vec<String> {
    let mut pool: Vec<String> = Vec::with_capacity(size);
    for marker in vocab::NULL_MARKERS {
        pool.push((*marker).to_string());
    }
    for dept in vocab::DEPARTMENTS.iter().take(12) {
        pool.push((*dept).to_string());
    }
    let mut n = 0usize;
    while pool.len() < size {
        pool.push(match n % 3 {
            0 => (n / 3 + 1).to_string(),
            1 => format!("CODE-{:03}", n / 3),
            _ => format!("Region {}", n / 3),
        });
        n += 1;
    }
    pool.truncate(size);
    pool
}

/// Build one vocabulary per domain with Zipf-like sizes; a fraction of each
/// vocabulary is drawn from the shared pool (creating cross-domain values).
fn build_domain_vocabularies(
    cfg: &TusConfig,
    shared_pool: &[String],
    rng: &mut StdRng,
) -> Vec<Vec<String>> {
    let mut domains = Vec::with_capacity(cfg.domain_count);
    for d in 0..cfg.domain_count {
        let rank = (d + 1) as f64;
        let size = ((cfg.max_domain_vocab as f64 / rank.powf(cfg.skew)) as usize)
            .max(cfg.min_domain_vocab);
        let mut vocabulary = Vec::with_capacity(size);
        for j in 0..size {
            if rng.gen_bool(cfg.collision_rate) && !shared_pool.is_empty() {
                vocabulary.push(
                    shared_pool
                        .choose(rng)
                        .expect("shared pool is non-empty")
                        .clone(),
                );
            } else {
                vocabulary.push(format!("dom{d:02}_value_{j:05}"));
            }
        }
        vocabulary.sort();
        vocabulary.dedup();
        domains.push(vocabulary);
    }
    domains
}

/// A wide source table before slicing.
struct SourceTable {
    name: String,
    /// (column name, semantic class, cells)
    columns: Vec<(String, String, Vec<String>)>,
}

impl SourceTable {
    fn generate(
        cfg: &TusConfig,
        domain_id: usize,
        source_idx: usize,
        domains: &[Vec<String>],
        domain_vocab: &[String],
        rng: &mut StdRng,
    ) -> SourceTable {
        let rows = cfg.rows_per_source.max(4);
        let name = format!("src_d{domain_id:02}_{source_idx}");
        let mut columns = Vec::new();

        // Key column over the domain's own vocabulary.
        columns.push((
            "key".to_string(),
            format!("dom{domain_id:02}"),
            draw(rng, domain_vocab, rows),
        ));

        // One or two columns borrowed from other domains, emulating the fact
        // that open-data tables mix entity types (a transport table carries
        // both stop names and street names).
        let foreign_count = 1 + (source_idx % 2);
        for f in 0..foreign_count {
            let other = (domain_id + 3 + 5 * f + source_idx) % domains.len();
            if other == domain_id {
                continue;
            }
            columns.push((
                format!("ref_{f}"),
                format!("dom{other:02}"),
                draw(rng, &domains[other], rows),
            ));
        }

        // Numeric columns. Each source numeric column is its own unionability
        // class, so identical numbers across sources are homographs — exactly
        // like "50" / "125" / "2" in the real TUS data.
        for c in 0..cfg.numeric_columns_per_source {
            let magnitude = 10u64.pow(1 + ((domain_id + c + source_idx) % 3) as u32);
            let cells: Vec<String> = (0..rows)
                .map(|_| rng.gen_range(0..magnitude * 5).to_string())
                .collect();
            columns.push((
                format!("metric_{c}"),
                format!("num_src_d{domain_id:02}_{source_idx}_{c}"),
                cells,
            ));
        }

        SourceTable { name, columns }
    }

    /// Slice the source table vertically and horizontally into lake tables,
    /// recording the class of every emitted attribute.
    fn slice_into(
        &self,
        cfg: &TusConfig,
        tables: &mut Vec<Table>,
        truth: &mut LakeTruth,
        rng: &mut StdRng,
    ) {
        let rows = self.columns[0].2.len();
        let v_slices = cfg.vertical_slices.max(1);
        let h_slices = cfg.horizontal_slices.max(1);
        let rows_per_slice = rows.div_ceil(h_slices);

        for v in 0..v_slices {
            // Choose a random subset of the columns (at least one); the key
            // column is always kept so every slice stays anchored in its
            // domain.
            let mut chosen: Vec<usize> = (1..self.columns.len())
                .filter(|_| rng.gen_bool(0.7))
                .collect();
            chosen.insert(0, 0);

            for h in 0..h_slices {
                let start = h * rows_per_slice;
                if start >= rows {
                    break;
                }
                let end = (start + rows_per_slice).min(rows);
                let table_name = format!("{}_v{v}_h{h}", self.name);
                let mut columns = Vec::with_capacity(chosen.len());
                for &ci in &chosen {
                    let (col_name, class, cells) = &self.columns[ci];
                    columns.push(Column::new(col_name.clone(), cells[start..end].to_vec()));
                    truth.set_class(&table_name, col_name.clone(), class.clone());
                }
                tables.push(Table::from_columns(table_name, columns));
            }
        }
    }
}

fn draw(rng: &mut StdRng, vocabulary: &[String], rows: usize) -> Vec<String> {
    let mut cells = Vec::with_capacity(rows);
    // Include a prefix of the vocabulary so small domains are fully covered,
    // then fill randomly (values may repeat, as in real columns).
    for value in vocabulary.iter().take(rows) {
        cells.push(value.clone());
    }
    while cells.len() < rows {
        cells.push(
            vocabulary
                .choose(rng)
                .expect("domain vocabularies are non-empty")
                .clone(),
        );
    }
    cells.shuffle(rng);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_a_lake_with_sliced_tables_and_classes() {
        let lake = TusGenerator::new(TusConfig::small(1)).generate();
        let cfg = TusConfig::small(1);
        let max_tables = cfg.domain_count
            * cfg.source_tables_per_domain
            * cfg.vertical_slices
            * cfg.horizontal_slices;
        assert!(lake.catalog.table_count() > cfg.domain_count);
        assert!(lake.catalog.table_count() <= max_tables);
        // Every attribute is labeled with a class.
        assert_eq!(
            lake.truth.attribute_classes.len(),
            lake.catalog.attribute_count()
        );
    }

    #[test]
    fn produces_natural_homographs_from_shared_tokens_and_numbers() {
        let lake = TusGenerator::new(TusConfig::small(2)).generate();
        let homographs = lake.homographs();
        assert!(
            homographs.len() > 20,
            "expected a healthy number of natural homographs, got {}",
            homographs.len()
        );
        // Homograph fraction of candidates should be substantial but not
        // overwhelming (TUS: 26 035 of ~190 399 values; ours varies with the
        // collision rate).
        let candidates = lake.candidate_count();
        assert!(candidates > homographs.len());
        // At least one of the classic shared tokens spans domains.
        let has_shared = homographs
            .keys()
            .any(|k| k.starts_with("CODE-") || k == "." || k == "NA" || k.starts_with("REGION"));
        assert!(has_shared, "expected shared-pool tokens among homographs");
        // Numeric homographs exist too.
        let has_numeric = homographs.keys().any(|k| k.parse::<u64>().is_ok());
        assert!(has_numeric, "expected numeric homographs");
    }

    #[test]
    fn cardinalities_are_skewed() {
        let lake = TusGenerator::new(TusConfig::small(3)).generate();
        let hist = lake.catalog.cardinality_histogram();
        let min = *hist.keys().next().unwrap();
        let max = *hist.keys().last().unwrap();
        // The small test configuration caps per-slice cardinality at
        // rows_per_source / horizontal_slices, so the spread is modest here;
        // paper_scale() configurations spread much wider.
        assert!(
            max >= 3 * min.max(1),
            "expected skewed attribute cardinalities, got [{min}, {max}]"
        );
    }

    #[test]
    fn unionable_slices_share_a_class() {
        let lake = TusGenerator::new(TusConfig::small(4)).generate();
        // Two horizontal slices of the same source column must have the same
        // class label.
        let c1 = lake.truth.class_of("src_d00_0_v0_h0", "key");
        let c2 = lake.truth.class_of("src_d00_0_v0_h1", "key");
        assert!(c1.is_some());
        assert_eq!(c1, c2);
        // And a slice from a different domain gets a different class.
        let other = lake.truth.class_of("src_d01_0_v0_h0", "key");
        assert!(other.is_some());
        assert_ne!(c1, other);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TusGenerator::new(TusConfig::small(9)).generate();
        let b = TusGenerator::new(TusConfig::small(9)).generate();
        assert_eq!(a.catalog.value_count(), b.catalog.value_count());
        assert_eq!(a.homographs(), b.homographs());
    }
}
