//! Ground-truth bookkeeping for generated benchmarks.
//!
//! Real data lakes do not come with homograph labels; the paper derives them
//! either from construction (the synthetic benchmark) or from table-union
//! ground truth (Definition 2: a value is a homograph iff it appears in two
//! attributes that are not unionable). The generators in this crate track,
//! for every attribute they emit, a *semantic class* — two attributes are
//! unionable exactly when they share a class — and derive homograph labels
//! from that, which mirrors the paper's methodology precisely.

use std::collections::{BTreeMap, BTreeSet};

use lake::catalog::LakeCatalog;
use serde::{Deserialize, Serialize};

/// Ground truth attached to a generated lake.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LakeTruth {
    /// Semantic class per attribute, keyed by `table.column`. Attributes with
    /// the same class are unionable (same domain); attributes with different
    /// classes are not.
    pub attribute_classes: BTreeMap<String, String>,
}

impl LakeTruth {
    /// Create an empty truth record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the semantic class of an attribute.
    pub fn set_class(
        &mut self,
        table: impl Into<String>,
        column: impl Into<String>,
        class: impl Into<String>,
    ) {
        self.attribute_classes
            .insert(format!("{}.{}", table.into(), column.into()), class.into());
    }

    /// The class of an attribute, if recorded.
    pub fn class_of(&self, table: &str, column: &str) -> Option<&str> {
        self.attribute_classes
            .get(&format!("{table}.{column}"))
            .map(String::as_str)
    }

    /// Compute the set of homographs of a lake under Definition 2, together
    /// with each homograph's number of distinct meanings (= number of
    /// distinct semantic classes it occurs in).
    ///
    /// A value that appears in an attribute without a recorded class is
    /// treated conservatively: the unknown attribute forms its own singleton
    /// class, so values confined to unknown attributes are never labeled.
    pub fn homographs(&self, lake: &LakeCatalog) -> BTreeMap<String, usize> {
        let mut result = BTreeMap::new();
        for value_id in lake.values_in_at_least(2) {
            let attrs = lake.value_attributes(value_id);
            let mut classes: BTreeSet<String> = BTreeSet::new();
            for &attr in attrs {
                let aref = lake
                    .attribute_ref(attr)
                    .expect("attribute id from the catalog resolves");
                let class = self
                    .attribute_classes
                    .get(&aref.qualified())
                    .cloned()
                    .unwrap_or_else(|| format!("__unknown__::{}", aref.qualified()));
                classes.insert(class);
            }
            if classes.len() >= 2 {
                let value = lake
                    .value(value_id)
                    .expect("value id from the catalog resolves")
                    .to_owned();
                result.insert(value, classes.len());
            }
        }
        result
    }

    /// The set of values (normalized) that repeat across attributes but are
    /// **not** homographs — the "unambiguous repeated values" the evaluation
    /// treats as negatives.
    pub fn unambiguous_repeats(&self, lake: &LakeCatalog) -> BTreeSet<String> {
        let homographs = self.homographs(lake);
        lake.values_in_at_least(2)
            .into_iter()
            .filter_map(|id| lake.value(id).map(str::to_owned))
            .filter(|v| !homographs.contains_key(v))
            .collect()
    }
}

/// A generated lake together with its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedLake {
    /// The lake itself.
    pub catalog: LakeCatalog,
    /// Per-attribute semantic classes.
    pub truth: LakeTruth,
}

impl GeneratedLake {
    /// Homograph labels (value → number of meanings) under Definition 2.
    pub fn homographs(&self) -> BTreeMap<String, usize> {
        self.truth.homographs(&self.catalog)
    }

    /// The normalized homograph values as a set.
    pub fn homograph_set(&self) -> BTreeSet<String> {
        self.homographs().into_keys().collect()
    }

    /// Candidate values: everything that appears in at least two attributes.
    pub fn candidate_count(&self) -> usize {
        self.catalog.values_in_at_least(2).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lake::table::TableBuilder;

    fn labeled_running_example() -> GeneratedLake {
        let catalog = lake::fixtures::running_example();
        let mut truth = LakeTruth::new();
        truth.set_class("T1", "Donor", "company");
        truth.set_class("T1", "At Risk", "animal");
        truth.set_class("T1", "Donation", "money");
        truth.set_class("T2", "name", "animal");
        truth.set_class("T2", "locale", "city");
        truth.set_class("T2", "num", "count");
        truth.set_class("T3", "C1", "car_model");
        // Car makers are companies: Toyota in T3.C2 and T4.Name keeps a
        // single meaning, exactly as in the paper's narrative.
        truth.set_class("T3", "C2", "company");
        truth.set_class("T3", "C3", "country");
        truth.set_class("T4", "Name", "company");
        truth.set_class("T4", "Revenue", "money");
        truth.set_class("T4", "Total", "count");
        GeneratedLake { catalog, truth }
    }

    #[test]
    fn definition_2_labels_running_example() {
        let lake = labeled_running_example();
        let homographs = lake.homographs();
        assert_eq!(homographs.get("JAGUAR"), Some(&2), "animal vs company");
        assert_eq!(homographs.get("PUMA"), Some(&2), "animal vs company");
        assert!(
            !homographs.contains_key("PANDA"),
            "animal in both attributes"
        );
        assert!(
            !homographs.contains_key("TOYOTA"),
            "company in both attributes"
        );
        assert!(!homographs.contains_key("GOOGLE"), "appears once");
    }

    #[test]
    fn unambiguous_repeats_complement_homographs() {
        let lake = labeled_running_example();
        let homographs = lake.homograph_set();
        let unambiguous = lake.truth.unambiguous_repeats(&lake.catalog);
        assert!(unambiguous.contains("PANDA"));
        assert!(unambiguous.is_disjoint(&homographs));
        let candidates = lake.candidate_count();
        assert_eq!(candidates, homographs.len() + unambiguous.len());
    }

    #[test]
    fn unknown_attributes_are_conservative() {
        let t1 = TableBuilder::new("A")
            .column("x", ["shared", "one"])
            .build()
            .unwrap();
        let t2 = TableBuilder::new("B")
            .column("y", ["shared", "two"])
            .build()
            .unwrap();
        let catalog = LakeCatalog::from_tables([t1, t2]).unwrap();
        let truth = LakeTruth::new();
        // No classes recorded: each unknown attribute is its own class, so
        // "shared" counts as a homograph (it spans two unknown attributes).
        let homographs = truth.homographs(&catalog);
        assert_eq!(homographs.get("SHARED"), Some(&2));
    }

    #[test]
    fn class_lookup_round_trip() {
        let mut truth = LakeTruth::new();
        truth.set_class("T", "c", "animal");
        assert_eq!(truth.class_of("T", "c"), Some("animal"));
        assert_eq!(truth.class_of("T", "missing"), None);
        let json = serde_json::to_string(&truth).unwrap();
        let back: LakeTruth = serde_json::from_str(&json).unwrap();
        assert_eq!(back.class_of("T", "c"), Some("animal"));
    }
}
