//! Curated vocabularies used by the synthetic-benchmark generator.
//!
//! The paper's synthetic benchmark (SB, §4.1) was authored with Mockaroo and
//! contains realistic values from several semantic categories whose overlaps
//! create homographs — `Jaguar` (animal / car maker), `Sydney` (city / first
//! name), `Jamaica` (city / country), `Lincoln` (car / city), `CA`
//! (country code / state abbreviation), `Pumpkin` (grocery / movie title),
//! and so on. This module embeds equivalent vocabularies so the benchmark can
//! be regenerated deterministically with exact ground truth.
//!
//! The lists intentionally overlap; the overlap *is* the ground truth. All
//! values are stored in their display form — normalization (upper-casing,
//! trimming) happens in the `lake` crate when tables are ingested.

/// Animal names, including several that double as car models/brands or
/// company names.
pub const ANIMALS: &[&str] = &[
    "Jaguar", "Puma", "Panda", "Lemur", "Pelican", "Panther", "Cougar", "Lynx", "Impala",
    "Falcon", "Eagle", "Beetle", "Mustang", "Colt", "Ram", "Bronco", "Viper", "Cobra",
    "Barracuda", "Stingray", "Leopard", "Cheetah", "Tiger", "Lion", "Elephant", "Giraffe",
    "Zebra", "Hippopotamus", "Rhinoceros", "Gorilla", "Chimpanzee", "Orangutan", "Gibbon",
    "Koala", "Kangaroo", "Wallaby", "Wombat", "Platypus", "Echidna", "Armadillo", "Anteater",
    "Sloth", "Otter", "Beaver", "Badger", "Wolverine", "Raccoon", "Skunk", "Opossum",
    "Hedgehog", "Porcupine", "Chinchilla", "Capybara", "Meerkat", "Mongoose", "Hyena",
    "Jackal", "Coyote", "Wolf", "Fox", "Bear", "Moose", "Elk", "Caribou", "Reindeer",
    "Bison", "Buffalo", "Antelope", "Gazelle", "Ibex", "Yak", "Llama", "Alpaca", "Camel",
    "Dromedary", "Tapir", "Okapi", "Manatee", "Dugong", "Walrus", "Seal", "Dolphin",
    "Porpoise", "Narwhal", "Beluga", "Orca", "Penguin", "Albatross", "Flamingo", "Heron",
    "Stork", "Ibis", "Toucan", "Macaw", "Cockatoo", "Kiwi", "Ostrich", "Emu", "Cassowary",
];

/// Car manufacturers; several double as animals or generic companies.
pub const CAR_BRANDS: &[&str] = &[
    "Jaguar", "Lincoln", "Toyota", "Fiat", "Volkswagen", "BMW", "Mercedes-Benz", "Audi",
    "Porsche", "Ferrari", "Lamborghini", "Maserati", "Alfa Romeo", "Peugeot", "Renault",
    "Citroen", "Skoda", "Seat", "Volvo", "Saab", "Ford", "Chevrolet", "Dodge", "Chrysler",
    "Cadillac", "Buick", "Pontiac", "Tesla", "Honda", "Nissan", "Mazda", "Subaru",
    "Mitsubishi", "Suzuki", "Lexus", "Infiniti", "Acura", "Hyundai", "Kia", "Genesis",
    "Land Rover", "Mini", "Bentley", "Rolls-Royce", "Aston Martin", "Lotus", "McLaren",
];

/// Car models; several double as animal names.
pub const CAR_MODELS: &[&str] = &[
    "XE", "XF", "XJ", "F-Type", "Prius", "Corolla", "Camry", "500", "Panda", "Punto",
    "Golf", "Passat", "Beetle", "Mustang", "Colt", "Ram", "Impala", "Barracuda", "Viper",
    "Bronco", "Cobra", "Stingray", "Falcon", "Eagle", "Civic", "Accord", "Leaf", "Micra",
    "Altima", "MX-5", "CX-5", "Outback", "Forester", "Impreza", "Lancer", "Swift",
    "Model S", "Model 3", "Model X", "Model Y", "A4", "A6", "Q5", "E-Class", "S-Class",
    "3 Series", "5 Series", "X5", "911", "Cayenne", "Panamera", "Huracan", "Aventador",
    "Ghibli", "Giulia", "Clio", "Megane", "208", "308", "Octavia", "Fabia", "XC90",
];

/// Companies; several double as animals, fruits, or car brands.
pub const COMPANIES: &[&str] = &[
    "Google", "Amazon", "Apple", "Microsoft", "Meta", "Netflix", "Tesla", "Nvidia",
    "Intel", "AMD", "IBM", "Oracle", "Salesforce", "Adobe", "Spotify", "Uber", "Lyft",
    "Airbnb", "Puma", "Jaguar", "Shell", "Caterpillar", "Blackberry", "Orange",
    "Volkswagen", "Toyota", "BMW", "Samsung", "Sony", "Panasonic", "Philips", "Siemens",
    "Bosch", "General Electric", "Boeing", "Airbus", "Lockheed Martin", "Raytheon",
    "Pfizer", "Moderna", "Johnson & Johnson", "Novartis", "Roche", "Bayer", "Nestle",
    "Unilever", "Procter & Gamble", "Coca-Cola", "PepsiCo", "Starbucks", "McDonald's",
    "Nike", "Adidas", "Zara", "H&M", "Ikea", "Walmart", "Target", "Costco", "FedEx",
    "UPS", "Visa", "Mastercard", "PayPal", "Goldman Sachs", "Morgan Stanley",
];

/// Cities; several double as first names, countries, or car brands.
pub const CITIES: &[&str] = &[
    "Sydney", "Jamaica", "Lincoln", "Austin", "Charlotte", "Savannah", "Phoenix",
    "Jackson", "Madison", "Florence", "Paris", "Brooklyn", "Victoria", "Chelsea",
    "Memphis", "Atlanta", "San Diego", "London", "Berlin", "Tokyo", "Kyoto", "Osaka",
    "Beijing", "Shanghai", "Mumbai", "Delhi", "Bangalore", "Singapore", "Hong Kong",
    "Seoul", "Bangkok", "Jakarta", "Manila", "Hanoi", "Kuala Lumpur", "Dubai",
    "Istanbul", "Athens", "Rome", "Milan", "Naples", "Venice", "Madrid", "Barcelona",
    "Lisbon", "Porto", "Amsterdam", "Rotterdam", "Brussels", "Vienna", "Prague",
    "Budapest", "Warsaw", "Krakow", "Stockholm", "Oslo", "Copenhagen", "Helsinki",
    "Dublin", "Edinburgh", "Glasgow", "Manchester", "Liverpool", "Birmingham",
    "Toronto", "Vancouver", "Montreal", "Ottawa", "Calgary", "Mexico City",
    "Guadalajara", "Bogota", "Lima", "Santiago", "Buenos Aires", "Sao Paulo",
    "Rio de Janeiro", "Brasilia", "Cairo", "Lagos", "Nairobi", "Johannesburg",
    "Cape Town", "Casablanca", "Accra", "Addis Ababa", "Boston", "Chicago",
    "Seattle", "Portland", "Denver", "Houston", "Dallas", "Miami", "Orlando",
    "Nashville", "New Orleans", "Salt Lake City", "Las Vegas", "San Francisco",
    "Los Angeles", "New York", "Philadelphia", "Baltimore", "Washington",
    "Cleveland", "Detroit", "Minneapolis", "St. Louis", "Kansas City", "Cuba",
];

/// Country names (subset of the 193 the paper used; the generator pads the
/// table to 193 rows with additional real names below).
pub const COUNTRIES: &[&str] = &[
    "Jamaica", "Cuba", "Canada", "United States", "Mexico", "Guatemala", "Belize",
    "Honduras", "El Salvador", "Nicaragua", "Costa Rica", "Panama", "Colombia",
    "Venezuela", "Guyana", "Suriname", "Ecuador", "Peru", "Brazil", "Bolivia",
    "Paraguay", "Chile", "Argentina", "Uruguay", "United Kingdom", "Ireland", "France",
    "Spain", "Portugal", "Germany", "Netherlands", "Belgium", "Luxembourg",
    "Switzerland", "Austria", "Italy", "Greece", "Malta", "Cyprus", "Denmark", "Norway",
    "Sweden", "Finland", "Iceland", "Estonia", "Latvia", "Lithuania", "Poland",
    "Czech Republic", "Slovakia", "Hungary", "Romania", "Bulgaria", "Slovenia",
    "Croatia", "Bosnia and Herzegovina", "Serbia", "Montenegro", "North Macedonia",
    "Albania", "Kosovo", "Moldova", "Ukraine", "Belarus", "Russia", "Georgia",
    "Armenia", "Azerbaijan", "Turkey", "Syria", "Lebanon", "Israel", "Jordan", "Iraq",
    "Iran", "Kuwait", "Saudi Arabia", "Bahrain", "Qatar", "United Arab Emirates",
    "Oman", "Yemen", "Egypt", "Libya", "Tunisia", "Algeria", "Morocco", "Mauritania",
    "Mali", "Niger", "Chad", "Sudan", "South Sudan", "Ethiopia", "Eritrea", "Djibouti",
    "Somalia", "Kenya", "Uganda", "Tanzania", "Rwanda", "Burundi", "Nigeria", "Ghana",
    "Ivory Coast", "Senegal", "Guinea", "Guinea-Bissau", "Sierra Leone", "Liberia",
    "Togo", "Benin", "Cameroon", "Gabon", "Republic of the Congo", "Angola", "Zambia",
    "Zimbabwe", "Mozambique", "Malawi", "Botswana", "Namibia", "South Africa",
    "Lesotho", "Swaziland", "Madagascar", "Mauritius", "Seychelles", "Comoros",
    "Cape Verde", "India", "Pakistan", "Afghanistan", "Bangladesh", "Sri Lanka",
    "Nepal", "Bhutan", "Maldives", "China", "Mongolia", "North Korea", "South Korea",
    "Japan", "Taiwan", "Philippines", "Vietnam", "Laos", "Cambodia", "Thailand",
    "Myanmar", "Malaysia", "Singapore", "Indonesia", "Brunei", "East Timor",
    "Papua New Guinea", "Australia", "New Zealand", "Fiji", "Samoa", "Tonga",
    "Tuvalu", "Kiribati", "Vanuatu", "Solomon Islands", "Micronesia",
    "Marshall Islands", "Palau", "Nauru", "Kazakhstan", "Uzbekistan", "Turkmenistan",
    "Kyrgyzstan", "Tajikistan", "Haiti", "Dominican Republic", "Trinidad and Tobago",
    "Barbados", "Saint Lucia", "Grenada", "Dominica", "Bahamas", "Antigua and Barbuda",
    "Saint Kitts and Nevis", "Saint Vincent and the Grenadines", "Gambia",
    "Burkina Faso", "Equatorial Guinea", "Sao Tome and Principe",
    "Central African Republic", "Democratic Republic of the Congo", "Vatican City",
    "San Marino", "Monaco", "Liechtenstein", "Andorra",
];

/// ISO-3166-ish two-letter country codes. Many collide with US state
/// abbreviations (`CA`, `GA`, `DE`, `AL`, `CO`, `MD`, ...), which is one of
/// the paper's canonical homograph families.
pub const COUNTRY_CODES: &[&str] = &[
    "CA", "GA", "DE", "AL", "CO", "MD", "MT", "NE", "PA", "SC", "SD", "IL", "ME", "GT",
    "ES", "TL", "CT", "US", "GB", "FR", "IT", "JP", "CN", "IN", "BR", "MX", "AR", "CL",
    "PE", "VE", "RU", "UA", "PL", "CZ", "SK", "HU", "RO", "BG", "GR", "TR", "EG", "MA",
    "TN", "DZ", "NG", "KE", "ZA", "ET", "TZ", "GH", "SN", "CM", "AO", "MZ", "ZW", "BW",
    "NA", "AU", "NZ", "FJ", "PG", "ID", "MY", "TH", "VN", "PH", "KR", "KP", "TW", "SG",
    "LK", "BD", "PK", "AF", "IR", "IQ", "SA", "AE", "QA", "KW", "OM", "YE", "JO", "LB",
    "SY", "IS", "NO", "SE", "FI", "DK", "NL", "BE", "LU", "CH", "AT", "PT", "IE",
];

/// US state names.
pub const US_STATES: &[&str] = &[
    "Alabama", "Alaska", "Arizona", "Arkansas", "California", "Colorado", "Connecticut",
    "Delaware", "Florida", "Georgia", "Hawaii", "Idaho", "Illinois", "Indiana", "Iowa",
    "Kansas", "Kentucky", "Louisiana", "Maine", "Maryland", "Massachusetts", "Michigan",
    "Minnesota", "Mississippi", "Missouri", "Montana", "Nebraska", "Nevada",
    "New Hampshire", "New Jersey", "New Mexico", "New York", "North Carolina",
    "North Dakota", "Ohio", "Oklahoma", "Oregon", "Pennsylvania", "Rhode Island",
    "South Carolina", "South Dakota", "Tennessee", "Texas", "Utah", "Vermont",
    "Virginia", "Washington", "West Virginia", "Wisconsin", "Wyoming",
];

/// US state abbreviations (same order as [`US_STATES`]).
pub const STATE_ABBREVS: &[&str] = &[
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN",
    "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV",
    "NH", "NJ", "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN",
    "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY",
];

/// First names; several double as cities or US states.
pub const FIRST_NAMES: &[&str] = &[
    "Sydney", "Austin", "Charlotte", "Savannah", "Phoenix", "Jackson", "Madison",
    "Florence", "Victoria", "Chelsea", "Brooklyn", "Virginia", "Georgia", "Heather",
    "Leandra", "Nadine", "Quinta", "Elmira", "Charity", "Mace", "Smitty", "Jimmy",
    "Nadia", "Elena", "Sofia", "Olivia", "Emma", "Ava", "Isabella", "Mia", "Amelia",
    "Harper", "Evelyn", "Abigail", "Emily", "Elizabeth", "Stella", "Ella", "Scarlett",
    "Grace", "Chloe", "Lily", "Aria", "Zoe", "Hannah", "Nora", "Layla", "Mila",
    "James", "Robert", "John", "Michael", "David", "William", "Richard", "Joseph",
    "Thomas", "Charles", "Christopher", "Daniel", "Matthew", "Anthony", "Mark",
    "Donald", "Steven", "Paul", "Andrew", "Joshua", "Kenneth", "Kevin", "Brian",
    "George", "Edward", "Ronald", "Timothy", "Jason", "Jeffrey", "Ryan", "Jacob",
    "Gary", "Nicholas", "Eric", "Jonathan", "Stephen", "Larry", "Justin", "Scott",
    "Brandon", "Benjamin", "Samuel", "Gregory", "Frank", "Alexander", "Raymond",
    "Patrick", "Jack", "Dennis", "Jerry", "Tyler", "Aaron", "Elan", "Christophe",
    "Else", "Leandro", "Quintin",
];

/// Last names.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
    "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson",
    "Thomas", "Taylor", "Moore", "Martin", "Lee", "Perez", "Thompson",
    "White", "Harris", "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson", "Walker",
    "Young", "Allen", "King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
    "Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Garvey", "Vinson", "Duff", "Reid", "Costanza", "Berkeley",
    "Conroy", "Lincoln", "Jackson", "Madison", "Washington", "Jefferson", "Monroe",
];

/// Grocery products; several double as movie titles, companies, or colors.
pub const GROCERIES: &[&str] = &[
    "Pumpkin", "Apple", "Orange", "Mango", "Kiwi", "Olive", "Ginger", "Sage", "Basil",
    "Rosemary", "Thyme", "Oregano", "Cinnamon", "Nutmeg", "Vanilla", "Honey", "Butter",
    "Milk", "Cheese", "Yogurt", "Bread", "Rice", "Pasta", "Flour", "Sugar", "Salt",
    "Pepper", "Tomato", "Potato", "Onion", "Garlic", "Carrot", "Celery", "Spinach",
    "Kale", "Lettuce", "Cabbage", "Broccoli", "Cauliflower", "Zucchini", "Eggplant",
    "Cucumber", "Avocado", "Banana", "Grape", "Strawberry", "Blueberry", "Raspberry",
    "Blackberry", "Cherry", "Peach", "Plum", "Pear", "Pineapple", "Watermelon",
    "Cantaloupe", "Lemon", "Lime", "Grapefruit", "Coconut", "Almond", "Walnut",
    "Cashew", "Pistachio", "Peanut", "Oats", "Quinoa", "Lentils", "Chickpeas", "Beans",
];

/// Movie titles; several double as groceries, animals, or first names.
pub const MOVIES: &[&str] = &[
    "Pumpkin", "Jaws", "Titanic", "Avatar", "Inception", "Interstellar", "Gladiator",
    "Casablanca", "Psycho", "Vertigo", "Rocky", "Alien", "Aliens", "Predator",
    "The Godfather", "Goodfellas", "Scarface", "Heat", "Collateral", "Drive",
    "Whiplash", "La La Land", "Moonlight", "Parasite", "Amelie", "Chicago",
    "Philadelphia", "Fargo", "Nebraska", "Lincoln", "Jackie", "Frida", "Ray",
    "Walk the Line", "The Matrix", "Speed", "Twister", "Volcano", "Dante's Peak",
    "Armageddon", "Deep Impact", "Contact", "Arrival", "Gravity", "The Martian",
    "Apollo 13", "First Man", "Dunkirk", "1917", "Platoon", "Full Metal Jacket",
    "Jarhead", "Black Hawk Down", "Crash", "Babel", "Traffic", "Syriana", "Argo",
    "Up", "Brave", "Frozen", "Coco", "Luca", "Soul", "Cars", "Planes",
];

/// Plant common names (echoing the long-tailed plant values visible in the
/// paper's Figure 6).
pub const PLANTS: &[&str] = &[
    "Shieldplant", "Coiled Anther", "Hairy Grama", "Hybrid Oak", "Canyon Liveforever",
    "Cracked Lichen", "Orange Lichen", "Kidney Lichen", "Coastal Plain Dawnflower",
    "California Blackberry", "Tarweed", "Dispersed Eggyolk Lichen",
    "Pale Evening Primrose", "Schaereria Lichen", "Angelica Tree",
    "Woodland Wild Coffee", "Showy Rattlebox", "White Oak", "Red Maple", "Sugar Maple",
    "Douglas Fir", "Ponderosa Pine", "Lodgepole Pine", "Blue Spruce", "Quaking Aspen",
    "Paper Birch", "American Beech", "Black Walnut", "Shagbark Hickory", "Sassafras",
    "Tulip Poplar", "Sweetgum", "Sycamore", "Cottonwood", "Willow", "Alder", "Hazel",
    "Dogwood", "Redbud", "Serviceberry", "Mountain Laurel", "Rhododendron", "Azalea",
    "Huckleberry", "Salal", "Manzanita", "Sagebrush", "Rabbitbrush", "Yucca", "Agave",
];

/// Scientific-sounding species names for the plant/animal science tables.
pub const SCIENTIFIC_NAMES: &[&str] = &[
    "Panthera onca", "Puma concolor", "Ailuropoda melanoleuca", "Lemur catta",
    "Pelecanus occidentalis", "Panthera pardus", "Acinonyx jubatus", "Panthera leo",
    "Loxodonta africana", "Giraffa camelopardalis", "Equus quagga", "Gorilla gorilla",
    "Pan troglodytes", "Pongo abelii", "Phascolarctos cinereus", "Macropus rufus",
    "Ornithorhynchus anatinus", "Dasypus novemcinctus", "Myrmecophaga tridactyla",
    "Choloepus didactylus", "Lontra canadensis", "Castor canadensis", "Meles meles",
    "Gulo gulo", "Procyon lotor", "Mephitis mephitis", "Didelphis virginiana",
    "Erinaceus europaeus", "Erethizon dorsatum", "Chinchilla lanigera",
    "Suricata suricatta", "Crocuta crocuta", "Canis aureus", "Canis latrans",
    "Canis lupus", "Vulpes vulpes", "Ursus arctos", "Alces alces", "Cervus canadensis",
    "Rangifer tarandus", "Bison bison", "Quercus alba", "Acer rubrum",
    "Acer saccharum", "Pseudotsuga menziesii", "Pinus ponderosa", "Pinus contorta",
    "Picea pungens", "Populus tremuloides", "Betula papyrifera",
];

/// Academic departments / campus locations. `Music Faculty` and `Biomedical
/// Engineering` echo the paper's §5.3 examples of real-lake homographs.
pub const DEPARTMENTS: &[&str] = &[
    "Music Faculty", "Biomedical Engineering", "Computer Science", "Mathematics",
    "Physics", "Chemistry", "Biology", "Economics", "History", "Philosophy",
    "Linguistics", "Psychology", "Sociology", "Anthropology", "Political Science",
    "Mechanical Engineering", "Electrical Engineering", "Civil Engineering",
    "Chemical Engineering", "Materials Science", "Statistics", "Data Science",
    "Business Administration", "Accounting", "Finance", "Marketing", "Law",
    "Medicine", "Nursing", "Public Health", "Architecture", "Urban Planning",
    "Fine Arts", "Graphic Design", "Journalism", "Education", "Environmental Science",
];

/// Colors, used as a descriptor column (and as a source of data-entry-error
/// homographs when a color lands in a habitat column).
pub const COLORS: &[&str] = &[
    "Red", "Orange", "Yellow", "Green", "Blue", "Indigo", "Violet", "Purple", "Pink",
    "Brown", "Black", "White", "Gray", "Silver", "Gold", "Beige", "Ivory", "Teal",
    "Cyan", "Magenta", "Maroon", "Olive", "Navy", "Coral", "Salmon", "Turquoise",
];

/// Habitats for the animal tables.
pub const HABITATS: &[&str] = &[
    "Rainforest", "Savanna", "Desert", "Tundra", "Taiga", "Grassland", "Wetland",
    "Mangrove", "Coral Reef", "Deep Sea", "Coastal", "Alpine", "Temperate Forest",
    "Tropical Forest", "Swamp", "River", "Lake", "Estuary", "Cave", "Urban",
];

/// Well-known null-equivalent markers that occur across heterogeneous columns
/// in real lakes (the paper's "." example). Sprinkling a few of these into
/// generated lakes reproduces the null-marker homograph family.
pub const NULL_MARKERS: &[&str] = &["NA", "N/A", ".", "-", "Unknown", "Not Available", "None"];

/// All vocabularies with a short semantic-class label, used by tests to check
/// overlap structure.
pub fn all_vocabularies() -> Vec<(&'static str, &'static [&'static str])> {
    vec![
        ("animal", ANIMALS),
        ("car_brand", CAR_BRANDS),
        ("car_model", CAR_MODELS),
        ("company", COMPANIES),
        ("city", CITIES),
        ("country", COUNTRIES),
        ("country_code", COUNTRY_CODES),
        ("us_state", US_STATES),
        ("state_abbrev", STATE_ABBREVS),
        ("first_name", FIRST_NAMES),
        ("last_name", LAST_NAMES),
        ("grocery", GROCERIES),
        ("movie", MOVIES),
        ("plant", PLANTS),
        ("scientific_name", SCIENTIFIC_NAMES),
        ("department", DEPARTMENTS),
        ("color", COLORS),
        ("habitat", HABITATS),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn canonical_homographs_are_present_in_both_vocabularies() {
        let pairs: &[(&str, &[&str], &[&str])] = &[
            ("Jaguar", ANIMALS, CAR_BRANDS),
            ("Jaguar", ANIMALS, COMPANIES),
            ("Puma", ANIMALS, COMPANIES),
            ("Lincoln", CAR_BRANDS, CITIES),
            ("Sydney", CITIES, FIRST_NAMES),
            ("Jamaica", CITIES, COUNTRIES),
            ("Pumpkin", GROCERIES, MOVIES),
            ("Apple", COMPANIES, GROCERIES),
            ("CA", COUNTRY_CODES, STATE_ABBREVS),
            ("GA", COUNTRY_CODES, STATE_ABBREVS),
            ("Beetle", ANIMALS, CAR_MODELS),
            ("Mustang", ANIMALS, CAR_MODELS),
            ("Orange", COMPANIES, COLORS),
        ];
        for (value, a, b) in pairs {
            assert!(a.contains(value), "{value} missing from first vocabulary");
            assert!(b.contains(value), "{value} missing from second vocabulary");
        }
    }

    #[test]
    fn state_abbreviations_parallel_state_names() {
        assert_eq!(US_STATES.len(), 50);
        assert_eq!(STATE_ABBREVS.len(), 50);
        let unique: HashSet<&str> = STATE_ABBREVS.iter().copied().collect();
        assert_eq!(unique.len(), 50);
    }

    #[test]
    fn vocabularies_have_no_internal_duplicates_after_normalization() {
        for (name, list) in all_vocabularies() {
            // FIRST_NAMES intentionally repeats "Sofia" in the raw list? No —
            // normalize and check; duplicates would silently shrink columns.
            let mut seen = HashSet::new();
            let mut dups = Vec::new();
            for value in list {
                if !seen.insert(lake::normalize(value)) {
                    dups.push(*value);
                }
            }
            assert!(dups.is_empty(), "duplicates in {name}: {dups:?}");
        }
    }

    #[test]
    fn vocabularies_are_reasonably_sized() {
        assert!(ANIMALS.len() >= 60);
        assert!(CITIES.len() >= 80);
        assert!(COUNTRIES.len() >= 150);
        assert!(FIRST_NAMES.len() >= 80);
        assert!(COUNTRY_CODES.len() >= 80);
    }
}
