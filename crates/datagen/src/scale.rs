//! Large-lake generator for scalability experiments (§5.4, Figures 8 & 9).
//!
//! The paper measures graph-construction time and approximate-BC runtime on
//! the NYC-education open-data lake (201 tables, 3 496 attributes, ~1.5 M
//! distinct values). That corpus is not redistributable, so this generator
//! produces lakes with a configurable number of attributes, heavy-tailed
//! attribute cardinalities, and a shared global vocabulary with popularity
//! skew — the three properties that determine the size and density of the
//! DomainNet graph and therefore the runtime being measured.

use lake::catalog::LakeCatalog;
use lake::column::Column;
use lake::table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the scalability-lake generator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScaleConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of tables.
    pub tables: usize,
    /// Attributes per table.
    pub attrs_per_table: usize,
    /// Maximum attribute cardinality (cardinalities follow a power law from
    /// `min_cardinality` up to this value).
    pub max_cardinality: usize,
    /// Minimum attribute cardinality.
    pub min_cardinality: usize,
    /// Size of the global vocabulary values are drawn from. Smaller
    /// vocabularies make denser graphs (more repeated values).
    pub vocab_size: usize,
    /// Exponent of the popularity skew over the vocabulary (0 = uniform).
    pub popularity_skew: f64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            seed: 1,
            tables: 60,
            attrs_per_table: 8,
            max_cardinality: 3_000,
            min_cardinality: 5,
            vocab_size: 120_000,
            popularity_skew: 0.6,
        }
    }
}

impl ScaleConfig {
    /// A small configuration for unit tests.
    pub fn small(seed: u64) -> Self {
        ScaleConfig {
            seed,
            tables: 10,
            attrs_per_table: 4,
            max_cardinality: 200,
            min_cardinality: 3,
            vocab_size: 3_000,
            popularity_skew: 0.6,
        }
    }

    /// Scale the configuration by a multiplicative factor (used by the
    /// experiment binaries' `--scale` flag).
    pub fn scaled(mut self, factor: f64) -> Self {
        let f = factor.max(0.01);
        self.tables = ((self.tables as f64 * f).round() as usize).max(1);
        self.vocab_size = ((self.vocab_size as f64 * f).round() as usize).max(100);
        self.max_cardinality =
            ((self.max_cardinality as f64 * f).round() as usize).max(self.min_cardinality + 1);
        self
    }
}

/// Generator for scalability lakes.
#[derive(Debug, Clone)]
pub struct ScaleGenerator {
    config: ScaleConfig,
}

impl ScaleGenerator {
    /// Create a generator from a configuration.
    pub fn new(config: ScaleConfig) -> Self {
        ScaleGenerator { config }
    }

    /// Generate the lake. No ground truth is produced — these lakes are used
    /// only for runtime measurements.
    pub fn generate(&self) -> LakeCatalog {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut tables = Vec::with_capacity(cfg.tables);
        for t in 0..cfg.tables {
            let mut columns = Vec::with_capacity(cfg.attrs_per_table);
            // All columns of one table share the row count of the widest
            // column; shorter columns repeat values, like real tables do.
            let cardinalities: Vec<usize> = (0..cfg.attrs_per_table)
                .map(|_| sample_cardinality(cfg, &mut rng))
                .collect();
            let rows = cardinalities.iter().copied().max().unwrap_or(1);
            for (c, &cardinality) in cardinalities.iter().enumerate() {
                let mut cells = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let value = sample_value(cfg, &mut rng);
                    cells.push(value);
                }
                // Guarantee roughly the requested cardinality by seeding the
                // first `cardinality` cells with distinct draws.
                for (i, cell) in cells.iter_mut().enumerate().take(cardinality) {
                    *cell = format!("v{}", stable_value_index(cfg, t, c, i));
                }
                columns.push(Column::new(format!("col_{c}"), cells));
            }
            tables.push(Table::from_columns(format!("table_{t:04}"), columns));
        }
        LakeCatalog::from_tables(tables).expect("generated table names are unique")
    }
}

/// Power-law-ish cardinality in `[min_cardinality, max_cardinality]`.
fn sample_cardinality(cfg: &ScaleConfig, rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    let min = cfg.min_cardinality.max(1) as f64;
    let max = cfg.max_cardinality.max(cfg.min_cardinality + 1) as f64;
    // Inverse-CDF sampling of a truncated Pareto-like distribution.
    let alpha = 1.2f64;
    let value = min * ((1.0 - u) + u * (min / max).powf(alpha)).powf(-1.0 / alpha);
    value.min(max) as usize
}

/// Draw a vocabulary value with popularity skew: low indexes are more popular
/// and therefore shared across many attributes (graph hubs), high indexes are
/// rare (graph leaves).
fn sample_value(cfg: &ScaleConfig, rng: &mut StdRng) -> String {
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
    let skewed = u.powf(1.0 + cfg.popularity_skew);
    let index = (skewed * cfg.vocab_size as f64) as usize;
    format!("v{}", index.min(cfg.vocab_size - 1))
}

/// Deterministic distinct-value index for the cardinality-seeding cells,
/// spread across the vocabulary so different attributes still overlap.
fn stable_value_index(cfg: &ScaleConfig, table: usize, column: usize, i: usize) -> usize {
    let spread = (table * 31 + column * 7) % 97;
    (i * 97 + spread) % cfg.vocab_size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let cfg = ScaleConfig::small(3);
        let lake = ScaleGenerator::new(cfg).generate();
        assert_eq!(lake.table_count(), cfg.tables);
        assert_eq!(lake.attribute_count(), cfg.tables * cfg.attrs_per_table);
        assert!(lake.value_count() > 100);
    }

    #[test]
    fn cardinalities_are_heavy_tailed_and_bounded() {
        let cfg = ScaleConfig::small(4);
        let lake = ScaleGenerator::new(cfg).generate();
        let cards: Vec<usize> = lake
            .attribute_ids()
            .map(|a| lake.attribute_cardinality(a))
            .collect();
        let max = *cards.iter().max().unwrap();
        let min = *cards.iter().min().unwrap();
        assert!(max <= cfg.max_cardinality + cfg.min_cardinality);
        assert!(min >= 1);
        assert!(max > 4 * min.max(1), "expected skew, got [{min}, {max}]");
    }

    #[test]
    fn values_are_shared_across_attributes() {
        let lake = ScaleGenerator::new(ScaleConfig::small(5)).generate();
        let candidates = lake.values_in_at_least(2);
        assert!(
            candidates.len() > lake.value_count() / 20,
            "expected a healthy fraction of repeated values: {} of {}",
            candidates.len(),
            lake.value_count()
        );
    }

    #[test]
    fn deterministic_per_seed_and_scalable() {
        let a = ScaleGenerator::new(ScaleConfig::small(6)).generate();
        let b = ScaleGenerator::new(ScaleConfig::small(6)).generate();
        assert_eq!(a.value_count(), b.value_count());
        assert_eq!(a.incidence_count(), b.incidence_count());

        let bigger = ScaleConfig::small(6).scaled(2.0);
        assert!(bigger.tables > ScaleConfig::small(6).tables);
        let smaller = ScaleConfig::small(6).scaled(0.5);
        assert!(smaller.tables < ScaleConfig::small(6).tables);
    }
}
