//! Approximate betweenness centrality via source sampling.
//!
//! Exact Brandes is `O(n·m)` — prohibitive for lakes with millions of values
//! (§5.4 of the paper). The standard remedy, and the one DomainNet adopts
//! (following Geisberger, Sanders & Schultes, ALENEX 2008), is to run the
//! single-source dependency accumulation only from a *sample* of source
//! nodes and scale the result, giving an `O(s·m)` estimator whose *ranking*
//! of nodes stabilizes long before the absolute scores converge. The paper
//! observes that sampling roughly 1 % of the nodes already reproduces the
//! exact-BC ranking on the TUS benchmark (Figure 8).
//!
//! Two sampling strategies are provided:
//!
//! * [`SamplingStrategy::Uniform`] — sources drawn uniformly without
//!   replacement; the estimate is unbiased with weight `n / s`.
//! * [`SamplingStrategy::DegreeProportional`] — sources drawn with
//!   probability proportional to their degree (with replacement), with
//!   inverse-probability weights. High-degree nodes start more shortest
//!   paths, so this reduces variance on skewed lakes.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;

use crate::bc::{accumulate_source, canonical_chunks, BrandesWorkspace};
use crate::bipartite::BipartiteGraph;

/// How sources are drawn for the sampled estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SamplingStrategy {
    /// Uniform sampling of sources without replacement.
    Uniform,
    /// Degree-proportional sampling with replacement (importance-weighted).
    DegreeProportional,
}

/// Configuration for [`approximate_betweenness`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ApproxBcConfig {
    /// Number of source nodes to sample. Clamped to the node count.
    pub samples: usize,
    /// Sampling strategy.
    pub strategy: SamplingStrategy,
    /// RNG seed, so experiments are reproducible.
    pub seed: u64,
}

impl Default for ApproxBcConfig {
    fn default() -> Self {
        ApproxBcConfig {
            samples: 1000,
            strategy: SamplingStrategy::Uniform,
            seed: 0x_D0_5A_1A_7E,
        }
    }
}

impl ApproxBcConfig {
    /// Convenience constructor: sample a fraction of the nodes (e.g. `0.01`
    /// for the paper's 1 % heuristic).
    ///
    /// `fraction` is clamped to `(0, 1]`: non-positive or non-finite inputs
    /// (which would previously yield a silently empty sample and an all-zero
    /// estimate) are treated as "the smallest useful sample", i.e. a single
    /// source, and fractions above `1.0` behave like `1.0` (every node is a
    /// source, making the estimate exact). On degenerate graphs the result
    /// stays safe: `samples` is at least 1, and for an empty graph
    /// [`approximate_betweenness`] returns an empty score vector regardless
    /// of the configured sample count.
    pub fn with_fraction(graph: &BipartiteGraph, fraction: f64, seed: u64) -> Self {
        let n = graph.node_count();
        let samples = if fraction.is_finite() && fraction > 0.0 {
            ((n as f64 * fraction.min(1.0)).ceil() as usize).clamp(1, n.max(1))
        } else {
            1
        };
        ApproxBcConfig {
            samples,
            seed,
            ..ApproxBcConfig::default()
        }
    }
}

/// Estimate betweenness centrality for every node from sampled sources.
///
/// The returned scores approximate the *exact* (unordered-pair) BC returned
/// by [`crate::bc::betweenness_centrality`]: with `samples == node_count` and
/// uniform sampling the two agree exactly (up to floating-point error),
/// because uniform sampling without replacement then enumerates every source
/// once and the scale factor is 1.
///
/// `threads` is a **runtime execution parameter**, deliberately not part of
/// [`ApproxBcConfig`]: the config is identity (it keys memo caches and is
/// persisted in snapshot manifests), and the estimate is bit-identical for
/// every thread count — the weighted sources are drawn from the seeded RNG
/// before any parallelism starts, and the accumulation uses the canonical
/// chunk layout of [`crate::bc`].
pub fn approximate_betweenness(
    graph: &BipartiteGraph,
    config: ApproxBcConfig,
    threads: usize,
) -> Vec<f64> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let samples = config.samples.clamp(1, n);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // (source, weight) pairs; weight already includes the estimator scaling.
    let weighted_sources: Vec<(u32, f64)> = match config.strategy {
        SamplingStrategy::Uniform => {
            let scale = n as f64 / samples as f64;
            index_sample(&mut rng, n, samples)
                .into_iter()
                .map(|i| (i as u32, scale))
                .collect()
        }
        SamplingStrategy::DegreeProportional => {
            let degrees: Vec<f64> = graph.nodes().map(|v| graph.degree(v) as f64).collect();
            let total: f64 = degrees.iter().sum();
            if total == 0.0 {
                // No edges: BC is zero everywhere.
                return vec![0.0; n];
            }
            let dist = WeightedIndex::new(&degrees)
                .expect("degree weights are non-negative with a positive sum");
            (0..samples)
                .map(|_| {
                    let i = dist.sample(&mut rng);
                    let p = degrees[i] / total;
                    (i as u32, 1.0 / (samples as f64 * p))
                })
                .collect()
        }
    };

    let mut bc = accumulate_weighted_sources(graph, &weighted_sources, threads);
    // Each unordered endpoint pair is seen from each sampled endpoint, and the
    // estimator already rescales to "all sources", so halve as in exact BC.
    for value in &mut bc {
        *value /= 2.0;
    }
    bc
}

/// Sampled BC re-estimation with sources drawn from an explicit node `pool`.
///
/// This is the approximate counterpart of
/// [`crate::bc::betweenness_from_sources`], used by the incremental pipeline
/// to re-estimate BC only for the components touched by a lake mutation: the
/// pool is the node set of the touched components, so the estimate for nodes
/// *inside* the pool approximates their global BC (sources outside their
/// component would have contributed nothing). `config.samples` is clamped to
/// the pool size; with `samples == pool.len()` the result is exact on the
/// pool, matching [`crate::bc::betweenness_centrality`] there.
pub fn approximate_betweenness_within(
    graph: &BipartiteGraph,
    pool: &[u32],
    config: ApproxBcConfig,
    threads: usize,
) -> Vec<f64> {
    let n = graph.node_count();
    if n == 0 || pool.is_empty() {
        return vec![0.0; n];
    }
    let samples = config.samples.clamp(1, pool.len());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let weighted_sources: Vec<(u32, f64)> = match config.strategy {
        SamplingStrategy::Uniform => {
            let scale = pool.len() as f64 / samples as f64;
            index_sample(&mut rng, pool.len(), samples)
                .into_iter()
                .map(|i| (pool[i], scale))
                .collect()
        }
        SamplingStrategy::DegreeProportional => {
            let degrees: Vec<f64> = pool.iter().map(|&v| graph.degree(v) as f64).collect();
            let total: f64 = degrees.iter().sum();
            if total == 0.0 {
                return vec![0.0; n];
            }
            let dist = WeightedIndex::new(&degrees)
                .expect("degree weights are non-negative with a positive sum");
            (0..samples)
                .map(|_| {
                    let i = dist.sample(&mut rng);
                    let p = degrees[i] / total;
                    (pool[i], 1.0 / (samples as f64 * p))
                })
                .collect()
        }
    };
    let mut bc = accumulate_weighted_sources(graph, &weighted_sources, threads);
    for value in &mut bc {
        *value /= 2.0;
    }
    bc
}

/// The weighted twin of `crate::bc::accumulate_sources_parallel`: canonical
/// chunk layout (a pure function of the source count) scheduled onto a
/// work-stealing pool, partials folded in chunk-index order — so the output
/// is a pure function of `(graph, weighted_sources)`, independent of
/// `threads` and of scheduling.
fn accumulate_weighted_sources(
    graph: &BipartiteGraph,
    weighted_sources: &[(u32, f64)],
    threads: usize,
) -> Vec<f64> {
    let n = graph.node_count();
    let chunks = canonical_chunks(weighted_sources.len());
    let ctx = dn_trace::current();
    let partials = dn_pool::Pool::new(threads).run(chunks.len(), |c| {
        let _chunk = if ctx.is_active() {
            ctx.enter(dn_trace::Phase::PoolBcChunks, &format!("chunk{c}"))
        } else {
            dn_trace::SpanGuard::noop()
        };
        let mut acc = vec![0.0; n];
        let mut workspace = BrandesWorkspace::new(n);
        for &(s, w) in &weighted_sources[chunks[c].clone()] {
            accumulate_source(graph, s, &mut workspace, &mut acc, w);
        }
        acc
    });
    let mut total = vec![0.0; n];
    for partial in partials {
        for (t, p) in total.iter_mut().zip(partial) {
            *t += p;
        }
    }
    total
}

/// Spearman-style rank agreement between two score vectors over the top-`k`
/// nodes of `reference`: the fraction of `reference`'s top-`k` nodes that
/// also appear in `candidate`'s top-`k`.
///
/// DomainNet only consumes the *ranking* of BC scores, so this is the metric
/// that matters when judging whether a sample size is large enough
/// (Figure 8).
pub fn top_k_overlap(reference: &[f64], candidate: &[f64], k: usize) -> f64 {
    assert_eq!(reference.len(), candidate.len());
    if k == 0 || reference.is_empty() {
        return 1.0;
    }
    let top = |scores: &[f64]| -> Vec<u32> {
        let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
        idx.sort_by(|&a, &b| scores[b as usize].total_cmp(&scores[a as usize]));
        idx.truncate(k);
        idx
    };
    let ref_top = top(reference);
    let cand_top: std::collections::HashSet<u32> = top(candidate).into_iter().collect();
    let hits = ref_top.iter().filter(|i| cand_top.contains(i)).count();
    hits as f64 / ref_top.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::betweenness_centrality;
    use crate::bipartite::BipartiteBuilder;

    /// A lake-shaped random bipartite graph for estimator tests.
    fn random_lake_graph(
        values: usize,
        attrs: usize,
        avg_attr_size: usize,
        seed: u64,
    ) -> BipartiteGraph {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = BipartiteBuilder::new();
        for i in 0..values {
            b.add_value(format!("v{i}"));
        }
        for a in 0..attrs {
            let attr = b.add_attribute(format!("a{a}"));
            let size = rng.gen_range(2..=avg_attr_size * 2);
            for _ in 0..size {
                let v = rng.gen_range(0..values) as u32;
                b.add_edge(v, attr);
            }
        }
        b.build()
    }

    #[test]
    fn full_uniform_sampling_matches_exact() {
        let g = random_lake_graph(60, 12, 8, 1);
        let exact = betweenness_centrality(&g);
        let approx = approximate_betweenness(
            &g,
            ApproxBcConfig {
                samples: g.node_count(),
                strategy: SamplingStrategy::Uniform,
                seed: 7,
            },
            1,
        );
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e - a).abs() < 1e-6, "exact {e} vs full-sample approx {a}");
        }
    }

    #[test]
    fn sampled_estimate_recovers_top_ranking() {
        let g = random_lake_graph(300, 30, 12, 2);
        let exact = betweenness_centrality(&g);
        let approx = approximate_betweenness(
            &g,
            ApproxBcConfig {
                samples: g.node_count() / 3,
                strategy: SamplingStrategy::Uniform,
                seed: 3,
            },
            2,
        );
        let overlap = top_k_overlap(&exact, &approx, 10);
        assert!(overlap >= 0.6, "top-10 overlap too low: {overlap}");
    }

    #[test]
    fn degree_proportional_estimate_is_reasonable() {
        let g = random_lake_graph(200, 20, 10, 4);
        let exact = betweenness_centrality(&g);
        let approx = approximate_betweenness(
            &g,
            ApproxBcConfig {
                samples: g.node_count() / 2,
                strategy: SamplingStrategy::DegreeProportional,
                seed: 11,
            },
            1,
        );
        let overlap = top_k_overlap(&exact, &approx, 10);
        assert!(overlap >= 0.5, "top-10 overlap too low: {overlap}");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let g = random_lake_graph(100, 10, 8, 5);
        let cfg = ApproxBcConfig {
            samples: 20,
            strategy: SamplingStrategy::Uniform,
            seed: 42,
        };
        let a = approximate_betweenness(&g, cfg, 1);
        let b = approximate_betweenness(&g, cfg, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_is_bit_identical_across_thread_counts_and_runs() {
        let g = random_lake_graph(120, 12, 8, 6);
        let base = ApproxBcConfig {
            samples: 40,
            strategy: SamplingStrategy::Uniform,
            seed: 9,
        };
        let reference: Vec<u64> = approximate_betweenness(&g, base, 1)
            .iter()
            .map(|s| s.to_bits())
            .collect();
        for threads in [1, 2, 4, 8] {
            for run in 0..2 {
                let bits: Vec<u64> = approximate_betweenness(&g, base, threads)
                    .iter()
                    .map(|s| s.to_bits())
                    .collect();
                assert_eq!(bits, reference, "threads={threads} run={run}");
            }
        }
        // The component-scoped estimator holds the same contract.
        let pool: Vec<u32> = (0..g.node_count() as u32).collect();
        let within_ref: Vec<u64> = approximate_betweenness_within(&g, &pool, base, 1)
            .iter()
            .map(|s| s.to_bits())
            .collect();
        for threads in [2, 4, 8] {
            let bits: Vec<u64> = approximate_betweenness_within(&g, &pool, base, threads)
                .iter()
                .map(|s| s.to_bits())
                .collect();
            assert_eq!(bits, within_ref, "within threads={threads}");
        }
    }

    #[test]
    fn with_fraction_clamps_to_at_least_one() {
        let g = random_lake_graph(50, 5, 5, 8);
        let cfg = ApproxBcConfig::with_fraction(&g, 0.000001, 1);
        assert_eq!(cfg.samples, 1);
        let cfg = ApproxBcConfig::with_fraction(&g, 0.01, 1);
        assert!(cfg.samples >= 1);
    }

    #[test]
    fn with_fraction_clamps_to_unit_interval() {
        let g = random_lake_graph(50, 5, 5, 8);
        let n = g.node_count();
        // Degenerate fractions pin to the smallest useful sample, not zero.
        assert_eq!(ApproxBcConfig::with_fraction(&g, 0.0, 1).samples, 1);
        assert_eq!(ApproxBcConfig::with_fraction(&g, -3.5, 1).samples, 1);
        assert_eq!(ApproxBcConfig::with_fraction(&g, f64::NAN, 1).samples, 1);
        assert_eq!(
            ApproxBcConfig::with_fraction(&g, f64::INFINITY, 1).samples,
            1,
            "non-finite fractions are degenerate, not 'sample everything'"
        );
        // Fractions above 1 behave like 1: every node is a source.
        assert_eq!(ApproxBcConfig::with_fraction(&g, 1.0, 1).samples, n);
        assert_eq!(ApproxBcConfig::with_fraction(&g, 7.0, 1).samples, n);

        // And on an empty graph nothing panics, the estimate is just empty.
        let empty = BipartiteBuilder::new().build();
        let cfg = ApproxBcConfig::with_fraction(&empty, 0.0, 1);
        assert_eq!(cfg.samples, 1);
        assert!(approximate_betweenness(&empty, cfg, 1).is_empty());
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = BipartiteBuilder::new().build();
        assert!(approximate_betweenness(&g, ApproxBcConfig::default(), 1).is_empty());

        let mut b = BipartiteBuilder::new();
        b.add_value("v");
        b.add_attribute("a");
        let g = b.build();
        let scores = approximate_betweenness(
            &g,
            ApproxBcConfig {
                strategy: SamplingStrategy::DegreeProportional,
                ..ApproxBcConfig::default()
            },
            1,
        );
        assert_eq!(scores, vec![0.0, 0.0]);
    }

    #[test]
    fn top_k_overlap_bounds() {
        let a = vec![3.0, 2.0, 1.0, 0.0];
        let b = vec![0.0, 1.0, 2.0, 3.0];
        assert_eq!(top_k_overlap(&a, &a, 2), 1.0);
        assert_eq!(top_k_overlap(&a, &b, 1), 0.0);
        assert_eq!(top_k_overlap(&a, &b, 4), 1.0);
        assert_eq!(top_k_overlap(&[], &[], 3), 1.0);
    }
}
