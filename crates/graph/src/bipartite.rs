//! The bipartite value/attribute graph and its builder.
//!
//! Node ids are dense `u32`s. Value nodes occupy `0..value_count` and
//! attribute nodes occupy `value_count..value_count + attribute_count`; this
//! layout lets the centrality kernels use plain vectors indexed by node id
//! with no hashing on the hot path, which matters for Brandes' algorithm
//! whose inner loop touches every edge once per source.

use serde::{Deserialize, Serialize};

/// Which side of the bipartition a node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A data-value node.
    Value,
    /// An attribute (table column) node.
    Attribute,
}

/// Incrementally builds a [`BipartiteGraph`].
///
/// The builder accepts edges in any order, tolerates duplicate edges (they
/// are deduplicated at [`BipartiteBuilder::build`] time), and keeps optional
/// human-readable labels for diagnostics and experiment output.
#[derive(Debug, Default, Clone)]
pub struct BipartiteBuilder {
    value_labels: Vec<String>,
    attr_labels: Vec<String>,
    /// Edges as (value node id, attribute node id offset by value count at build time).
    edges: Vec<(u32, u32)>,
}

impl BipartiteBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with pre-allocated capacity.
    pub fn with_capacity(values: usize, attributes: usize, edges: usize) -> Self {
        BipartiteBuilder {
            value_labels: Vec::with_capacity(values),
            attr_labels: Vec::with_capacity(attributes),
            edges: Vec::with_capacity(edges),
        }
    }

    /// Add a value node and return its id (dense, starting at 0).
    pub fn add_value(&mut self, label: impl Into<String>) -> u32 {
        let id = self.value_labels.len() as u32;
        self.value_labels.push(label.into());
        id
    }

    /// Add an attribute node and return its *attribute index* (dense,
    /// starting at 0 — **not** the final node id, which is offset by the
    /// number of value nodes when the graph is built).
    pub fn add_attribute(&mut self, label: impl Into<String>) -> u32 {
        let id = self.attr_labels.len() as u32;
        self.attr_labels.push(label.into());
        id
    }

    /// Connect a value node to an attribute node (by attribute index).
    ///
    /// # Panics
    /// Panics if either id has not been allocated by this builder.
    pub fn add_edge(&mut self, value: u32, attribute: u32) {
        assert!(
            (value as usize) < self.value_labels.len(),
            "value node {value} was never added"
        );
        assert!(
            (attribute as usize) < self.attr_labels.len(),
            "attribute node {attribute} was never added"
        );
        self.edges.push((value, attribute));
    }

    /// Number of value nodes added so far.
    pub fn value_count(&self) -> usize {
        self.value_labels.len()
    }

    /// Number of attribute nodes added so far.
    pub fn attribute_count(&self) -> usize {
        self.attr_labels.len()
    }

    /// Finalize into an immutable CSR graph. Duplicate edges are removed.
    pub fn build(self) -> BipartiteGraph {
        let n_values = self.value_labels.len();
        let n_attrs = self.attr_labels.len();
        let n = n_values + n_attrs;

        let mut edges = self.edges;
        edges.sort_unstable();
        edges.dedup();

        // Degree counting (each undirected edge contributes to both ends).
        let mut degree = vec![0u32; n];
        for &(v, a) in &edges {
            degree[v as usize] += 1;
            degree[n_values + a as usize] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        for d in &degree {
            let last = *offsets.last().expect("offsets never empty");
            offsets.push(last + u64::from(*d));
        }
        let m2 = *offsets.last().expect("offsets never empty") as usize;
        let mut adjacency = vec![0u32; m2];
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        for &(v, a) in &edges {
            let attr_node = (n_values + a as usize) as u32;
            adjacency[cursor[v as usize] as usize] = attr_node;
            cursor[v as usize] += 1;
            adjacency[cursor[attr_node as usize] as usize] = v;
            cursor[attr_node as usize] += 1;
        }
        // Sort each adjacency list for deterministic iteration and binary search.
        for node in 0..n {
            let (s, e) = (offsets[node] as usize, offsets[node + 1] as usize);
            adjacency[s..e].sort_unstable();
        }

        BipartiteGraph {
            n_values,
            n_attrs,
            offsets,
            adjacency,
            value_labels: self.value_labels,
            attr_labels: self.attr_labels,
        }
    }
}

/// An immutable bipartite graph in CSR form.
///
/// * Value nodes: ids `0..value_count()`.
/// * Attribute nodes: ids `value_count()..node_count()`.
///
/// All adjacency queries are O(1) + O(degree) slices into a single shared
/// buffer, and the whole structure is `Send + Sync` so centrality kernels can
/// share it across threads without cloning. Lake mutations are folded in by
/// [`BipartiteGraph::apply_delta`](crate::delta), which splices the CSR
/// arrays instead of rebuilding them.
///
/// ```
/// use dn_graph::bipartite::BipartiteBuilder;
///
/// let mut builder = BipartiteBuilder::new();
/// let jaguar = builder.add_value("JAGUAR");
/// let panda = builder.add_value("PANDA");
/// let zoo = builder.add_attribute("zoo.animal");
/// let cars = builder.add_attribute("cars.brand");
/// builder.add_edge(jaguar, zoo);
/// builder.add_edge(jaguar, cars);
/// builder.add_edge(panda, zoo);
///
/// let graph = builder.build();
/// assert_eq!(graph.node_count(), 4);
/// assert_eq!(graph.degree(jaguar), 2);
/// // Attribute node ids are offset by the number of value nodes.
/// assert!(graph.has_edge(jaguar, graph.attribute_node(cars)));
/// assert_eq!(graph.value_neighbors(jaguar), vec![panda]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BipartiteGraph {
    n_values: usize,
    n_attrs: usize,
    /// CSR offsets, length `node_count() + 1`.
    offsets: Vec<u64>,
    /// Concatenated adjacency lists, length `2 * edge_count()`.
    adjacency: Vec<u32>,
    value_labels: Vec<String>,
    attr_labels: Vec<String>,
}

impl BipartiteGraph {
    /// Construct a graph directly from CSR parts. Used by the incremental
    /// delta machinery, which patches the arrays instead of re-sorting the
    /// whole edge list; callers must uphold the CSR invariants checked by
    /// [`BipartiteGraph::validate`].
    pub(crate) fn from_csr_parts(
        n_values: usize,
        n_attrs: usize,
        offsets: Vec<u64>,
        adjacency: Vec<u32>,
        value_labels: Vec<String>,
        attr_labels: Vec<String>,
    ) -> Self {
        let graph = BipartiteGraph {
            n_values,
            n_attrs,
            offsets,
            adjacency,
            value_labels,
            attr_labels,
        };
        debug_assert_eq!(graph.validate(), Ok(()));
        graph
    }

    /// Owned copies of the value and attribute label tables.
    pub(crate) fn clone_labels(&self) -> (Vec<String>, Vec<String>) {
        (self.value_labels.clone(), self.attr_labels.clone())
    }

    /// Reassemble a graph from persisted CSR parts, running the full
    /// [`BipartiteGraph::validate`] check (offset monotonicity, sorted and
    /// deduplicated adjacency, bipartite-ness, edge symmetry) before the
    /// graph becomes observable. This is the loading counterpart of
    /// [`BipartiteGraph::csr_offsets`] / [`BipartiteGraph::csr_adjacency`]:
    /// the persistence layer must never hand out a graph whose invariants
    /// the centrality kernels would trip over.
    ///
    /// # Errors
    /// A description of the first violated invariant.
    pub fn try_from_parts(
        n_values: usize,
        n_attrs: usize,
        offsets: Vec<u64>,
        adjacency: Vec<u32>,
        value_labels: Vec<String>,
        attr_labels: Vec<String>,
    ) -> Result<Self, String> {
        if value_labels.len() != n_values {
            return Err(format!(
                "{} value labels for {n_values} value nodes",
                value_labels.len()
            ));
        }
        if attr_labels.len() != n_attrs {
            return Err(format!(
                "{} attribute labels for {n_attrs} attribute nodes",
                attr_labels.len()
            ));
        }
        let graph = BipartiteGraph {
            n_values,
            n_attrs,
            offsets,
            adjacency,
            value_labels,
            attr_labels,
        };
        if graph.offsets.len() != graph.node_count() + 1 {
            return Err(format!(
                "offset array has {} entries for {} nodes",
                graph.offsets.len(),
                graph.node_count()
            ));
        }
        for &n in &graph.adjacency {
            if (n as usize) >= graph.node_count() {
                return Err(format!("adjacency references node {n} out of range"));
            }
        }
        graph.validate()?;
        Ok(graph)
    }

    /// The CSR offset array (length `node_count() + 1`), for persistence.
    pub fn csr_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The concatenated CSR adjacency lists (length `2 * edge_count()`),
    /// for persistence.
    pub fn csr_adjacency(&self) -> &[u32] {
        &self.adjacency
    }

    /// The value-node label table, indexed by value node id.
    pub fn value_labels(&self) -> &[String] {
        &self.value_labels
    }

    /// The attribute-node label table, indexed by attribute index.
    pub fn attribute_labels(&self) -> &[String] {
        &self.attr_labels
    }

    /// Number of value nodes.
    pub fn value_count(&self) -> usize {
        self.n_values
    }

    /// Number of attribute nodes.
    pub fn attribute_count(&self) -> usize {
        self.n_attrs
    }

    /// Total number of nodes (values + attributes).
    pub fn node_count(&self) -> usize {
        self.n_values + self.n_attrs
    }

    /// Number of (undirected, deduplicated) edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// The side of the bipartition a node id belongs to.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn node_kind(&self, node: u32) -> NodeKind {
        assert!(
            (node as usize) < self.node_count(),
            "node {node} out of range"
        );
        if (node as usize) < self.n_values {
            NodeKind::Value
        } else {
            NodeKind::Attribute
        }
    }

    /// Whether a node id denotes a value node.
    #[inline]
    pub fn is_value_node(&self, node: u32) -> bool {
        (node as usize) < self.n_values
    }

    /// The node id of the `i`-th attribute.
    #[inline]
    pub fn attribute_node(&self, attr_index: u32) -> u32 {
        self.n_values as u32 + attr_index
    }

    /// The attribute index of an attribute node id, if it is one.
    pub fn attribute_index(&self, node: u32) -> Option<u32> {
        if self.is_value_node(node) || (node as usize) >= self.node_count() {
            None
        } else {
            Some(node - self.n_values as u32)
        }
    }

    /// Neighbors of a node (attribute nodes for a value node and vice versa).
    #[inline]
    pub fn neighbors(&self, node: u32) -> &[u32] {
        let s = self.offsets[node as usize] as usize;
        let e = self.offsets[node as usize + 1] as usize;
        &self.adjacency[s..e]
    }

    /// Degree of a node.
    #[inline]
    pub fn degree(&self, node: u32) -> usize {
        (self.offsets[node as usize + 1] - self.offsets[node as usize]) as usize
    }

    /// Label of a value node.
    pub fn value_label(&self, value: u32) -> &str {
        &self.value_labels[value as usize]
    }

    /// Label of an attribute node (by attribute index).
    pub fn attribute_label(&self, attr_index: u32) -> &str {
        &self.attr_labels[attr_index as usize]
    }

    /// Label of any node id.
    pub fn node_label(&self, node: u32) -> &str {
        if self.is_value_node(node) {
            self.value_label(node)
        } else {
            self.attribute_label(node - self.n_values as u32)
        }
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = u32> {
        0..self.node_count() as u32
    }

    /// Iterate over all value node ids.
    pub fn value_nodes(&self) -> impl Iterator<Item = u32> {
        0..self.n_values as u32
    }

    /// Iterate over all attribute node ids.
    pub fn attribute_nodes(&self) -> impl Iterator<Item = u32> {
        self.n_values as u32..self.node_count() as u32
    }

    /// Whether an edge exists between two nodes (binary search, O(log deg)).
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        let (small, large) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(small).binary_search(&large).is_ok()
    }

    /// The *value neighbors* N(v) of a value node: all other value nodes that
    /// share at least one attribute with it (paths of length two), in sorted
    /// order without duplicates.
    pub fn value_neighbors(&self, value: u32) -> Vec<u32> {
        debug_assert!(self.is_value_node(value));
        let mut out = Vec::new();
        for &attr in self.neighbors(value) {
            for &other in self.neighbors(attr) {
                if other != value {
                    out.push(other);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The cardinality |N(v)| of a value node (number of distinct value
    /// neighbors). This is the quantity the paper calls the cardinality of a
    /// homograph.
    pub fn value_neighbor_count(&self, value: u32) -> usize {
        self.value_neighbors(value).len()
    }

    /// The number of attributes a value node occurs in (its degree).
    pub fn value_attribute_count(&self, value: u32) -> usize {
        self.degree(value)
    }

    /// Consistency check used by tests and debug assertions: CSR offsets are
    /// monotone, adjacency lists are sorted, deduplicated, bipartite, and
    /// symmetric.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.node_count() + 1 {
            return Err("offset array has wrong length".into());
        }
        for w in self.offsets.windows(2) {
            if w[0] > w[1] {
                return Err("offsets are not monotone".into());
            }
        }
        if *self.offsets.last().expect("non-empty") as usize != self.adjacency.len() {
            return Err("final offset does not match adjacency length".into());
        }
        for node in self.nodes() {
            let neigh = self.neighbors(node);
            for w in neigh.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("adjacency of {node} not sorted/deduped"));
                }
            }
            for &other in neigh {
                if self.is_value_node(node) == self.is_value_node(other) {
                    return Err(format!("edge {node}-{other} is not bipartite"));
                }
                if !self.neighbors(other).contains(&node) {
                    return Err(format!("edge {node}-{other} is not symmetric"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Builds the bipartite graph of the paper's running example (Fig. 3b):
    /// 4 attributes, 8 values.
    pub(crate) fn figure3b() -> (BipartiteGraph, std::collections::HashMap<String, u32>) {
        let mut b = BipartiteBuilder::new();
        let mut ids = std::collections::HashMap::new();
        let values = [
            "FIAT", "TOYOTA", "APPLE", "PUMA", "JAGUAR", "PELICAN", "PANDA", "LEMUR",
        ];
        for v in values {
            ids.insert(v.to_string(), b.add_value(v));
        }
        let t2_name = b.add_attribute("T2.name");
        let t1_at_risk = b.add_attribute("T1.At Risk");
        let t4_name = b.add_attribute("T4.Name");
        let t3_c2 = b.add_attribute("T3.C2");
        for v in ["PANDA", "LEMUR", "JAGUAR"] {
            b.add_edge(ids[v], t2_name);
        }
        for v in ["PANDA", "PUMA", "JAGUAR", "PELICAN"] {
            b.add_edge(ids[v], t1_at_risk);
        }
        for v in ["JAGUAR", "PUMA", "APPLE", "TOYOTA"] {
            b.add_edge(ids[v], t4_name);
        }
        for v in ["JAGUAR", "TOYOTA", "FIAT"] {
            b.add_edge(ids[v], t3_c2);
        }
        (b.build(), ids)
    }

    #[test]
    fn build_and_validate_figure3b() {
        let (g, ids) = figure3b();
        assert_eq!(g.value_count(), 8);
        assert_eq!(g.attribute_count(), 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 14);
        g.validate().unwrap();
        assert_eq!(g.degree(ids["JAGUAR"]), 4);
        assert_eq!(g.degree(ids["PANDA"]), 2);
        assert_eq!(g.degree(ids["FIAT"]), 1);
    }

    #[test]
    fn node_kinds_and_labels() {
        let (g, ids) = figure3b();
        assert_eq!(g.node_kind(ids["JAGUAR"]), NodeKind::Value);
        let attr_node = g.attribute_node(0);
        assert_eq!(g.node_kind(attr_node), NodeKind::Attribute);
        assert_eq!(g.node_label(ids["JAGUAR"]), "JAGUAR");
        assert_eq!(g.node_label(attr_node), "T2.name");
        assert_eq!(g.attribute_index(attr_node), Some(0));
        assert_eq!(g.attribute_index(ids["JAGUAR"]), None);
    }

    #[test]
    fn duplicate_edges_are_removed() {
        let mut b = BipartiteBuilder::new();
        let v = b.add_value("v");
        let a = b.add_attribute("a");
        b.add_edge(v, a);
        b.add_edge(v, a);
        b.add_edge(v, a);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(v), 1);
        g.validate().unwrap();
    }

    #[test]
    fn has_edge_uses_symmetric_lookup() {
        let (g, ids) = figure3b();
        let t3_c2 = g.attribute_node(3);
        assert!(g.has_edge(ids["FIAT"], t3_c2));
        assert!(g.has_edge(t3_c2, ids["FIAT"]));
        assert!(!g.has_edge(ids["FIAT"], g.attribute_node(0)));
    }

    #[test]
    fn value_neighbors_of_jaguar_span_all_values() {
        let (g, ids) = figure3b();
        // Jaguar appears in all four attributes, so it neighbors every other value.
        assert_eq!(g.value_neighbor_count(ids["JAGUAR"]), 7);
        // Fiat only co-occurs with Jaguar and Toyota (T3.C2).
        let fiat_neighbors = g.value_neighbors(ids["FIAT"]);
        let names: Vec<&str> = fiat_neighbors.iter().map(|&n| g.value_label(n)).collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"JAGUAR"));
        assert!(names.contains(&"TOYOTA"));
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = BipartiteBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn isolated_nodes_are_allowed() {
        let mut b = BipartiteBuilder::new();
        b.add_value("lonely");
        b.add_attribute("empty_column");
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(0), 0);
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn edge_to_unknown_node_panics() {
        let mut b = BipartiteBuilder::new();
        let v = b.add_value("v");
        b.add_edge(v, 3);
    }

    #[test]
    fn serde_round_trip() {
        let (g, _) = figure3b();
        let json = serde_json::to_string(&g).unwrap();
        let back: BipartiteGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        back.validate().unwrap();
    }
}
