//! Connected components of the bipartite graph.
//!
//! Component structure is useful diagnostics for a lake graph: a value whose
//! removal would split a component is exactly the kind of "pivotal" node the
//! paper's Example 3.2 describes, and experiment harnesses use component
//! sizes to sanity-check generated benchmarks.

use std::collections::VecDeque;

use crate::bipartite::BipartiteGraph;

/// The result of a connected-components computation.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component id per node (dense, starting at 0).
    pub labels: Vec<u32>,
    /// Number of nodes per component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Component id of a node.
    pub fn component_of(&self, node: u32) -> u32 {
        self.labels[node as usize]
    }

    /// Whether two nodes are in the same component.
    pub fn connected(&self, a: u32, b: u32) -> bool {
        self.labels[a as usize] == self.labels[b as usize]
    }

    /// Check that this labeling is a valid connected-components result for
    /// `graph`: one label per node, labels dense in `0..count()`, both ends
    /// of every edge sharing a label, and `sizes` matching the label
    /// histogram. Used by the persistence layer to validate labels loaded
    /// from disk without re-running the BFS.
    ///
    /// Note this verifies *consistency*, not minimality — it accepts a
    /// labeling that splits one true component in two only if no edge
    /// crosses the split, which cannot happen for edge-respecting labels
    /// produced by any components algorithm over the same graph.
    ///
    /// # Errors
    /// A description of the first violated invariant.
    pub fn validate_against(&self, graph: &BipartiteGraph) -> Result<(), String> {
        if self.labels.len() != graph.node_count() {
            return Err(format!(
                "{} labels for {} nodes",
                self.labels.len(),
                graph.node_count()
            ));
        }
        let mut histogram = vec![0usize; self.sizes.len()];
        for (node, &label) in self.labels.iter().enumerate() {
            let slot = histogram
                .get_mut(label as usize)
                .ok_or_else(|| format!("node {node} has label {label} >= {}", self.sizes.len()))?;
            *slot += 1;
        }
        if histogram != self.sizes {
            return Err("component sizes do not match the label histogram".to_owned());
        }
        if histogram.contains(&0) {
            return Err("component ids are not dense".to_owned());
        }
        for node in graph.nodes() {
            for &other in graph.neighbors(node) {
                if self.labels[node as usize] != self.labels[other as usize] {
                    return Err(format!(
                        "edge {node}-{other} crosses components {} and {}",
                        self.labels[node as usize], self.labels[other as usize]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Compute connected components with BFS.
pub fn connected_components(graph: &BipartiteGraph) -> Components {
    let n = graph.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = VecDeque::new();
    for start in graph.nodes() {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        let component = sizes.len() as u32;
        let mut size = 0usize;
        labels[start as usize] = component;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            size += 1;
            for &w in graph.neighbors(v) {
                if labels[w as usize] == u32::MAX {
                    labels[w as usize] = component;
                    queue.push_back(w);
                }
            }
        }
        sizes.push(size);
    }
    Components { labels, sizes }
}

/// Number of connected components after removing one value node.
///
/// Used in tests and diagnostics to verify the "pivotal node" intuition: for
/// a true bridge value, removing it increases the component count.
pub fn components_without_value(graph: &BipartiteGraph, removed: u32) -> usize {
    let n = graph.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0usize;
    let mut queue = VecDeque::new();
    for start in graph.nodes() {
        if start == removed || labels[start as usize] != u32::MAX {
            continue;
        }
        count += 1;
        labels[start as usize] = count as u32;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in graph.neighbors(v) {
                if w != removed && labels[w as usize] == u32::MAX {
                    labels[w as usize] = count as u32;
                    queue.push_back(w);
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::BipartiteBuilder;

    #[test]
    fn single_component() {
        let (g, _) = crate::bipartite::tests::figure3b();
        let comps = connected_components(&g);
        assert_eq!(comps.count(), 1);
        assert_eq!(comps.largest(), g.node_count());
        assert!(comps.connected(0, g.attribute_node(0)));
    }

    #[test]
    fn two_disjoint_stars() {
        let mut b = BipartiteBuilder::new();
        let a0 = b.add_attribute("a0");
        let a1 = b.add_attribute("a1");
        for i in 0..3 {
            let v = b.add_value(format!("x{i}"));
            b.add_edge(v, a0);
        }
        for i in 0..2 {
            let v = b.add_value(format!("y{i}"));
            b.add_edge(v, a1);
        }
        let g = b.build();
        let comps = connected_components(&g);
        assert_eq!(comps.count(), 2);
        assert_eq!(comps.largest(), 4);
        assert!(!comps.connected(0, 3));
    }

    #[test]
    fn isolated_nodes_are_their_own_components() {
        let mut b = BipartiteBuilder::new();
        b.add_value("v0");
        b.add_value("v1");
        b.add_attribute("a0");
        let g = b.build();
        let comps = connected_components(&g);
        assert_eq!(comps.count(), 3);
        assert_eq!(comps.largest(), 1);
    }

    #[test]
    fn removing_bridge_value_splits_graph() {
        // Two attributes sharing only the value "bridge".
        let mut b = BipartiteBuilder::new();
        let bridge = b.add_value("bridge");
        let a0 = b.add_attribute("a0");
        let a1 = b.add_attribute("a1");
        for i in 0..3 {
            let v = b.add_value(format!("l{i}"));
            b.add_edge(v, a0);
            let w = b.add_value(format!("r{i}"));
            b.add_edge(w, a1);
        }
        b.add_edge(bridge, a0);
        b.add_edge(bridge, a1);
        let g = b.build();
        assert_eq!(connected_components(&g).count(), 1);
        assert_eq!(components_without_value(&g, bridge), 2);
        // Removing a non-bridge value does not split anything.
        assert_eq!(components_without_value(&g, 1), 1);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteBuilder::new().build();
        let comps = connected_components(&g);
        assert_eq!(comps.count(), 0);
        assert_eq!(comps.largest(), 0);
    }
}
