//! Incremental maintenance of the bipartite graph under lake mutations.
//!
//! A static [`BipartiteGraph`] is rebuilt from scratch for every lake change:
//! re-sort all `m` edges, re-count all degrees, re-allocate all labels. This
//! module instead *patches* the CSR representation with a [`GraphDelta`] —
//! the edge-level difference produced by an applied lake mutation — in
//! `O(n + m + |Δ|)` with no global edge sort, and reports exactly which parts
//! of the graph the mutation dirtied:
//!
//! * [`AppliedDelta::dirty_values`] — the value nodes whose 2-hop
//!   neighborhood changed, i.e. the only nodes whose local clustering
//!   coefficient can have changed (Equation 1 depends on `N(u)` and `N(v)`
//!   for `v ∈ N(u)` only).
//! * [`AppliedDelta::components`] / [`AppliedDelta::touched_components`] —
//!   connected components maintained incrementally (only components
//!   containing an endpoint of a changed edge are re-explored), plus the set
//!   of component ids whose structure changed. Betweenness centrality never
//!   crosses components, so scores outside the touched set are still exact.
//!
//! Node-id stability: value node ids and attribute *indexes* never change
//! across a delta — new nodes are appended. Attribute node *ids* shift by
//! the number of appended value nodes (the id layout keeps values first), so
//! all attribute bookkeeping in deltas uses indexes, not node ids.

use std::collections::HashMap;

use crate::bipartite::BipartiteGraph;
use crate::components::Components;

/// The edge-level difference to apply to a [`BipartiteGraph`].
///
/// Edges are `(value node id, attribute index)` pairs — attribute *indexes*
/// (dense per side) rather than node ids, because attribute node ids shift
/// when value nodes are appended. Ids in `added_edges` may refer to nodes
/// appended by this same delta (`new_values` / `new_attributes`).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GraphDelta {
    /// Labels of value nodes to append (ids `old_value_count..`).
    pub new_values: Vec<String>,
    /// Labels of attribute nodes to append (indexes `old_attr_count..`).
    pub new_attributes: Vec<String>,
    /// Edges to insert, as `(value node id, attribute index)`.
    pub added_edges: Vec<(u32, u32)>,
    /// Edges to delete, as `(value node id, attribute index)`. Must exist.
    pub removed_edges: Vec<(u32, u32)>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.new_values.is_empty()
            && self.new_attributes.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
    }
}

/// The result of [`BipartiteGraph::apply_delta`].
#[derive(Debug, Clone)]
pub struct AppliedDelta {
    /// The patched graph.
    pub graph: BipartiteGraph,
    /// Value nodes (new id space) whose 2-hop neighborhood changed — the
    /// exact invalidation set for local clustering coefficients. Sorted.
    pub dirty_values: Vec<u32>,
    /// The subset of [`AppliedDelta::dirty_values`] whose **own** value
    /// neighbor set `N(u)` changed (occupants of touched attributes plus
    /// changed-edge endpoints). The remaining dirty values only saw a
    /// neighbor's neighborhood change, which admits much cheaper term-level
    /// LCC patching ([`crate::lcc::patch_lcc_value_neighbors`]). Sorted.
    pub seed_values: Vec<u32>,
    /// Nodes (new id space) incident to a changed edge, plus appended nodes.
    /// Sorted.
    pub touched_nodes: Vec<u32>,
    /// Connected components of the patched graph (maintained incrementally
    /// when the previous components were supplied).
    pub components: Components,
    /// Component ids (in `components`) whose structure changed. BC scores of
    /// nodes in other components are unaffected by the delta. Sorted.
    pub touched_components: Vec<u32>,
}

impl AppliedDelta {
    /// All nodes belonging to a touched component, in ascending id order.
    pub fn touched_component_nodes(&self) -> Vec<u32> {
        nodes_in_components(&self.components, &self.touched_components)
    }
}

/// All nodes whose component id is in `component_ids` (sorted ascending).
pub fn nodes_in_components(components: &Components, component_ids: &[u32]) -> Vec<u32> {
    let mut member = vec![false; components.sizes.len()];
    for &c in component_ids {
        if let Some(m) = member.get_mut(c as usize) {
            *m = true;
        }
    }
    components
        .labels
        .iter()
        .enumerate()
        .filter(|&(_, &label)| member.get(label as usize).copied().unwrap_or(false))
        .map(|(i, _)| i as u32)
        .collect()
}

impl BipartiteGraph {
    /// Apply an edge-level delta, producing the patched graph and the dirty
    /// regions downstream measures must recompute.
    ///
    /// The CSR arrays are spliced per node — unchanged adjacency runs are
    /// copied, changed nodes get a sorted merge of (old ∖ removed) ∪ added —
    /// so no global edge sort happens. When `old_components` is given, the
    /// component structure is updated incrementally: only components
    /// containing a changed-edge endpoint (plus appended nodes) are
    /// re-explored by BFS; all other components keep their node sets.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency found: an edge
    /// endpoint out of range, an added edge that already exists, a removed
    /// edge that does not exist, or a duplicate entry inside the delta.
    pub fn apply_delta(
        &self,
        delta: &GraphDelta,
        old_components: Option<&Components>,
    ) -> Result<AppliedDelta, String> {
        let old_nv = self.value_count();
        let old_na = self.attribute_count();
        let new_nv = old_nv + delta.new_values.len();
        let new_na = old_na + delta.new_attributes.len();
        let n_new = new_nv + new_na;

        // ---- validate and index the changes (new id space) ---------------
        let mut added: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut removed: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(v, ai) in &delta.added_edges {
            if (v as usize) >= new_nv {
                return Err(format!("added edge references value node {v} out of range"));
            }
            if (ai as usize) >= new_na {
                return Err(format!(
                    "added edge references attribute index {ai} out of range"
                ));
            }
            if (v as usize) < old_nv
                && (ai as usize) < old_na
                && self.has_edge(v, (old_nv as u32) + ai)
            {
                return Err(format!("added edge ({v}, a{ai}) already exists"));
            }
            let a_node = (new_nv as u32) + ai;
            added.entry(v).or_default().push(a_node);
            added.entry(a_node).or_default().push(v);
        }
        for &(v, ai) in &delta.removed_edges {
            if (v as usize) >= old_nv || (ai as usize) >= old_na {
                return Err(format!(
                    "removed edge ({v}, a{ai}) references a node that does not pre-exist"
                ));
            }
            if !self.has_edge(v, (old_nv as u32) + ai) {
                return Err(format!("removed edge ({v}, a{ai}) does not exist"));
            }
            let a_node = (new_nv as u32) + ai;
            removed.entry(v).or_default().push(a_node);
            removed.entry(a_node).or_default().push(v);
        }
        for (node, list) in added.iter_mut().chain(removed.iter_mut()) {
            list.sort_unstable();
            let before = list.len();
            list.dedup();
            if list.len() != before {
                return Err(format!("duplicate delta entry at node {node}"));
            }
        }

        // ---- old-graph side of the dirty region (before patching) --------
        // Seeds: every value that occurs (before or after) in a touched
        // attribute. Start with the old-graph occupants and old 2-hop
        // neighborhoods; the new-graph side is added after the patch.
        let shift = (new_nv - old_nv) as u32;
        let touched_attr_indexes: Vec<u32> = {
            let mut v: Vec<u32> = delta
                .added_edges
                .iter()
                .chain(delta.removed_edges.iter())
                .map(|&(_, ai)| ai)
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut dirty_stamp = vec![false; new_nv];
        let mut seeds: Vec<u32> = Vec::new();
        let mark_seed = |stamp: &mut Vec<bool>, seeds: &mut Vec<u32>, v: u32| {
            if !stamp[v as usize] {
                stamp[v as usize] = true;
                seeds.push(v);
            }
        };
        for &ai in &touched_attr_indexes {
            if (ai as usize) < old_na {
                for &v in self.neighbors((old_nv as u32) + ai) {
                    mark_seed(&mut dirty_stamp, &mut seeds, v);
                }
            }
        }
        for &(v, _) in delta.added_edges.iter().chain(delta.removed_edges.iter()) {
            mark_seed(&mut dirty_stamp, &mut seeds, v);
        }
        // Old-graph value neighbors of the seeds.
        let mut dirty: Vec<u32> = seeds.clone();
        for &s in &seeds {
            if (s as usize) >= old_nv {
                continue;
            }
            for &attr in self.neighbors(s) {
                for &w in self.neighbors(attr) {
                    if !dirty_stamp[w as usize] {
                        dirty_stamp[w as usize] = true;
                        dirty.push(w);
                    }
                }
            }
        }

        // ---- splice the CSR ----------------------------------------------
        let mut offsets: Vec<u64> = Vec::with_capacity(n_new + 1);
        offsets.push(0);
        let extra: usize = 2 * delta.added_edges.len();
        let mut adjacency: Vec<u32> = Vec::with_capacity(self.edge_count() * 2 + extra);
        let empty: [u32; 0] = [];
        for node in 0..n_new as u32 {
            // Old neighbors of this node, mapped into the new id space.
            let (old_node, is_value) = if (node as usize) < new_nv {
                (((node as usize) < old_nv).then_some(node), true)
            } else {
                let ai = node - new_nv as u32;
                (
                    ((ai as usize) < old_na).then_some((old_nv as u32) + ai),
                    false,
                )
            };
            let old_neighbors: &[u32] = match old_node {
                Some(o) => self.neighbors(o),
                None => &empty,
            };
            let rem = removed.get(&node).map(Vec::as_slice).unwrap_or(&empty);
            let add = added.get(&node).map(Vec::as_slice).unwrap_or(&empty);
            // Merge (old ∖ removed) with added; attribute-node neighbors of a
            // value node must be shifted, which preserves sorted order.
            let mut ri = 0usize;
            let mut aj = 0usize;
            for &o in old_neighbors {
                let mapped = if is_value { o + shift } else { o };
                if ri < rem.len() && rem[ri] == mapped {
                    ri += 1;
                    continue;
                }
                while aj < add.len() && add[aj] < mapped {
                    adjacency.push(add[aj]);
                    aj += 1;
                }
                // `add[aj] == mapped` can't happen: validated as "already
                // exists" above.
                adjacency.push(mapped);
            }
            while aj < add.len() {
                adjacency.push(add[aj]);
                aj += 1;
            }
            debug_assert_eq!(ri, rem.len(), "all removals consumed at node {node}");
            offsets.push(adjacency.len() as u64);
        }

        let (mut value_labels, mut attr_labels) = self.clone_labels();
        value_labels.extend(delta.new_values.iter().cloned());
        attr_labels.extend(delta.new_attributes.iter().cloned());
        let graph = BipartiteGraph::from_csr_parts(
            new_nv,
            new_na,
            offsets,
            adjacency,
            value_labels,
            attr_labels,
        );

        // ---- new-graph side of the dirty region --------------------------
        // The seed set is already complete: every new-graph occupant of a
        // touched attribute either held that edge before (old-occupant sweep
        // above) or gained it via `added_edges` (endpoint sweep above).
        #[cfg(debug_assertions)]
        for &ai in &touched_attr_indexes {
            for &v in graph.neighbors((new_nv as u32) + ai) {
                debug_assert!(
                    dirty_stamp[v as usize],
                    "new occupant {v} of touched attribute a{ai} was not seeded"
                );
            }
        }
        for &s in &seeds {
            for &attr in graph.neighbors(s) {
                for &w in graph.neighbors(attr) {
                    if !dirty_stamp[w as usize] {
                        dirty_stamp[w as usize] = true;
                        dirty.push(w);
                    }
                }
            }
        }
        dirty.sort_unstable();
        seeds.sort_unstable();

        // ---- touched nodes ------------------------------------------------
        let mut touched_nodes: Vec<u32> = Vec::new();
        for &(v, ai) in delta.added_edges.iter().chain(delta.removed_edges.iter()) {
            touched_nodes.push(v);
            touched_nodes.push((new_nv as u32) + ai);
        }
        touched_nodes.extend(old_nv as u32..new_nv as u32);
        touched_nodes.extend((new_nv + old_na) as u32..n_new as u32);
        touched_nodes.sort_unstable();
        touched_nodes.dedup();

        // ---- components ----------------------------------------------------
        let (components, touched_components) =
            update_components(&graph, old_components, old_nv, shift, &touched_nodes);

        Ok(AppliedDelta {
            graph,
            dirty_values: dirty,
            seed_values: seeds,
            touched_nodes,
            components,
            touched_components,
        })
    }
}

/// Incrementally update a component labeling after a delta.
///
/// `old` is the labeling of the pre-delta graph (`None` forces a fresh BFS),
/// `old_nv` the pre-delta value count and `shift` the attribute-node id
/// shift. Components containing no touched node keep their node sets; ids
/// are re-compacted, so they are not comparable across calls.
fn update_components(
    graph: &BipartiteGraph,
    old: Option<&Components>,
    old_nv: usize,
    shift: u32,
    touched_nodes: &[u32],
) -> (Components, Vec<u32>) {
    let n = graph.node_count();
    const UNLABELED: u32 = u32::MAX;
    let mut labels = vec![UNLABELED; n];
    let mut next_fresh = 0u32;
    if let Some(old) = old {
        // Remap old labels into the new id space.
        labels[..old_nv].copy_from_slice(&old.labels[..old_nv]);
        for old_node in old_nv..old.labels.len() {
            labels[old_node + shift as usize] = old.labels[old_node];
        }
        next_fresh = old.sizes.len() as u32;
        // Invalidate every component containing a touched node.
        let mut invalid = vec![false; old.sizes.len()];
        for &t in touched_nodes {
            let l = labels[t as usize];
            if l != UNLABELED {
                invalid[l as usize] = true;
            }
        }
        for label in labels.iter_mut() {
            if *label != UNLABELED && invalid[*label as usize] {
                *label = UNLABELED;
            }
        }
    }
    // BFS-relabel everything unlabeled. Untouched components never share an
    // edge with an unlabeled node, so the sweep only explores dirty regions.
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as u32 {
        if labels[start as usize] != UNLABELED {
            continue;
        }
        let fresh = next_fresh;
        next_fresh += 1;
        labels[start as usize] = fresh;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in graph.neighbors(v) {
                if labels[w as usize] == UNLABELED {
                    labels[w as usize] = fresh;
                    queue.push_back(w);
                }
            }
        }
    }
    // Compact ids to dense 0..k and count sizes.
    let mut dense: HashMap<u32, u32> = HashMap::new();
    let mut sizes: Vec<usize> = Vec::new();
    for label in labels.iter_mut() {
        let next = sizes.len() as u32;
        let id = *dense.entry(*label).or_insert_with(|| {
            sizes.push(0);
            next
        });
        sizes[id as usize] += 1;
        *label = id;
    }
    let components = Components { labels, sizes };
    let mut touched_components: Vec<u32> = touched_nodes
        .iter()
        .map(|&t| components.labels[t as usize])
        .collect();
    touched_components.sort_unstable();
    touched_components.dedup();
    (components, touched_components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::BipartiteBuilder;
    use crate::components::connected_components;

    /// Rebuild a reference graph from scratch out of explicit edges.
    fn build(value_labels: &[&str], attr_labels: &[&str], edges: &[(u32, u32)]) -> BipartiteGraph {
        let mut b = BipartiteBuilder::new();
        for v in value_labels {
            b.add_value(*v);
        }
        for a in attr_labels {
            b.add_attribute(*a);
        }
        for &(v, a) in edges {
            b.add_edge(v, a);
        }
        b.build()
    }

    fn assert_same_graph(patched: &BipartiteGraph, reference: &BipartiteGraph) {
        patched.validate().unwrap();
        assert_eq!(patched.value_count(), reference.value_count());
        assert_eq!(patched.attribute_count(), reference.attribute_count());
        assert_eq!(patched.edge_count(), reference.edge_count());
        for node in patched.nodes() {
            assert_eq!(
                patched.neighbors(node),
                reference.neighbors(node),
                "adjacency of node {node} diverged"
            );
            assert_eq!(patched.node_label(node), reference.node_label(node));
        }
    }

    #[test]
    fn add_and_remove_edges_matches_rebuild() {
        let g = build(
            &["v0", "v1", "v2"],
            &["a0", "a1"],
            &[(0, 0), (1, 0), (1, 1), (2, 1)],
        );
        let delta = GraphDelta {
            added_edges: vec![(0, 1), (2, 0)],
            removed_edges: vec![(1, 0)],
            ..GraphDelta::default()
        };
        let applied = g.apply_delta(&delta, None).unwrap();
        let reference = build(
            &["v0", "v1", "v2"],
            &["a0", "a1"],
            &[(0, 0), (1, 1), (2, 1), (0, 1), (2, 0)],
        );
        assert_same_graph(&applied.graph, &reference);
    }

    #[test]
    fn appending_nodes_shifts_attribute_ids_consistently() {
        let g = build(&["v0"], &["a0"], &[(0, 0)]);
        let delta = GraphDelta {
            new_values: vec!["v1".into(), "v2".into()],
            new_attributes: vec!["a1".into()],
            added_edges: vec![(1, 0), (2, 1), (0, 1)],
            removed_edges: vec![],
        };
        let applied = g.apply_delta(&delta, None).unwrap();
        let reference = build(
            &["v0", "v1", "v2"],
            &["a0", "a1"],
            &[(0, 0), (1, 0), (2, 1), (0, 1)],
        );
        assert_same_graph(&applied.graph, &reference);
    }

    #[test]
    fn removing_all_edges_of_a_node_isolates_it() {
        let g = build(&["v0", "v1"], &["a0"], &[(0, 0), (1, 0)]);
        let delta = GraphDelta {
            removed_edges: vec![(0, 0)],
            ..GraphDelta::default()
        };
        let applied = g.apply_delta(&delta, None).unwrap();
        assert_eq!(applied.graph.degree(0), 0);
        assert_eq!(applied.graph.degree(1), 1);
        applied.graph.validate().unwrap();
    }

    #[test]
    fn invalid_deltas_are_rejected() {
        let g = build(&["v0", "v1"], &["a0"], &[(0, 0)]);
        // Duplicate add.
        let dup = GraphDelta {
            added_edges: vec![(1, 0), (1, 0)],
            ..GraphDelta::default()
        };
        assert!(g.apply_delta(&dup, None).is_err());
        // Adding an existing edge.
        let existing = GraphDelta {
            added_edges: vec![(0, 0)],
            ..GraphDelta::default()
        };
        assert!(g.apply_delta(&existing, None).is_err());
        // Removing a missing edge.
        let missing = GraphDelta {
            removed_edges: vec![(1, 0)],
            ..GraphDelta::default()
        };
        assert!(g.apply_delta(&missing, None).is_err());
        // Out-of-range endpoints.
        let oob = GraphDelta {
            added_edges: vec![(9, 0)],
            ..GraphDelta::default()
        };
        assert!(g.apply_delta(&oob, None).is_err());
    }

    #[test]
    fn dirty_values_cover_the_two_hop_region() {
        // Two separate stars; mutate only the first.
        let g = build(
            &["v0", "v1", "v2", "v3"],
            &["a0", "a1"],
            &[(0, 0), (1, 0), (2, 1), (3, 1)],
        );
        let delta = GraphDelta {
            removed_edges: vec![(1, 0)],
            ..GraphDelta::default()
        };
        let applied = g.apply_delta(&delta, None).unwrap();
        // v0 and v1 are dirty (v1 lost an edge, v0 lost a neighbor);
        // v2 and v3 are untouched.
        assert_eq!(applied.dirty_values, vec![0, 1]);
    }

    #[test]
    fn incremental_components_match_fresh_computation() {
        let g = build(
            &["v0", "v1", "v2", "v3"],
            &["a0", "a1"],
            &[(0, 0), (1, 0), (2, 1), (3, 1)],
        );
        let old = connected_components(&g);
        assert_eq!(old.count(), 2);
        // Bridge the two components with a new value node.
        let delta = GraphDelta {
            new_values: vec!["bridge".into()],
            added_edges: vec![(4, 0), (4, 1)],
            ..GraphDelta::default()
        };
        let applied = g.apply_delta(&delta, Some(&old)).unwrap();
        let fresh = connected_components(&applied.graph);
        assert_eq!(applied.components.count(), fresh.count());
        assert_eq!(applied.components.count(), 1);
        // Same partition (up to relabeling).
        for a in applied.graph.nodes() {
            for b in applied.graph.nodes() {
                assert_eq!(
                    applied.components.connected(a, b),
                    fresh.connected(a, b),
                    "partition diverged at ({a}, {b})"
                );
            }
        }
        assert_eq!(
            applied.touched_components,
            vec![applied.components.component_of(4)]
        );
    }

    #[test]
    fn untouched_components_are_not_invalidated() {
        let g = build(
            &["v0", "v1", "v2", "v3"],
            &["a0", "a1"],
            &[(0, 0), (1, 0), (2, 1), (3, 1)],
        );
        let old = connected_components(&g);
        let delta = GraphDelta {
            removed_edges: vec![(1, 0)],
            ..GraphDelta::default()
        };
        let applied = g.apply_delta(&delta, Some(&old)).unwrap();
        // Removing v1-a0 splits the first star; second star untouched.
        assert_eq!(applied.components.count(), 3);
        let second_star_comp = applied.components.component_of(2);
        assert!(applied.components.connected(2, 3));
        assert!(
            !applied.touched_components.contains(&second_star_comp),
            "the untouched component must not be in the touched set"
        );
        // Touched components cover the split star.
        for node in [0u32, 1] {
            assert!(applied
                .touched_components
                .contains(&applied.components.component_of(node)));
        }
    }

    #[test]
    fn chained_deltas_match_one_shot_rebuild() {
        let mut g = build(&["v0", "v1"], &["a0"], &[(0, 0), (1, 0)]);
        let mut comps = connected_components(&g);
        let deltas = [
            GraphDelta {
                new_values: vec!["v2".into()],
                new_attributes: vec!["a1".into()],
                added_edges: vec![(2, 1), (0, 1)],
                ..GraphDelta::default()
            },
            GraphDelta {
                removed_edges: vec![(0, 0)],
                ..GraphDelta::default()
            },
            GraphDelta {
                added_edges: vec![(1, 1)],
                removed_edges: vec![(2, 1)],
                ..GraphDelta::default()
            },
        ];
        for delta in &deltas {
            let applied = g.apply_delta(delta, Some(&comps)).unwrap();
            g = applied.graph;
            comps = applied.components;
        }
        let reference = build(
            &["v0", "v1", "v2"],
            &["a0", "a1"],
            &[(1, 0), (0, 1), (1, 1)],
        );
        assert_same_graph(&g, &reference);
        let fresh = connected_components(&g);
        assert_eq!(comps.count(), fresh.count());
    }

    #[test]
    fn nodes_in_components_selects_members() {
        let g = build(
            &["v0", "v1", "v2"],
            &["a0", "a1"],
            &[(0, 0), (1, 1), (2, 1)],
        );
        let comps = connected_components(&g);
        let c = comps.component_of(1);
        let members = nodes_in_components(&comps, &[c]);
        assert!(members.contains(&1));
        assert!(members.contains(&2));
        assert!(!members.contains(&0));
    }

    #[test]
    fn empty_delta_is_identity() {
        let (g, _) = crate::bipartite::tests::figure3b();
        let applied = g.apply_delta(&GraphDelta::new(), None).unwrap();
        assert_same_graph(&applied.graph, &g);
        assert!(applied.dirty_values.is_empty());
        assert!(applied.touched_nodes.is_empty());
        assert!(applied.touched_components.is_empty());
    }
}
