//! # `dn-graph` — bipartite graph engine for DomainNet
//!
//! DomainNet (Leventidis et al., EDBT 2021) models a data lake as a
//! **bipartite graph**: one node per distinct data value, one node per
//! attribute (table column), and an edge whenever the value occurs in the
//! attribute. Homographs are then surfaced by network-centrality measures on
//! this graph. This crate provides that graph and the measures:
//!
//! * [`bipartite::BipartiteGraph`] — a compact CSR (compressed sparse row)
//!   representation with `u32` node ids, built via
//!   [`bipartite::BipartiteBuilder`].
//! * [`bc`] — **exact betweenness centrality** (Brandes' algorithm, 2001) for
//!   unweighted graphs, with optional multi-threading over source nodes.
//! * [`approx_bc`] — **approximate betweenness centrality** by sampling
//!   source nodes (Geisberger–Sanders–Schultes style), with uniform or
//!   degree-proportional sampling; this is what makes DomainNet scale to
//!   million-node lakes (§5.4).
//! * [`lcc`] — the paper's **bipartite local clustering coefficient**
//!   (Equation 1): the mean Jaccard similarity between a value's
//!   value-neighbor set and those of its value neighbors.
//! * [`components`] — connected components.
//! * [`delta`] — incremental CSR maintenance: [`delta::GraphDelta`] patches
//!   the graph in `O(n + m + |Δ|)` and reports the dirty regions (2-hop LCC
//!   invalidation set, touched components) downstream measures need.
//! * [`projection`] — the unipartite value co-occurrence projection
//!   (Figure 3a of the paper), useful for analysis and testing.
//! * [`subgraph`] — attribute-anchored random subgraph extraction, used by
//!   the scalability experiment (Figure 9).
//!
//! The crate is deliberately independent of the `lake` crate: it operates on
//! plain integer node ids so it can be tested exhaustively on synthetic
//! topologies (paths, stars, complete bipartite graphs) with known
//! closed-form centrality values.
//!
//! ## Example
//!
//! ```
//! use dn_graph::bipartite::BipartiteBuilder;
//! use dn_graph::bc::betweenness_centrality;
//!
//! // Two attributes sharing a single value (node 0) — a "bridge" value.
//! let mut builder = BipartiteBuilder::new();
//! let bridge = builder.add_value("BRIDGE");
//! let a0 = builder.add_attribute("t1.c1");
//! let a1 = builder.add_attribute("t2.c1");
//! for i in 0..3 {
//!     let v = builder.add_value(format!("left_{i}"));
//!     builder.add_edge(v, a0);
//!     let w = builder.add_value(format!("right_{i}"));
//!     builder.add_edge(w, a1);
//! }
//! builder.add_edge(bridge, a0);
//! builder.add_edge(bridge, a1);
//! let graph = builder.build();
//!
//! let bc = betweenness_centrality(&graph);
//! // The bridge value lies on every shortest path between the two sides.
//! let best = (0..graph.value_count() as u32)
//!     .max_by(|&a, &b| bc[a as usize].total_cmp(&bc[b as usize]))
//!     .unwrap();
//! assert_eq!(best, bridge);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod approx_bc;
pub mod bc;
pub mod bipartite;
pub mod centrality_extra;
pub mod community;
pub mod components;
pub mod delta;
pub mod lcc;
pub mod projection;
pub mod subgraph;
pub mod view;

pub use approx_bc::{
    approximate_betweenness, approximate_betweenness_within, ApproxBcConfig, SamplingStrategy,
};
pub use bc::{betweenness_centrality, betweenness_centrality_parallel, betweenness_from_sources};
pub use bipartite::{BipartiteBuilder, BipartiteGraph, NodeKind};
pub use community::{label_propagation, Communities, LabelPropagationConfig};
pub use delta::{nodes_in_components, AppliedDelta, GraphDelta};
pub use lcc::{lcc_with_cardinality_for_values, local_clustering_coefficients, LccMethod};
pub use view::GraphView;
