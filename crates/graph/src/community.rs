//! Community detection via label propagation.
//!
//! The paper's outlook (§6) proposes using non-parameterized community
//! detection to estimate *how many* meanings a detected homograph has: each
//! community of the lake graph corresponds to one latent semantic type, and a
//! homograph is a value whose neighborhood spans several communities. This
//! module provides a deterministic, seedable label-propagation algorithm over
//! the bipartite graph — parameter-free in the sense that the number of
//! communities is not specified in advance — which the `domainnet::meanings`
//! module builds on.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

use crate::bipartite::BipartiteGraph;

/// Result of a community-detection run.
#[derive(Debug, Clone)]
pub struct Communities {
    /// Community label per node (dense ids starting at 0).
    pub labels: Vec<u32>,
    /// Number of communities.
    pub count: usize,
}

impl Communities {
    /// Community of a node.
    pub fn community_of(&self, node: u32) -> u32 {
        self.labels[node as usize]
    }

    /// Sizes of all communities, indexed by community id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// The number of distinct communities among the given nodes.
    pub fn distinct_among(&self, nodes: &[u32]) -> usize {
        let mut seen: Vec<u32> = nodes.iter().map(|&n| self.labels[n as usize]).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

/// Configuration for label propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LabelPropagationConfig {
    /// Maximum number of sweeps over all nodes.
    pub max_iterations: usize,
    /// RNG seed controlling the node visiting order (label propagation is
    /// order-dependent; fixing the seed makes runs reproducible).
    pub seed: u64,
}

impl Default for LabelPropagationConfig {
    fn default() -> Self {
        LabelPropagationConfig {
            max_iterations: 20,
            seed: 7,
        }
    }
}

/// Sentinel for value nodes that have not adopted a label yet.
const UNLABELED: u32 = u32::MAX;

/// Run attribute-seeded label propagation over the bipartite graph.
///
/// Every **attribute** node starts in its own community (attributes are the
/// natural seeds of semantic types: a column is about one thing); value nodes
/// start unlabeled. Each sweep first lets every value node adopt the most
/// frequent label among its attributes, then lets every attribute node adopt
/// the most frequent label among its values. Ties keep the node's current
/// label when it is among the most frequent, and otherwise resolve to the
/// smallest label id, so runs are deterministic; the per-sweep visiting order
/// is shuffled once from the seed. Terminates when a sweep changes nothing or
/// after `max_iterations` sweeps. Isolated value nodes end up in singleton
/// communities.
pub fn label_propagation(graph: &BipartiteGraph, config: LabelPropagationConfig) -> Communities {
    let n = graph.node_count();
    if n == 0 {
        return Communities {
            labels: Vec::new(),
            count: 0,
        };
    }
    let mut labels: Vec<u32> = vec![UNLABELED; n];
    for attr in graph.attribute_nodes() {
        labels[attr as usize] = attr;
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut value_order: Vec<u32> = graph.value_nodes().collect();
    let mut attr_order: Vec<u32> = graph.attribute_nodes().collect();
    value_order.shuffle(&mut rng);
    attr_order.shuffle(&mut rng);

    let mut counts: HashMap<u32, usize> = HashMap::new();
    let relabel = |node: u32, labels: &mut Vec<u32>, counts: &mut HashMap<u32, usize>| -> bool {
        let neighbors = graph.neighbors(node);
        if neighbors.is_empty() {
            return false;
        }
        counts.clear();
        for &nb in neighbors {
            let label = labels[nb as usize];
            if label != UNLABELED {
                *counts.entry(label).or_insert(0) += 1;
            }
        }
        if counts.is_empty() {
            return false;
        }
        let best_count = *counts.values().max().expect("non-empty counts");
        let current = labels[node as usize];
        if current != UNLABELED && counts.get(&current) == Some(&best_count) {
            return false; // keep the current label on ties
        }
        let best_label = counts
            .iter()
            .filter(|(_, &c)| c == best_count)
            .map(|(&l, _)| l)
            .min()
            .expect("non-empty counts");
        if best_label != current {
            labels[node as usize] = best_label;
            true
        } else {
            false
        }
    };

    for _ in 0..config.max_iterations {
        let mut changed = false;
        for &node in &value_order {
            changed |= relabel(node, &mut labels, &mut counts);
        }
        for &node in &attr_order {
            changed |= relabel(node, &mut labels, &mut counts);
        }
        if !changed {
            break;
        }
    }

    // Unlabeled (isolated) nodes become singleton communities, then labels
    // are re-mapped to dense community ids.
    for (i, label) in labels.iter_mut().enumerate() {
        if *label == UNLABELED {
            *label = i as u32;
        }
    }
    let mut remap: HashMap<u32, u32> = HashMap::new();
    for label in &mut labels {
        let next = remap.len() as u32;
        let dense = *remap.entry(*label).or_insert(next);
        *label = dense;
    }
    Communities {
        count: remap.len(),
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::BipartiteBuilder;

    /// Two cliquish groups of attributes sharing their values, bridged by one
    /// shared value.
    fn two_groups(side: usize) -> (BipartiteGraph, u32) {
        let mut b = BipartiteBuilder::new();
        let bridge = b.add_value("bridge");
        for prefix in ["left", "right"] {
            let a0 = b.add_attribute(format!("{prefix}_a0"));
            let a1 = b.add_attribute(format!("{prefix}_a1"));
            for i in 0..side {
                let v = b.add_value(format!("{prefix}_{i}"));
                b.add_edge(v, a0);
                b.add_edge(v, a1);
            }
            // The bridge value sits in one attribute of each group.
            b.add_edge(bridge, a0);
        }
        (b.build(), bridge)
    }

    #[test]
    fn two_clear_groups_form_two_communities() {
        let (g, _) = two_groups(8);
        let communities = label_propagation(&g, LabelPropagationConfig::default());
        // The two sides collapse into (at most a few) communities, far fewer
        // than one per node, and left/right values end up separated.
        assert!(communities.count >= 2);
        assert!(communities.count <= 6);
        let left = g
            .value_nodes()
            .find(|&v| g.value_label(v) == "left_0")
            .unwrap();
        let right = g
            .value_nodes()
            .find(|&v| g.value_label(v) == "right_0")
            .unwrap();
        assert_ne!(
            communities.community_of(left),
            communities.community_of(right),
            "left and right groups must not merge"
        );
    }

    #[test]
    fn bridge_value_touches_both_communities_through_its_attributes() {
        let (g, bridge) = two_groups(8);
        let communities = label_propagation(&g, LabelPropagationConfig::default());
        let attrs: Vec<u32> = g.neighbors(bridge).to_vec();
        assert_eq!(attrs.len(), 2);
        assert_eq!(communities.distinct_among(&attrs), 2);
    }

    #[test]
    fn single_attribute_graph_is_one_community() {
        let mut b = BipartiteBuilder::new();
        let a = b.add_attribute("a");
        for i in 0..10 {
            let v = b.add_value(format!("v{i}"));
            b.add_edge(v, a);
        }
        let g = b.build();
        let communities = label_propagation(&g, LabelPropagationConfig::default());
        assert_eq!(communities.count, 1);
        assert_eq!(communities.sizes(), vec![g.node_count()]);
    }

    #[test]
    fn isolated_nodes_keep_singleton_communities() {
        let mut b = BipartiteBuilder::new();
        b.add_value("lonely_1");
        b.add_value("lonely_2");
        let a = b.add_attribute("a");
        let v = b.add_value("x");
        b.add_edge(v, a);
        let g = b.build();
        let communities = label_propagation(&g, LabelPropagationConfig::default());
        assert_eq!(communities.count, 3);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (g, _) = two_groups(6);
        let a = label_propagation(&g, LabelPropagationConfig::default());
        let b = label_propagation(&g, LabelPropagationConfig::default());
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteBuilder::new().build();
        let communities = label_propagation(&g, LabelPropagationConfig::default());
        assert_eq!(communities.count, 0);
    }
}
