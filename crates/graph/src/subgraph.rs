//! Attribute-anchored random subgraph extraction.
//!
//! The paper's Figure 9 measures approximate-BC runtime on subgraphs of
//! increasing size extracted from the NYC-education lake graph. The
//! extraction procedure (footnote 9) repeatedly picks a random attribute
//! node, adds it together with all its value nodes, and stops once the
//! subgraph reaches the requested size (within a margin). This module
//! reproduces that procedure.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::bipartite::{BipartiteBuilder, BipartiteGraph};

/// Extract a random attribute-anchored subgraph with roughly `target_edges`
/// edges.
///
/// Attributes are visited in a seeded random order; each selected attribute
/// contributes all of its incident edges. Value nodes are shared between
/// selected attributes exactly as in the parent graph, so homograph structure
/// is preserved for the values that survive. Extraction stops as soon as the
/// edge budget is met (the result may overshoot by at most one attribute's
/// degree, mirroring the paper's "within some margin").
pub fn random_attribute_subgraph(
    graph: &BipartiteGraph,
    target_edges: usize,
    seed: u64,
) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut attrs: Vec<u32> = graph.attribute_nodes().collect();
    attrs.shuffle(&mut rng);

    let mut builder = BipartiteBuilder::new();
    // Parent value node id -> new value node id.
    let mut value_map: Vec<Option<u32>> = vec![None; graph.value_count()];
    let mut edges = 0usize;
    for attr_node in attrs {
        if edges >= target_edges {
            break;
        }
        let attr_index = graph
            .attribute_index(attr_node)
            .expect("attribute_nodes() yields attribute ids");
        let new_attr = builder.add_attribute(graph.attribute_label(attr_index));
        for &value in graph.neighbors(attr_node) {
            let new_value = match value_map[value as usize] {
                Some(id) => id,
                None => {
                    let id = builder.add_value(graph.value_label(value));
                    value_map[value as usize] = Some(id);
                    id
                }
            };
            builder.add_edge(new_value, new_attr);
            edges += 1;
        }
    }
    builder.build()
}

/// Produce a series of nested-size subgraphs for a scalability sweep.
///
/// `edge_targets` should be increasing; each subgraph is extracted
/// independently (with a seed derived from the base seed and the index) so
/// runtimes are comparable to the paper's independent measurements.
pub fn subgraph_series(
    graph: &BipartiteGraph,
    edge_targets: &[usize],
    seed: u64,
) -> Vec<BipartiteGraph> {
    edge_targets
        .iter()
        .enumerate()
        .map(|(i, &target)| random_attribute_subgraph(graph, target, seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::BipartiteBuilder;
    use rand::Rng;

    fn random_graph(values: usize, attrs: usize, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = BipartiteBuilder::new();
        for i in 0..values {
            b.add_value(format!("v{i}"));
        }
        for a in 0..attrs {
            let attr = b.add_attribute(format!("a{a}"));
            for _ in 0..rng.gen_range(3..20) {
                b.add_edge(rng.gen_range(0..values) as u32, attr);
            }
        }
        b.build()
    }

    #[test]
    fn subgraph_has_roughly_requested_size() {
        let g = random_graph(500, 80, 1);
        let target = g.edge_count() / 3;
        let sub = random_attribute_subgraph(&g, target, 7);
        assert!(sub.edge_count() >= target);
        assert!(sub.edge_count() <= g.edge_count());
        sub.validate().unwrap();
    }

    #[test]
    fn oversized_target_returns_whole_graph_worth_of_edges() {
        let g = random_graph(100, 10, 2);
        let sub = random_attribute_subgraph(&g, usize::MAX, 3);
        assert_eq!(sub.edge_count(), g.edge_count());
        assert_eq!(sub.attribute_count(), g.attribute_count());
    }

    #[test]
    fn extraction_is_deterministic_per_seed() {
        let g = random_graph(200, 30, 3);
        let a = random_attribute_subgraph(&g, 100, 11);
        let b = random_attribute_subgraph(&g, 100, 11);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.node_count(), b.node_count());
        let c = random_attribute_subgraph(&g, 100, 12);
        // A different seed usually picks different attributes; just check it
        // still satisfies the budget.
        assert!(c.edge_count() >= 100.min(g.edge_count()));
    }

    #[test]
    fn shared_values_are_not_duplicated() {
        // Two attributes sharing every value: the subgraph with both must
        // reuse the same value nodes.
        let mut b = BipartiteBuilder::new();
        let a0 = b.add_attribute("a0");
        let a1 = b.add_attribute("a1");
        for i in 0..10 {
            let v = b.add_value(format!("v{i}"));
            b.add_edge(v, a0);
            b.add_edge(v, a1);
        }
        let g = b.build();
        let sub = random_attribute_subgraph(&g, usize::MAX, 5);
        assert_eq!(sub.value_count(), 10);
        assert_eq!(sub.attribute_count(), 2);
        assert_eq!(sub.edge_count(), 20);
    }

    #[test]
    fn series_produces_increasing_graphs() {
        let g = random_graph(400, 60, 4);
        let targets = vec![50, 150, 300];
        let series = subgraph_series(&g, &targets, 9);
        assert_eq!(series.len(), 3);
        for (sub, &t) in series.iter().zip(&targets) {
            assert!(sub.edge_count() >= t.min(g.edge_count()));
            sub.validate().unwrap();
        }
    }

    #[test]
    fn zero_target_gives_empty_subgraph() {
        let g = random_graph(50, 5, 6);
        let sub = random_attribute_subgraph(&g, 0, 1);
        assert_eq!(sub.edge_count(), 0);
        assert_eq!(sub.node_count(), 0);
    }
}
