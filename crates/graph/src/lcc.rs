//! Bipartite local clustering coefficients (Equation 1 of the paper).
//!
//! For a value node `u`, let `N(u)` be its *value neighbors* — every other
//! value that shares at least one attribute with `u`. The pairwise clustering
//! coefficient of two values is the Jaccard similarity of their neighbor
//! sets,
//!
//! ```text
//! c_vw = |N(v) ∩ N(w)| / |N(v) ∪ N(w)|
//! ```
//!
//! and the local clustering coefficient of `u` is the mean of `c_uv` over all
//! `v ∈ N(u)`. Hypothesis 3.4 of the paper: homographs, whose neighbors come
//! from several unrelated communities, have *lower* LCC than unambiguous
//! values.
//!
//! Two computation methods are offered:
//!
//! * [`LccMethod::ValueNeighborJaccard`] — the literal Equation 1. Cost for a
//!   node `u` is `O(Σ_{v∈N(u)} deg₂(v))` where `deg₂` is the size of the
//!   2-hop neighborhood, which is fine for benchmark-scale lakes (the SB
//!   experiments of Figure 5) but quadratic-ish on very large ones.
//! * [`LccMethod::AttributeJaccard`] — the scalable variant the paper
//!   alludes to ("no more than the average Jaccard similarity between the
//!   set of attributes that a value co-occurs with"): the Jaccard is taken
//!   over the (much smaller) sets of *attributes* containing each value.
//!   Shares the same bias — it rewards values confined to overlapping
//!   attribute sets — at a fraction of the cost.

use crate::bipartite::BipartiteGraph;

/// Which formulation of the local clustering coefficient to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum LccMethod {
    /// Equation 1: Jaccard over 2-hop value-neighbor sets.
    ValueNeighborJaccard,
    /// Scalable variant: Jaccard over attribute (1-hop) sets.
    AttributeJaccard,
}

/// Compute the LCC of every **value node**, returned as a vector indexed by
/// value node id.
pub fn local_clustering_coefficients(graph: &BipartiteGraph, method: LccMethod) -> Vec<f64> {
    let targets: Vec<u32> = graph.value_nodes().collect();
    lcc_for_values(graph, &targets, method)
}

/// Compute the LCC for an explicit list of value nodes.
///
/// The result is parallel to `targets`. Nodes with no value neighbors get an
/// LCC of 0.
pub fn lcc_for_values(graph: &BipartiteGraph, targets: &[u32], method: LccMethod) -> Vec<f64> {
    lcc_with_cardinality_for_values(graph, targets, method).0
}

/// Like [`lcc_for_values`], but also returns each target's cardinality
/// `|N(u)|` (its number of distinct value neighbors).
///
/// Both algorithms materialize `N(u)` anyway, so the cardinality is free —
/// callers that need both (the incremental score maintenance does) avoid a
/// second 2-hop sweep per node.
pub fn lcc_with_cardinality_for_values(
    graph: &BipartiteGraph,
    targets: &[u32],
    method: LccMethod,
) -> (Vec<f64>, Vec<usize>) {
    match method {
        LccMethod::ValueNeighborJaccard => lcc_value_neighbors(graph, targets),
        LccMethod::AttributeJaccard => lcc_attribute_jaccard(graph, targets),
    }
}

fn lcc_value_neighbors(graph: &BipartiteGraph, targets: &[u32]) -> (Vec<f64>, Vec<usize>) {
    let n_values = graph.value_count();
    // Stamp arrays avoid clearing O(n) state per target/per neighbor.
    let mut in_target_neighborhood = vec![0u32; n_values];
    let mut visited = vec![0u32; n_values];
    let mut target_epoch = 0u32;
    let mut visit_epoch = 0u32;

    let mut out = Vec::with_capacity(targets.len());
    let mut cardinalities = Vec::with_capacity(targets.len());
    for &u in targets {
        debug_assert!(graph.is_value_node(u), "LCC is defined for value nodes");
        target_epoch += 1;
        // Materialize N(u) and mark it.
        let nu = graph.value_neighbors(u);
        cardinalities.push(nu.len());
        for &v in &nu {
            in_target_neighborhood[v as usize] = target_epoch;
        }
        if nu.is_empty() {
            out.push(0.0);
            continue;
        }
        let nu_len = nu.len() as f64;
        let mut sum = 0.0;
        for &v in &nu {
            // Walk v's 2-hop neighborhood once, deduplicating with a stamp.
            visit_epoch += 1;
            let mut nv_len = 0usize;
            let mut inter = 0usize;
            for &attr in graph.neighbors(v) {
                for &w in graph.neighbors(attr) {
                    if w == v {
                        continue;
                    }
                    let wi = w as usize;
                    if visited[wi] != visit_epoch {
                        visited[wi] = visit_epoch;
                        nv_len += 1;
                        // u ∈ N(v) but u ∉ N(u), so u itself never counts
                        // toward the intersection — only marked members of N(u).
                        if in_target_neighborhood[wi] == target_epoch {
                            inter += 1;
                        }
                    }
                }
            }
            let union = nu.len() + nv_len - inter;
            if union > 0 {
                sum += inter as f64 / union as f64;
            }
        }
        out.push(sum / nu_len);
    }
    (out, cardinalities)
}

fn lcc_attribute_jaccard(graph: &BipartiteGraph, targets: &[u32]) -> (Vec<f64>, Vec<usize>) {
    let mut out = Vec::with_capacity(targets.len());
    let mut cardinalities = Vec::with_capacity(targets.len());
    for &u in targets {
        debug_assert!(graph.is_value_node(u), "LCC is defined for value nodes");
        let nu = graph.value_neighbors(u);
        cardinalities.push(nu.len());
        if nu.is_empty() {
            out.push(0.0);
            continue;
        }
        let au = graph.neighbors(u);
        let mut sum = 0.0;
        for &v in &nu {
            let av = graph.neighbors(v);
            let inter = sorted_intersection_size(au, av);
            let union = au.len() + av.len() - inter;
            if union > 0 {
                sum += inter as f64 / union as f64;
            }
        }
        out.push(sum / nu.len() as f64);
    }
    (out, cardinalities)
}

/// Patch Equation-1 LCC scores across a graph delta instead of recomputing
/// the whole dirty region.
///
/// Let `S` (`seeds`) be the values whose own neighbor set changed and
/// `dirty = S ∪ N(S)` the full invalidation set. For `u ∈ dirty ∖ S` the
/// neighbor set `N(u)` is unchanged, so only the Jaccard terms against seed
/// neighbors moved:
///
/// ```text
/// lcc_new(u) = ( lcc_old(u)·|N(u)| + Σ_{v ∈ S∩N(u)} (J_new(u,v) − J_old(u,v)) ) / |N(u)|
/// ```
///
/// Seed neighborhoods are materialized once as bitsets over the old and new
/// graphs, so each correction term costs `O(|N(u)|)` bit probes instead of a
/// 2-hop sweep per neighbor; hub values adjacent to a mutation no longer pay
/// a full recomputation. Values in `S` itself are recomputed exactly.
///
/// `old_lcc[u]` must hold the pre-delta score for every `u ∈ dirty ∖ S`
/// (entries for other nodes are ignored); `|N(u)|` is re-derived from the
/// unchanged neighborhood. Floating-point caveat: the patched scores equal a
/// from-scratch recomputation up to summation-order error (≲1e-12 per
/// applied delta), not bit-for-bit.
///
/// Returns `(lcc, cardinality)` parallel to `dirty`.
pub fn patch_lcc_value_neighbors(
    old_graph: &BipartiteGraph,
    new_graph: &BipartiteGraph,
    seeds: &[u32],
    dirty: &[u32],
    old_lcc: &[f64],
) -> (Vec<f64>, Vec<usize>) {
    let nv_new = new_graph.value_count();
    let words = nv_new.div_ceil(64);
    let mut seed_pos = vec![u32::MAX; nv_new];
    for (i, &v) in seeds.iter().enumerate() {
        seed_pos[v as usize] = i as u32;
    }

    // Materialize each seed's old/new neighbor set as bitsets (plus sizes).
    let mut old_bits = vec![0u64; words * seeds.len()];
    let mut new_bits = vec![0u64; words * seeds.len()];
    let mut old_size = vec![0usize; seeds.len()];
    let mut new_size = vec![0usize; seeds.len()];
    for (i, &v) in seeds.iter().enumerate() {
        if (v as usize) < old_graph.value_count() {
            let bits = &mut old_bits[i * words..(i + 1) * words];
            for &attr in old_graph.neighbors(v) {
                for &w in old_graph.neighbors(attr) {
                    if w != v {
                        let (word, bit) = (w as usize / 64, w as usize % 64);
                        if bits[word] & (1u64 << bit) == 0 {
                            bits[word] |= 1u64 << bit;
                            old_size[i] += 1;
                        }
                    }
                }
            }
        }
        let bits = &mut new_bits[i * words..(i + 1) * words];
        for &attr in new_graph.neighbors(v) {
            for &w in new_graph.neighbors(attr) {
                if w != v {
                    let (word, bit) = (w as usize / 64, w as usize % 64);
                    if bits[word] & (1u64 << bit) == 0 {
                        bits[word] |= 1u64 << bit;
                        new_size[i] += 1;
                    }
                }
            }
        }
    }

    // Seeds are recomputed exactly; everything else is term-patched.
    let (seed_lcc, seed_card) = lcc_value_neighbors(new_graph, seeds);

    let jaccard = |inter: usize, a: usize, b: usize| -> f64 {
        let union = a + b - inter;
        if union > 0 {
            inter as f64 / union as f64
        } else {
            0.0
        }
    };

    let mut out_lcc = Vec::with_capacity(dirty.len());
    let mut out_card = Vec::with_capacity(dirty.len());
    let mut stamp = vec![false; nv_new];
    let mut neighborhood: Vec<u32> = Vec::new();
    let mut seed_neighbors: Vec<u32> = Vec::new();
    for &u in dirty {
        let pos = seed_pos[u as usize];
        if pos != u32::MAX {
            out_lcc.push(seed_lcc[pos as usize]);
            out_card.push(seed_card[pos as usize]);
            continue;
        }
        // N(u) is unchanged; materialize it once on the new graph.
        neighborhood.clear();
        seed_neighbors.clear();
        for &attr in new_graph.neighbors(u) {
            for &w in new_graph.neighbors(attr) {
                if w != u && !stamp[w as usize] {
                    stamp[w as usize] = true;
                    neighborhood.push(w);
                    if seed_pos[w as usize] != u32::MAX {
                        seed_neighbors.push(w);
                    }
                }
            }
        }
        let card = neighborhood.len();
        let mut delta = 0.0;
        for &v in &seed_neighbors {
            let i = seed_pos[v as usize] as usize;
            let (ob, nb) = (
                &old_bits[i * words..(i + 1) * words],
                &new_bits[i * words..(i + 1) * words],
            );
            let mut inter_old = 0usize;
            let mut inter_new = 0usize;
            for &w in &neighborhood {
                let (word, bit) = (w as usize / 64, w as usize % 64);
                inter_old += ((ob[word] >> bit) & 1) as usize;
                inter_new += ((nb[word] >> bit) & 1) as usize;
            }
            delta += jaccard(inter_new, card, new_size[i]) - jaccard(inter_old, card, old_size[i]);
        }
        for &w in &neighborhood {
            stamp[w as usize] = false;
        }
        if card == 0 {
            out_lcc.push(0.0);
            out_card.push(0);
        } else {
            let old_sum = old_lcc[u as usize] * card as f64;
            out_lcc.push((old_sum + delta) / card as f64);
            out_card.push(card);
        }
    }
    (out_lcc, out_card)
}

fn sorted_intersection_size(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::BipartiteBuilder;

    fn star(k: usize) -> BipartiteGraph {
        let mut b = BipartiteBuilder::new();
        let a = b.add_attribute("a");
        for i in 0..k {
            let v = b.add_value(format!("v{i}"));
            b.add_edge(v, a);
        }
        b.build()
    }

    #[test]
    fn single_attribute_closed_form() {
        // All k values share one attribute: N(u) = k-1 others, and for any
        // neighbor v, |N(u) ∩ N(v)| = k-2, |N(u) ∪ N(v)| = k, so every value
        // has LCC = (k-2)/k under Equation 1 and exactly 1 under the
        // attribute-Jaccard variant.
        for k in [3usize, 4, 7] {
            let g = star(k);
            let eq1 = local_clustering_coefficients(&g, LccMethod::ValueNeighborJaccard);
            let attr = local_clustering_coefficients(&g, LccMethod::AttributeJaccard);
            let expected = (k as f64 - 2.0) / k as f64;
            for v in 0..k {
                assert!((eq1[v] - expected).abs() < 1e-12, "k={k} got {}", eq1[v]);
                assert!((attr[v] - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn isolated_value_has_zero_lcc() {
        let mut b = BipartiteBuilder::new();
        b.add_value("lonely");
        let a = b.add_attribute("a");
        let v = b.add_value("x");
        let w = b.add_value("y");
        let z = b.add_value("z");
        b.add_edge(v, a);
        b.add_edge(w, a);
        b.add_edge(z, a);
        let g = b.build();
        let lcc = local_clustering_coefficients(&g, LccMethod::ValueNeighborJaccard);
        assert_eq!(lcc[0], 0.0, "value with no neighbors has LCC 0");
        // Three values sharing one attribute: closed form (k-2)/k = 1/3.
        assert!((lcc[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    /// Two dense communities bridged by a single value.
    fn bridged_communities(side: usize) -> (BipartiteGraph, u32) {
        let mut b = BipartiteBuilder::new();
        let bridge = b.add_value("bridge");
        // Each side has two attributes over the same set of values, so inner
        // values are tightly clustered.
        let make_side = |prefix: &str, b: &mut BipartiteBuilder| {
            let a0 = b.add_attribute(format!("{prefix}_a0"));
            let a1 = b.add_attribute(format!("{prefix}_a1"));
            for i in 0..side {
                let v = b.add_value(format!("{prefix}_{i}"));
                b.add_edge(v, a0);
                b.add_edge(v, a1);
            }
            (a0, a1)
        };
        let (l0, _) = make_side("left", &mut b);
        let (r0, _) = make_side("right", &mut b);
        b.add_edge(bridge, l0);
        b.add_edge(bridge, r0);
        (b.build(), bridge)
    }

    #[test]
    fn bridge_value_has_lowest_lcc() {
        let (g, bridge) = bridged_communities(6);
        for method in [LccMethod::ValueNeighborJaccard, LccMethod::AttributeJaccard] {
            let lcc = local_clustering_coefficients(&g, method);
            let bridge_lcc = lcc[bridge as usize];
            for v in g.value_nodes() {
                if v != bridge {
                    assert!(
                        bridge_lcc < lcc[v as usize] + 1e-12,
                        "{method:?}: bridge {bridge_lcc} not below {} ({})",
                        lcc[v as usize],
                        g.value_label(v)
                    );
                }
            }
        }
    }

    #[test]
    fn jaguar_has_lowest_lcc_in_running_example() {
        let (g, ids) = crate::bipartite::tests::figure3b();
        let lcc = local_clustering_coefficients(&g, LccMethod::ValueNeighborJaccard);
        let jaguar = lcc[ids["JAGUAR"] as usize];
        // Jaguar spans all four attributes; any repeated-but-unambiguous
        // value should cluster at least as tightly.
        for v in ["PANDA", "TOYOTA"] {
            assert!(
                jaguar <= lcc[ids[v] as usize] + 1e-12,
                "jaguar {jaguar} vs {v} {}",
                lcc[ids[v] as usize]
            );
        }
    }

    #[test]
    fn lcc_is_within_unit_interval() {
        let (g, _) = crate::bipartite::tests::figure3b();
        for method in [LccMethod::ValueNeighborJaccard, LccMethod::AttributeJaccard] {
            for &score in &local_clustering_coefficients(&g, method) {
                assert!((0.0..=1.0).contains(&score), "{method:?} score {score}");
            }
        }
    }

    #[test]
    fn patch_matches_full_recomputation_across_deltas() {
        use crate::delta::GraphDelta;
        // A lake-shaped graph: overlapping attributes over a shared pool.
        let mut b = BipartiteBuilder::new();
        let values: Vec<u32> = (0..20).map(|i| b.add_value(format!("v{i}"))).collect();
        let attrs: Vec<u32> = (0..5).map(|a| b.add_attribute(format!("a{a}"))).collect();
        for (ai, &a) in attrs.iter().enumerate() {
            for (vi, &v) in values.iter().enumerate() {
                if (vi + ai) % 3 != 0 {
                    b.add_edge(v, a);
                }
            }
        }
        let mut graph = b.build();
        let mut lcc = local_clustering_coefficients(&graph, LccMethod::ValueNeighborJaccard);
        let mut cards: Vec<usize> = (0..graph.value_count() as u32)
            .map(|v| graph.value_neighbor_count(v))
            .collect();
        let deltas = [
            GraphDelta {
                added_edges: vec![(0, 0), (3, 0)],
                removed_edges: vec![(1, 0)],
                ..GraphDelta::default()
            },
            GraphDelta {
                new_values: vec!["fresh".into()],
                new_attributes: vec!["a5".into()],
                added_edges: vec![(20, 5), (0, 5), (7, 5)],
                removed_edges: vec![(2, 2)],
            },
        ];
        for delta in &deltas {
            let applied = graph.apply_delta(delta, None).unwrap();
            let (patched, patched_cards) = patch_lcc_value_neighbors(
                &graph,
                &applied.graph,
                &applied.seed_values,
                &applied.dirty_values,
                &lcc,
            );
            let full =
                local_clustering_coefficients(&applied.graph, LccMethod::ValueNeighborJaccard);
            // Scatter the patch, then compare every node against a full pass.
            lcc.resize(applied.graph.value_count(), 0.0);
            cards.resize(applied.graph.value_count(), 0);
            for (i, &node) in applied.dirty_values.iter().enumerate() {
                lcc[node as usize] = patched[i];
                cards[node as usize] = patched_cards[i];
            }
            for node in 0..applied.graph.value_count() {
                assert!(
                    (lcc[node] - full[node]).abs() < 1e-12,
                    "node {node}: patched {} vs full {}",
                    lcc[node],
                    full[node]
                );
                assert_eq!(
                    cards[node],
                    applied.graph.value_neighbor_count(node as u32),
                    "cardinality of node {node}"
                );
            }
            graph = applied.graph;
        }
    }

    #[test]
    fn targeted_computation_matches_full_computation() {
        let (g, ids) = crate::bipartite::tests::figure3b();
        let full = local_clustering_coefficients(&g, LccMethod::ValueNeighborJaccard);
        let targets = vec![ids["JAGUAR"], ids["PANDA"]];
        let partial = lcc_for_values(&g, &targets, LccMethod::ValueNeighborJaccard);
        assert!((partial[0] - full[ids["JAGUAR"] as usize]).abs() < 1e-12);
        assert!((partial[1] - full[ids["PANDA"] as usize]).abs() < 1e-12);
    }
}
