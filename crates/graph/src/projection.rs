//! Unipartite value co-occurrence projection (Figure 3a of the paper).
//!
//! The paper contrasts two representations of the lake: the co-occurrence
//! graph, whose nodes are values and whose edges join values sharing a
//! column, and the (much more compact) bipartite graph that DomainNet
//! actually uses. The projection is still valuable for analysis — e.g.
//! verifying that removing a homograph disconnects meaning communities — and
//! for quantifying exactly how much larger it is (the paper's 100-value
//! column → 4 950 projected edges example).

use std::collections::HashSet;

use crate::bipartite::BipartiteGraph;

/// A unipartite graph over the value nodes of a [`BipartiteGraph`], in CSR
/// form. Node ids coincide with the bipartite graph's value node ids.
#[derive(Debug, Clone)]
pub struct CoOccurrenceGraph {
    offsets: Vec<u64>,
    adjacency: Vec<u32>,
}

impl CoOccurrenceGraph {
    /// Number of value nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// Neighbors of a value node (sorted).
    pub fn neighbors(&self, node: u32) -> &[u32] {
        let s = self.offsets[node as usize] as usize;
        let e = self.offsets[node as usize + 1] as usize;
        &self.adjacency[s..e]
    }

    /// Degree of a value node.
    pub fn degree(&self, node: u32) -> usize {
        self.neighbors(node).len()
    }

    /// Whether two values co-occur in at least one attribute.
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }
}

/// Project a bipartite lake graph onto its value nodes.
///
/// Memory warning: for an attribute with `c` distinct values this creates
/// `c·(c-1)/2` edges, so the projection grows quadratically in attribute
/// cardinality — the very reason DomainNet works on the bipartite graph
/// instead. Intended for benchmark-scale graphs and tests.
pub fn project_values(graph: &BipartiteGraph) -> CoOccurrenceGraph {
    let n = graph.value_count();
    let mut neighbor_sets: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    for attr in graph.attribute_nodes() {
        let values = graph.neighbors(attr);
        for (i, &v) in values.iter().enumerate() {
            for &w in &values[i + 1..] {
                neighbor_sets[v as usize].insert(w);
                neighbor_sets[w as usize].insert(v);
            }
        }
    }
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u64);
    let mut adjacency = Vec::new();
    for set in &neighbor_sets {
        let mut sorted: Vec<u32> = set.iter().copied().collect();
        sorted.sort_unstable();
        adjacency.extend_from_slice(&sorted);
        offsets.push(adjacency.len() as u64);
    }
    CoOccurrenceGraph { offsets, adjacency }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::BipartiteBuilder;

    #[test]
    fn single_column_projects_to_clique() {
        let mut b = BipartiteBuilder::new();
        let a = b.add_attribute("a");
        let k = 10usize;
        for i in 0..k {
            let v = b.add_value(format!("v{i}"));
            b.add_edge(v, a);
        }
        let g = b.build();
        let proj = project_values(&g);
        assert_eq!(proj.node_count(), k);
        assert_eq!(proj.edge_count(), k * (k - 1) / 2);
        assert!(proj.has_edge(0, 9));
        assert_eq!(proj.degree(3), k - 1);
    }

    #[test]
    fn projection_of_running_example_matches_figure_3a() {
        let (g, ids) = crate::bipartite::tests::figure3b();
        let proj = project_values(&g);
        // Jaguar co-occurs with every other value.
        assert_eq!(proj.degree(ids["JAGUAR"]), 7);
        // Fiat only co-occurs with Jaguar and Toyota.
        assert_eq!(proj.degree(ids["FIAT"]), 2);
        assert!(proj.has_edge(ids["FIAT"], ids["TOYOTA"]));
        assert!(!proj.has_edge(ids["FIAT"], ids["PANDA"]));
        // Symmetry.
        assert!(proj.has_edge(ids["TOYOTA"], ids["FIAT"]));
    }

    #[test]
    fn projection_is_larger_than_bipartite_for_wide_columns() {
        // The paper's example: one column with 100 values has 100 bipartite
        // edges but 4 950 projected edges.
        let mut b = BipartiteBuilder::new();
        let a = b.add_attribute("a");
        for i in 0..100 {
            let v = b.add_value(format!("v{i}"));
            b.add_edge(v, a);
        }
        let g = b.build();
        assert_eq!(g.edge_count(), 100);
        let proj = project_values(&g);
        assert_eq!(proj.edge_count(), 4950);
    }

    #[test]
    fn empty_graph_projects_to_empty() {
        let g = BipartiteBuilder::new().build();
        let proj = project_values(&g);
        assert_eq!(proj.node_count(), 0);
        assert_eq!(proj.edge_count(), 0);
    }
}
