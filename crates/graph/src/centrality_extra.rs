//! Additional centrality measures used for ablation studies.
//!
//! The paper motivates betweenness centrality by contrasting it with the
//! local clustering coefficient; footnote 2 mentions a further variant the
//! authors tried (restricting the shortest-path endpoints to value nodes),
//! and degree and harmonic centrality are the obvious cheaper alternatives a
//! practitioner would reach for first. This module implements all of them so
//! the `measure_ablation` bench and the experiments can quantify why full BC
//! is worth its cost.

use std::collections::VecDeque;

use crate::bipartite::BipartiteGraph;

/// Degree centrality of every value node: simply the number of attributes the
/// value occurs in. The crudest homograph signal ("appears in many columns").
pub fn degree_centrality(graph: &BipartiteGraph) -> Vec<f64> {
    graph
        .value_nodes()
        .map(|v| graph.degree(v) as f64)
        .collect()
}

/// Cardinality centrality: the number of distinct values a value co-occurs
/// with, |N(v)|. A slightly better crude signal than degree (it accounts for
/// attribute sizes) but still purely local.
pub fn cardinality_centrality(graph: &BipartiteGraph) -> Vec<f64> {
    graph
        .value_nodes()
        .map(|v| graph.value_neighbor_count(v) as f64)
        .collect()
}

/// Harmonic centrality of every node: `Σ_{w ≠ v} 1 / d(v, w)` with `1/∞ = 0`.
///
/// A global measure like BC but about *closeness* rather than *brokerage*;
/// included to show that being near everything is not the same as bridging
/// meanings.
pub fn harmonic_centrality(graph: &BipartiteGraph) -> Vec<f64> {
    let n = graph.node_count();
    let mut scores = vec![0.0; n];
    let mut dist = vec![-1i64; n];
    let mut queue = VecDeque::new();
    for source in graph.nodes() {
        dist.iter_mut().for_each(|d| *d = -1);
        dist[source as usize] = 0;
        queue.clear();
        queue.push_back(source);
        let mut total = 0.0;
        while let Some(v) = queue.pop_front() {
            let dv = dist[v as usize];
            if dv > 0 {
                total += 1.0 / dv as f64;
            }
            for &w in graph.neighbors(v) {
                if dist[w as usize] < 0 {
                    dist[w as usize] = dv + 1;
                    queue.push_back(w);
                }
            }
        }
        scores[source as usize] = total;
    }
    scores
}

/// Betweenness centrality where only **value nodes** act as shortest-path
/// endpoints (footnote 2 of the paper). Intermediate nodes may still be of
/// either kind; only the source/target pairs are restricted.
///
/// Returned scores cover every node (attribute nodes included) so they can be
/// compared against [`crate::bc::betweenness_centrality`] directly.
pub fn betweenness_centrality_value_endpoints(graph: &BipartiteGraph) -> Vec<f64> {
    let n = graph.node_count();
    let mut bc = vec![0.0; n];
    // Brandes' backward sweep, with two changes: only value nodes act as
    // sources, and only value-node targets seed dependency mass (attribute
    // targets contribute zero), so the sum matches Equation 2 restricted to
    // value-node endpoint pairs.
    let mut dist = vec![-1i64; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();

    for source in graph.value_nodes() {
        dist.iter_mut().for_each(|d| *d = -1);
        sigma.iter_mut().for_each(|s| *s = 0.0);
        delta.iter_mut().for_each(|d| *d = 0.0);
        order.clear();
        queue.clear();

        dist[source as usize] = 0;
        sigma[source as usize] = 1.0;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let dv = dist[v as usize];
            for &w in graph.neighbors(v) {
                let wi = w as usize;
                if dist[wi] < 0 {
                    dist[wi] = dv + 1;
                    queue.push_back(w);
                }
                if dist[wi] == dv + 1 {
                    sigma[wi] += sigma[v as usize];
                }
            }
        }
        // Backward sweep: only value-node targets seed dependency mass.
        for &w in order.iter().rev() {
            let wi = w as usize;
            let target_mass = if graph.is_value_node(w) && w != source {
                1.0
            } else {
                0.0
            };
            let coeff = (target_mass + delta[wi]) / sigma[wi];
            for &p in graph.neighbors(w) {
                let pi = p as usize;
                if dist[pi] + 1 == dist[wi] {
                    delta[pi] += sigma[pi] * coeff;
                }
            }
            if w != source {
                bc[wi] += delta[wi];
            }
        }
    }
    for score in &mut bc {
        *score /= 2.0;
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::betweenness_centrality;
    use crate::bipartite::BipartiteBuilder;

    fn bridge_graph() -> (BipartiteGraph, u32) {
        let mut b = BipartiteBuilder::new();
        let bridge = b.add_value("bridge");
        let a0 = b.add_attribute("a0");
        let a1 = b.add_attribute("a1");
        for i in 0..4 {
            let v = b.add_value(format!("l{i}"));
            b.add_edge(v, a0);
            let w = b.add_value(format!("r{i}"));
            b.add_edge(w, a1);
        }
        b.add_edge(bridge, a0);
        b.add_edge(bridge, a1);
        (b.build(), bridge)
    }

    #[test]
    fn degree_and_cardinality_are_consistent_with_the_graph() {
        let (g, bridge) = bridge_graph();
        let degree = degree_centrality(&g);
        let cardinality = cardinality_centrality(&g);
        assert_eq!(degree.len(), g.value_count());
        assert_eq!(degree[bridge as usize], 2.0);
        assert_eq!(cardinality[bridge as usize], 8.0);
        for v in g.value_nodes() {
            assert!(cardinality[v as usize] >= degree[v as usize] - 1.0);
        }
    }

    #[test]
    fn harmonic_centrality_prefers_central_nodes() {
        let (g, bridge) = bridge_graph();
        let harmonic = harmonic_centrality(&g);
        // The bridge is closer to everything than any leaf value.
        for v in g.value_nodes() {
            if v != bridge {
                assert!(harmonic[bridge as usize] >= harmonic[v as usize]);
            }
        }
    }

    #[test]
    fn value_endpoint_bc_still_ranks_the_bridge_first() {
        let (g, bridge) = bridge_graph();
        let restricted = betweenness_centrality_value_endpoints(&g);
        let best = g
            .value_nodes()
            .max_by(|&a, &b| restricted[a as usize].total_cmp(&restricted[b as usize]))
            .unwrap();
        assert_eq!(best, bridge);
    }

    #[test]
    fn value_endpoint_bc_is_bounded_by_full_bc() {
        // Restricting the endpoint pairs can only remove path mass.
        let (g, _) = bridge_graph();
        let full = betweenness_centrality(&g);
        let restricted = betweenness_centrality_value_endpoints(&g);
        for (f, r) in full.iter().zip(&restricted) {
            assert!(
                r <= &(f + 1e-9),
                "restricted {r} should not exceed full {f}"
            );
            assert!(*r >= -1e-12);
        }
    }

    #[test]
    fn value_endpoint_bc_on_a_star_counts_value_pairs_only() {
        // One attribute with k values: full BC of the hub counts k(k-1)/2
        // value pairs; the value-endpoint variant counts exactly the same
        // (all endpoint pairs are value pairs), so they agree here.
        let mut b = BipartiteBuilder::new();
        let a = b.add_attribute("hub");
        for i in 0..5 {
            let v = b.add_value(format!("v{i}"));
            b.add_edge(v, a);
        }
        let g = b.build();
        let hub = g.attribute_node(0) as usize;
        let restricted = betweenness_centrality_value_endpoints(&g);
        assert!((restricted[hub] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = BipartiteBuilder::new().build();
        assert!(degree_centrality(&g).is_empty());
        assert!(harmonic_centrality(&g).is_empty());
        assert!(betweenness_centrality_value_endpoints(&g).is_empty());
    }
}
