//! Exact betweenness centrality (Brandes' algorithm).
//!
//! The betweenness centrality of a node `u` is
//!
//! ```text
//! BC(u) = Σ_{v≠u, w≠u} σ_vw(u) / σ_vw
//! ```
//!
//! where `σ_vw` is the number of shortest paths between `v` and `w` and
//! `σ_vw(u)` the number of those passing through `u` (Equation 2 of the
//! paper; Freeman 1977). DomainNet's core hypothesis (Hypothesis 3.5) is that
//! homographs — values bridging otherwise disconnected semantic communities —
//! have unusually high BC in the bipartite value/attribute graph.
//!
//! Brandes' algorithm (2001) computes all BC values in `O(n·m)` time for an
//! unweighted graph by running one BFS per source node and accumulating
//! *dependencies* backwards along the BFS DAG. For the unweighted case the
//! predecessor sets never need to be materialized: during the backward sweep
//! a neighbor `p` of `w` is a predecessor exactly when `dist[p] + 1 ==
//! dist[w]`.
//!
//! Every function in this module counts each unordered pair `{v, w}` once,
//! which is the standard convention for undirected graphs. Use
//! [`normalize_scores`] to rescale into `[0, 1]`.

use std::collections::VecDeque;

use crate::bipartite::BipartiteGraph;

/// Reusable per-source scratch space for Brandes' algorithm.
///
/// Allocation of the four arrays dominates the cost of short BFS runs, so the
/// workspace is created once and reset lazily between sources (only the
/// entries touched by the previous source are cleared).
#[derive(Debug)]
pub struct BrandesWorkspace {
    dist: Vec<i64>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    /// Nodes in the order they were popped from the BFS queue.
    order: Vec<u32>,
    queue: VecDeque<u32>,
}

impl BrandesWorkspace {
    /// Create scratch space for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        BrandesWorkspace {
            dist: vec![-1; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            order: Vec::with_capacity(n),
            queue: VecDeque::with_capacity(n),
        }
    }

    fn reset(&mut self) {
        for &node in &self.order {
            self.dist[node as usize] = -1;
            self.sigma[node as usize] = 0.0;
            self.delta[node as usize] = 0.0;
        }
        self.order.clear();
        self.queue.clear();
    }
}

/// Run a single-source shortest-path dependency accumulation from `source`,
/// adding each node's dependency `δ_source(v)` into `accumulator[v]`.
///
/// This is the building block shared by exact BC (all sources) and
/// approximate BC (sampled sources). `weight` scales the contribution, which
/// the sampled estimator uses for inverse-probability weighting.
pub fn accumulate_source(
    graph: &BipartiteGraph,
    source: u32,
    workspace: &mut BrandesWorkspace,
    accumulator: &mut [f64],
    weight: f64,
) {
    workspace.reset();
    let dist = &mut workspace.dist;
    let sigma = &mut workspace.sigma;
    let delta = &mut workspace.delta;
    let order = &mut workspace.order;
    let queue = &mut workspace.queue;

    dist[source as usize] = 0;
    sigma[source as usize] = 1.0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        let dv = dist[v as usize];
        for &w in graph.neighbors(v) {
            let wi = w as usize;
            if dist[wi] < 0 {
                dist[wi] = dv + 1;
                queue.push_back(w);
            }
            if dist[wi] == dv + 1 {
                sigma[wi] += sigma[v as usize];
            }
        }
    }

    // Backward sweep in reverse BFS order.
    for &w in order.iter().rev() {
        let wi = w as usize;
        let dw = dist[wi];
        let coeff = (1.0 + delta[wi]) / sigma[wi];
        for &p in graph.neighbors(w) {
            let pi = p as usize;
            if dist[pi] + 1 == dw {
                delta[pi] += sigma[pi] * coeff;
            }
        }
        if w != source {
            accumulator[wi] += weight * delta[wi];
        }
    }
}

/// Exact betweenness centrality of every node (single-threaded).
///
/// Each unordered pair of endpoints contributes once. Runtime is `O(n·m)`.
pub fn betweenness_centrality(graph: &BipartiteGraph) -> Vec<f64> {
    let n = graph.node_count();
    let mut bc = vec![0.0; n];
    let mut workspace = BrandesWorkspace::new(n);
    for s in graph.nodes() {
        accumulate_source(graph, s, &mut workspace, &mut bc, 1.0);
    }
    // Each unordered pair was counted twice (once from each endpoint).
    for value in &mut bc {
        *value /= 2.0;
    }
    bc
}

/// The canonical task-decomposition width: source lists are split into at
/// most this many chunks. The chunk layout is a **pure function of the
/// source count** — never of the thread count or of which worker ran what —
/// so the floating-point reduction is parenthesized identically for every
/// pool width (1 included) and every run. That is what makes exact-BC
/// results `to_bits()`-identical across thread counts, which the golden
/// gates and the replication digest exchange rely on. 32 chunks also bound
/// the transient partial-accumulator memory at `32 · n` floats.
pub(crate) const MAX_CHUNKS: usize = 32;

/// Split `0..len` into the canonical chunk ranges (at most [`MAX_CHUNKS`],
/// each contiguous, sized `ceil(len / MAX_CHUNKS)` except the tail).
pub(crate) fn canonical_chunks(len: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunk_size = len.div_ceil(MAX_CHUNKS).max(1);
    (0..len.div_ceil(chunk_size))
        .map(|c| c * chunk_size..((c + 1) * chunk_size).min(len))
        .collect()
}

/// Exact betweenness centrality using a pool `threads` wide.
///
/// Sources are split into the canonical chunks (at most `MAX_CHUNKS`) and
/// scheduled onto a work-stealing [`dn_pool::Pool`]; each chunk owns a
/// private accumulator, and the per-chunk partials are folded **in chunk
/// order**, so the result is bit-identical for every `threads` value —
/// `betweenness_centrality_parallel(g, 1)` and `(g, 8)` agree on every bit.
pub fn betweenness_centrality_parallel(graph: &BipartiteGraph, threads: usize) -> Vec<f64> {
    let n = graph.node_count();
    if n < 2 {
        return betweenness_centrality(graph);
    }
    let sources: Vec<u32> = graph.nodes().collect();
    let mut bc = accumulate_sources_parallel(graph, &sources, threads);
    for value in &mut bc {
        *value /= 2.0;
    }
    bc
}

/// Accumulate dependencies from an explicit list of sources across a
/// work-stealing pool (no halving, no scaling — callers decide how to
/// normalize). Deterministic: the canonical chunk layout and the
/// chunk-index-ordered fold make the output a pure function of
/// `(graph, sources)`, independent of `threads` and of scheduling.
pub(crate) fn accumulate_sources_parallel(
    graph: &BipartiteGraph,
    sources: &[u32],
    threads: usize,
) -> Vec<f64> {
    let n = graph.node_count();
    let chunks = canonical_chunks(sources.len());
    let ctx = dn_trace::current();
    let partials = dn_pool::Pool::new(threads).run(chunks.len(), |c| {
        let _chunk = if ctx.is_active() {
            ctx.enter(dn_trace::Phase::PoolBcChunks, &format!("chunk{c}"))
        } else {
            dn_trace::SpanGuard::noop()
        };
        let mut acc = vec![0.0; n];
        let mut workspace = BrandesWorkspace::new(n);
        for &s in &sources[chunks[c].clone()] {
            accumulate_source(graph, s, &mut workspace, &mut acc, 1.0);
        }
        acc
    });
    // Fold in chunk-index order — float addition is not associative, so this
    // order IS the determinism guarantee.
    let mut total = vec![0.0; n];
    for partial in partials {
        for (t, p) in total.iter_mut().zip(partial) {
            *t += p;
        }
    }
    total
}

/// Exact betweenness restricted to shortest paths **starting at `sources`**,
/// halved to the unordered-pair convention of [`betweenness_centrality`].
///
/// The incremental pipeline uses this for component-scoped invalidation:
/// because a dependency accumulation from source `s` never leaves `s`'s
/// connected component, passing *every* node of a union of components as
/// `sources` yields, for the nodes **inside** those components, exactly their
/// global exact BC — without touching the rest of the graph.
pub fn betweenness_from_sources(
    graph: &BipartiteGraph,
    sources: &[u32],
    threads: usize,
) -> Vec<f64> {
    let mut acc = accumulate_sources_parallel(graph, sources, threads.max(1));
    for value in &mut acc {
        *value /= 2.0;
    }
    acc
}

/// Normalize raw betweenness scores into `[0, 1]` by dividing by the number
/// of unordered endpoint pairs excluding the node itself, `(n-1)(n-2)/2`.
pub fn normalize_scores(scores: &mut [f64]) {
    let n = scores.len() as f64;
    if n < 3.0 {
        for s in scores.iter_mut() {
            *s = 0.0;
        }
        return;
    }
    let scale = 2.0 / ((n - 1.0) * (n - 2.0));
    for s in scores.iter_mut() {
        *s *= scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::BipartiteBuilder;

    /// Path graph v0 - a0 - v1 - a1 - v2 as a bipartite graph.
    fn path5() -> BipartiteGraph {
        let mut b = BipartiteBuilder::new();
        let v0 = b.add_value("v0");
        let v1 = b.add_value("v1");
        let v2 = b.add_value("v2");
        let a0 = b.add_attribute("a0");
        let a1 = b.add_attribute("a1");
        b.add_edge(v0, a0);
        b.add_edge(v1, a0);
        b.add_edge(v1, a1);
        b.add_edge(v2, a1);
        b.build()
    }

    #[test]
    fn path_graph_matches_closed_form() {
        // Path of 5 nodes p0-p1-p2-p3-p4: BC (unordered pairs) of the middle
        // node is 4 (pairs {p0,p3},{p0,p4},{p1,p3},{p1,p4} ... wait: pairs
        // separated by it): for node at position i (0-based) in a path of n
        // nodes, BC = i * (n - 1 - i). Middle (i=2, n=5): 2*2=4... but count
        // pairs strictly on opposite sides: {p0,p1} x {p3,p4} = 4 plus none.
        let g = path5();
        let bc = betweenness_centrality(&g);
        // Node order: v0=0, v1=1, v2=2, a0=3, a1=4.
        // Path order is v0(0) - a0(3) - v1(1) - a1(4) - v2(2).
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[2], 0.0);
        assert!(
            (bc[3] - 3.0).abs() < 1e-9,
            "a0 separates {{v0}} from {{v1,a1,v2}}"
        );
        assert!((bc[4] - 3.0).abs() < 1e-9);
        assert!(
            (bc[1] - 4.0).abs() < 1e-9,
            "v1 separates {{v0,a0}} from {{a1,v2}}"
        );
    }

    #[test]
    fn star_center_carries_all_pairs() {
        // One attribute with k values: the attribute node lies on the single
        // shortest path between every pair of values: BC = k*(k-1)/2.
        let mut b = BipartiteBuilder::new();
        let a = b.add_attribute("hub");
        let k = 6;
        for i in 0..k {
            let v = b.add_value(format!("v{i}"));
            b.add_edge(v, a);
        }
        let g = b.build();
        let bc = betweenness_centrality(&g);
        let hub = g.attribute_node(0) as usize;
        assert!((bc[hub] - (k * (k - 1) / 2) as f64).abs() < 1e-9);
        for v in 0..k {
            assert_eq!(bc[v as usize], 0.0);
        }
    }

    #[test]
    fn complete_bipartite_shares_betweenness_evenly() {
        // K_{2,3}: every value pair has 2 shortest paths (through either
        // attribute), every attribute pair has 3 (through any value).
        let mut b = BipartiteBuilder::new();
        let values: Vec<u32> = (0..3).map(|i| b.add_value(format!("v{i}"))).collect();
        let attrs: Vec<u32> = (0..2).map(|i| b.add_attribute(format!("a{i}"))).collect();
        for &v in &values {
            for &a in &attrs {
                b.add_edge(v, a);
            }
        }
        let g = b.build();
        let bc = betweenness_centrality(&g);
        // Value pairs: 3 pairs, each splits 1/2 + 1/2 over the two attributes
        // -> each attribute gets 3 * 1/2 = 1.5.
        // Attribute pair: 1 pair with 3 shortest paths -> each value gets 1/3.
        for &a in &attrs {
            let node = g.attribute_node(a) as usize;
            assert!((bc[node] - 1.5).abs() < 1e-9, "attr bc = {}", bc[node]);
        }
        for &v in &values {
            assert!(
                (bc[v as usize] - 1.0 / 3.0).abs() < 1e-9,
                "value bc = {}",
                bc[v as usize]
            );
        }
    }

    #[test]
    fn bridge_value_has_highest_centrality() {
        // Two stars joined by one shared value.
        let mut b = BipartiteBuilder::new();
        let bridge = b.add_value("bridge");
        let a0 = b.add_attribute("a0");
        let a1 = b.add_attribute("a1");
        for i in 0..4 {
            let v = b.add_value(format!("l{i}"));
            b.add_edge(v, a0);
            let w = b.add_value(format!("r{i}"));
            b.add_edge(w, a1);
        }
        b.add_edge(bridge, a0);
        b.add_edge(bridge, a1);
        let g = b.build();
        let bc = betweenness_centrality(&g);
        let max_value_node = g
            .value_nodes()
            .max_by(|&a, &b| bc[a as usize].total_cmp(&bc[b as usize]))
            .unwrap();
        assert_eq!(max_value_node, bridge);
        assert!(bc[bridge as usize] > 0.0);
        for i in 1..=8u32 {
            assert_eq!(bc[i as usize], 0.0, "leaf values lie on no shortest paths");
        }
    }

    #[test]
    fn disconnected_components_do_not_interact() {
        let mut b = BipartiteBuilder::new();
        // Component 1: star with 3 leaves. Component 2: star with 4 leaves.
        let a0 = b.add_attribute("a0");
        let a1 = b.add_attribute("a1");
        for i in 0..3 {
            let v = b.add_value(format!("x{i}"));
            b.add_edge(v, a0);
        }
        for i in 0..4 {
            let v = b.add_value(format!("y{i}"));
            b.add_edge(v, a1);
        }
        let g = b.build();
        let bc = betweenness_centrality(&g);
        assert!((bc[g.attribute_node(0) as usize] - 3.0).abs() < 1e-9);
        assert!((bc[g.attribute_node(1) as usize] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (g, _) = crate::bipartite::tests::figure3b();
        let seq = betweenness_centrality(&g);
        for threads in [2, 3, 8] {
            let par = betweenness_centrality_parallel(&g, threads);
            for (s, p) in seq.iter().zip(&par) {
                assert!((s - p).abs() < 1e-9, "sequential {s} vs parallel {p}");
            }
        }
    }

    #[test]
    fn parallel_is_bit_identical_across_thread_counts_and_runs() {
        let (g, _) = crate::bipartite::tests::figure3b();
        let reference: Vec<u64> = betweenness_centrality_parallel(&g, 1)
            .iter()
            .map(|s| s.to_bits())
            .collect();
        for threads in [1, 2, 4, 8] {
            for run in 0..3 {
                let bits: Vec<u64> = betweenness_centrality_parallel(&g, threads)
                    .iter()
                    .map(|s| s.to_bits())
                    .collect();
                assert_eq!(bits, reference, "threads={threads} run={run}");
            }
        }
    }

    #[test]
    fn canonical_chunks_cover_exactly_once_and_cap_out() {
        for len in [0, 1, 5, 31, 32, 33, 1000, 1024] {
            let chunks = canonical_chunks(len);
            assert!(chunks.len() <= MAX_CHUNKS, "len={len}");
            let mut covered = 0;
            for (i, chunk) in chunks.iter().enumerate() {
                assert_eq!(chunk.start, covered, "len={len} chunk={i}");
                assert!(chunk.end > chunk.start, "len={len} chunk={i} empty");
                covered = chunk.end;
            }
            assert_eq!(covered, len, "len={len}");
        }
    }

    #[test]
    fn jaguar_dominates_running_example() {
        let (g, ids) = crate::bipartite::tests::figure3b();
        let bc = betweenness_centrality(&g);
        let jaguar = bc[ids["JAGUAR"] as usize];
        let puma = bc[ids["PUMA"] as usize];
        let toyota = bc[ids["TOYOTA"] as usize];
        let panda = bc[ids["PANDA"] as usize];
        assert!(jaguar > puma, "jaguar {jaguar} should beat puma {puma}");
        assert!(
            jaguar > toyota,
            "jaguar {jaguar} should beat toyota {toyota}"
        );
        assert!(jaguar > panda, "jaguar {jaguar} should beat panda {panda}");
        assert!(
            puma > 0.0,
            "puma bridges two attributes and must have positive BC"
        );
        for v in ["FIAT", "APPLE", "PELICAN", "LEMUR"] {
            assert_eq!(
                bc[ids[v] as usize], 0.0,
                "{v} has degree 1 and lies on no shortest path"
            );
        }
    }

    #[test]
    fn normalize_scores_bounds() {
        let (g, _) = crate::bipartite::tests::figure3b();
        let mut bc = betweenness_centrality(&g);
        normalize_scores(&mut bc);
        for &s in &bc {
            assert!(
                (0.0..=1.0).contains(&s),
                "normalized score {s} out of bounds"
            );
        }
    }

    #[test]
    fn normalize_tiny_graphs_is_zero() {
        let mut scores = vec![5.0, 3.0];
        normalize_scores(&mut scores);
        assert_eq!(scores, vec![0.0, 0.0]);
    }

    #[test]
    fn empty_and_single_node_graphs() {
        let g = BipartiteBuilder::new().build();
        assert!(betweenness_centrality(&g).is_empty());

        let mut b = BipartiteBuilder::new();
        b.add_value("only");
        let g = b.build();
        assert_eq!(betweenness_centrality(&g), vec![0.0]);
    }
}
