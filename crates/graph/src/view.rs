//! Read-only neighborhood views over the bipartite graph.
//!
//! The serving layer (`dn-service`) answers "explain" queries — which
//! attributes contain a value, which values co-occur with it — against an
//! immutable snapshot of the graph. Those queries need label-aware traversal
//! but none of the node-id arithmetic the centrality kernels use (attribute
//! nodes live at `value_count..`, attribute *labels* are indexed by attribute
//! index, not node id). [`GraphView`] packages that traversal behind a cheap
//! borrowed handle so consumers never touch the offset math, and so the
//! borrow checker documents that queries cannot outlive (or mutate) the
//! graph they read.

use crate::bipartite::BipartiteGraph;

/// A borrowed, read-only query surface over a [`BipartiteGraph`].
///
/// Construction is free (it is a reference wrapper); every method returns
/// borrows into the underlying graph wherever possible.
///
/// ```
/// use dn_graph::bipartite::BipartiteBuilder;
///
/// let mut b = BipartiteBuilder::new();
/// let v = b.add_value("JAGUAR");
/// let a = b.add_attribute("cars.make");
/// b.add_edge(v, a);
/// let graph = b.build();
///
/// let view = graph.view();
/// let attrs: Vec<&str> = view.attribute_labels_of_value(v).collect();
/// assert_eq!(attrs, ["cars.make"]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GraphView<'g> {
    graph: &'g BipartiteGraph,
}

impl BipartiteGraph {
    /// Borrow a read-only [`GraphView`] of this graph.
    pub fn view(&self) -> GraphView<'_> {
        GraphView { graph: self }
    }
}

impl<'g> GraphView<'g> {
    /// The underlying graph.
    pub fn graph(&self) -> &'g BipartiteGraph {
        self.graph
    }

    /// The attribute *nodes* incident to a value node.
    pub fn attribute_nodes_of_value(&self, value: u32) -> &'g [u32] {
        debug_assert!(self.graph.is_value_node(value), "not a value node");
        self.graph.neighbors(value)
    }

    /// The qualified labels (`table.column`) of the attributes a value
    /// occurs in, in node order.
    pub fn attribute_labels_of_value(&self, value: u32) -> impl Iterator<Item = &'g str> + '_ {
        self.attribute_nodes_of_value(value)
            .iter()
            .filter_map(|&a| self.attribute_label_of_node(a))
    }

    /// The label of an attribute, addressed by *node id* (not attribute
    /// index). Returns `None` for value nodes.
    pub fn attribute_label_of_node(&self, node: u32) -> Option<&'g str> {
        self.graph
            .attribute_index(node)
            .map(|idx| self.graph.attribute_label(idx))
    }

    /// The value nodes contained in an attribute, addressed by node id.
    /// Returns `None` for value nodes.
    pub fn values_of_attribute_node(&self, node: u32) -> Option<&'g [u32]> {
        if self.graph.is_value_node(node) {
            return None;
        }
        Some(self.graph.neighbors(node))
    }

    /// The distinct value nodes co-occurring with `value` in at least one
    /// attribute (the value's 2-hop value neighborhood, excluding itself),
    /// sorted ascending.
    pub fn co_values(&self, value: u32) -> Vec<u32> {
        self.graph.value_neighbors(value)
    }

    /// Value nodes with at least one incident edge (tombstoned slots left
    /// behind by incremental maintenance are skipped).
    pub fn live_value_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.graph
            .value_nodes()
            .filter(|&v| self.graph.degree(v) > 0)
    }
}

#[cfg(test)]
mod tests {
    use crate::bipartite::BipartiteBuilder;

    fn small() -> crate::bipartite::BipartiteGraph {
        let mut b = BipartiteBuilder::new();
        let jaguar = b.add_value("JAGUAR");
        let panda = b.add_value("PANDA");
        let _isolated = b.add_value("GHOST");
        let zoo = b.add_attribute("zoo.animal");
        let cars = b.add_attribute("cars.make");
        b.add_edge(jaguar, zoo);
        b.add_edge(panda, zoo);
        b.add_edge(jaguar, cars);
        b.build()
    }

    #[test]
    fn labels_and_neighbors_round_trip() {
        let g = small();
        let view = g.view();
        let labels: Vec<&str> = view.attribute_labels_of_value(0).collect();
        assert_eq!(labels, ["zoo.animal", "cars.make"]);
        let zoo_node = g.attribute_node(0);
        assert_eq!(view.attribute_label_of_node(zoo_node), Some("zoo.animal"));
        assert_eq!(
            view.values_of_attribute_node(zoo_node),
            Some(&[0u32, 1][..])
        );
    }

    #[test]
    fn value_nodes_are_not_attributes() {
        let g = small();
        let view = g.view();
        assert_eq!(view.attribute_label_of_node(0), None);
        assert_eq!(view.values_of_attribute_node(1), None);
    }

    #[test]
    fn co_values_and_liveness() {
        let g = small();
        let view = g.view();
        assert_eq!(view.co_values(0), vec![1]);
        let live: Vec<u32> = view.live_value_nodes().collect();
        assert_eq!(live, vec![0, 1], "the isolated value is not live");
    }
}
